"""Content-hashed, byte-deterministic city-scale trace streams.

A :class:`TraceSpec` declares a workload as data: a template catalogue
(:mod:`repro.workloads.catalogue`), a horizon with day/week seasonality, a
Poisson arrival stream plus fixed arrival-window populations, optional
flash-crowd rate shocks, and tenant-behaviour probabilities (early release,
renewal).  Specs are frozen, JSON round-trip with ``schema_version``
(``from_dict(to_dict(s)) == s``) and content-hashed
(:meth:`TraceSpec.fingerprint` via :func:`repro.utils.rng.spec_hash`), so a
trace is identified by *what it asks for*, never by who generated it.

Generation is streaming and byte-deterministic per ``(spec, seed)``:
:func:`iter_trace` yields one :class:`EpochBatch` per epoch without ever
materialising the whole trace, and every random draw comes from a
per-epoch generator derived with :func:`repro.utils.rng.derive_seed` from
``(seed, fingerprint, epoch)`` -- epoch ``e``'s batch does not depend on
how many draws earlier epochs consumed.  :func:`trace_fingerprint` hashes
the canonical JSON of the full event stream; two equal fingerprints mean
bit-identical traces.

Batches are *columnar*: per-arrival attributes are numpy arrays so the
city-scale replay engine (:mod:`repro.workloads.replay`) never touches
per-slice Python objects in its per-epoch loop; :meth:`EpochBatch.events`
lazily materialises :class:`TraceEvent` DTOs for the broker-fidelity
driver, golden tests and JSON export.

Demand statistics layer on :mod:`repro.traffic`: each arrival samples its
expected demand fraction from its class's
:class:`~repro.traffic.patterns.DemandSpec` (mean fraction of the SLA,
relative std), and flash crowds are the trace-level analogue of the
traffic layer's bursty regimes -- a multiplicative shock on the seasonal
arrival rate over a window of epochs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

import numpy as np

from repro.api.wire import check_version, require, stamp
from repro.utils.rng import derive_seed, make_rng, spec_hash
from repro.utils.validation import (
    ensure_non_negative,
    ensure_positive,
    ensure_positive_int,
    ensure_probability,
)
from repro.workloads.catalogue import SliceClass, TemplateCatalogue

__all__ = [
    "FlashCrowd",
    "TraceSpec",
    "TraceEvent",
    "EpochBatch",
    "diurnal_profile",
    "iter_trace",
    "trace_fingerprint",
    "DEFAULT_WEEK_PROFILE",
]

#: Weekday multipliers on the arrival rate (Mon..Sun; weekends quieter).
DEFAULT_WEEK_PROFILE = (1.0, 1.0, 1.0, 1.0, 1.0, 0.8, 0.7)

#: Sampled demand fractions are clipped into this band: a slice never books
#: less than 1% or more than 100% of its SLA bitrate.
_MIN_DEMAND_FRACTION = 0.01


def diurnal_profile(
    epochs_per_day: int = 24, trough: float = 0.5, peak: float = 1.5
) -> tuple[float, ...]:
    """A smooth day profile of rate multipliers averaging (trough+peak)/2.

    Cosine-shaped with the minimum at midnight and the maximum mid-day --
    the same shape the traffic layer's seasonal demand profile uses, here
    applied to tenant *arrivals* instead of per-slice load.
    """
    epochs_per_day = ensure_positive_int(epochs_per_day, "epochs_per_day")
    ensure_positive(trough, "trough")
    if peak < trough:
        raise ValueError(f"peak must be >= trough, got peak={peak} trough={trough}")
    phase = 2.0 * np.pi * (np.arange(epochs_per_day) + 0.5) / epochs_per_day
    values = trough + (peak - trough) * 0.5 * (1.0 - np.cos(phase))
    return tuple(float(value) for value in values)


@dataclass(frozen=True)
class FlashCrowd:
    """A demand shock: multiply the Poisson arrival rate over a window."""

    epoch: int
    duration_epochs: int
    magnitude: float

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError(f"flash-crowd epoch must be >= 0, got {self.epoch}")
        ensure_positive_int(self.duration_epochs, "duration_epochs")
        ensure_positive(self.magnitude, "magnitude")

    def multiplier(self, epoch: int) -> float:
        if self.epoch <= epoch < self.epoch + self.duration_epochs:
            return self.magnitude
        return 1.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "epoch": self.epoch,
            "duration_epochs": self.duration_epochs,
            "magnitude": self.magnitude,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FlashCrowd":
        return cls(
            epoch=int(payload["epoch"]),
            duration_epochs=int(payload["duration_epochs"]),
            magnitude=float(payload["magnitude"]),
        )


@dataclass(frozen=True)
class TraceSpec:
    """Declarative description of one city-scale workload trace.

    Attributes
    ----------
    name:
        Trace identity; also the prefix of every generated slice name.
    catalogue:
        The workload classes arrivals are drawn from.
    horizon_epochs:
        Trace length in decision epochs.
    epochs_per_day:
        Epochs per seasonal day (``day_profile`` indexes modulo this).
    arrival_rate:
        Mean Poisson arrivals per epoch across the catalogue's ``poisson``
        classes at seasonal multiplier 1.0 (split by class weight).
    window_population:
        Total arrivals of the catalogue's ``window`` classes over the
        horizon (split by class weight); each class's population arrives
        uniformly within the leading ``arrival_window_fraction`` of the
        horizon.
    day_profile / week_profile:
        Multiplicative seasonal profiles on the Poisson rate.
    early_release_probability:
        Chance an arrival departs before its contract expires (a tenant
        ``release``); the release epoch is uniform within the lifetime.
    renewal_probability:
        Chance an arrival renews once for a second term of the same
        duration when its first term expires.
    flash_crowds:
        Optional rate shocks (see :class:`FlashCrowd`).
    aggregate_capacity_mbps:
        City-level capacity budget the replay admission policy books
        load estimates against.
    """

    name: str
    catalogue: TemplateCatalogue
    horizon_epochs: int
    epochs_per_day: int = 24
    arrival_rate: float = 0.0
    window_population: int = 0
    day_profile: tuple[float, ...] = ()
    week_profile: tuple[float, ...] = DEFAULT_WEEK_PROFILE
    early_release_probability: float = 0.0
    renewal_probability: float = 0.0
    flash_crowds: tuple[FlashCrowd, ...] = ()
    aggregate_capacity_mbps: float = 1e6

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("trace name must be non-empty")
        ensure_positive_int(self.horizon_epochs, "horizon_epochs")
        ensure_positive_int(self.epochs_per_day, "epochs_per_day")
        ensure_non_negative(self.arrival_rate, "arrival_rate")
        if self.window_population < 0:
            raise ValueError(
                f"window_population must be >= 0, got {self.window_population}"
            )
        day = self.day_profile or (1.0,) * self.epochs_per_day
        if len(day) != self.epochs_per_day:
            raise ValueError(
                f"day_profile must have epochs_per_day={self.epochs_per_day} "
                f"entries, got {len(day)}"
            )
        object.__setattr__(self, "day_profile", tuple(float(v) for v in day))
        if not self.week_profile:
            raise ValueError("week_profile must be non-empty")
        object.__setattr__(
            self, "week_profile", tuple(float(v) for v in self.week_profile)
        )
        for value in self.day_profile + self.week_profile:
            ensure_non_negative(value, "seasonal profile entry")
        ensure_probability(
            self.early_release_probability, "early_release_probability"
        )
        ensure_probability(self.renewal_probability, "renewal_probability")
        object.__setattr__(self, "flash_crowds", tuple(self.flash_crowds))
        ensure_positive(self.aggregate_capacity_mbps, "aggregate_capacity_mbps")
        if self.arrival_rate > 0 and not self.catalogue.poisson_classes():
            raise ValueError(
                "arrival_rate > 0 needs at least one 'poisson' class in the catalogue"
            )
        if self.window_population > 0 and not self.catalogue.window_classes():
            raise ValueError(
                "window_population > 0 needs at least one 'window' class in the catalogue"
            )

    # ------------------------------------------------------------------ #
    # Seasonality
    # ------------------------------------------------------------------ #
    def rate_at(self, epoch: int) -> float:
        """The Poisson arrival rate at ``epoch`` (seasonality + shocks)."""
        day = self.day_profile[epoch % self.epochs_per_day]
        week = self.week_profile[
            (epoch // self.epochs_per_day) % len(self.week_profile)
        ]
        rate = self.arrival_rate * day * week
        for crowd in self.flash_crowds:
            rate *= crowd.multiplier(epoch)
        return rate

    # ------------------------------------------------------------------ #
    # Wire form
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return stamp(
            {
                "name": self.name,
                "catalogue": self.catalogue.as_dict(),
                "horizon_epochs": self.horizon_epochs,
                "epochs_per_day": self.epochs_per_day,
                "arrival_rate": self.arrival_rate,
                "window_population": self.window_population,
                "day_profile": list(self.day_profile),
                "week_profile": list(self.week_profile),
                "early_release_probability": self.early_release_probability,
                "renewal_probability": self.renewal_probability,
                "flash_crowds": [crowd.as_dict() for crowd in self.flash_crowds],
                "aggregate_capacity_mbps": self.aggregate_capacity_mbps,
            }
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceSpec":
        check_version(payload, "TraceSpec")
        return cls(
            name=str(require(payload, "name", "TraceSpec")),
            catalogue=TemplateCatalogue.from_dict(
                require(payload, "catalogue", "TraceSpec")
            ),
            horizon_epochs=int(require(payload, "horizon_epochs", "TraceSpec")),
            epochs_per_day=int(require(payload, "epochs_per_day", "TraceSpec")),
            arrival_rate=float(require(payload, "arrival_rate", "TraceSpec")),
            window_population=int(
                require(payload, "window_population", "TraceSpec")
            ),
            day_profile=tuple(
                float(v) for v in require(payload, "day_profile", "TraceSpec")
            ),
            week_profile=tuple(
                float(v) for v in require(payload, "week_profile", "TraceSpec")
            ),
            early_release_probability=float(
                require(payload, "early_release_probability", "TraceSpec")
            ),
            renewal_probability=float(
                require(payload, "renewal_probability", "TraceSpec")
            ),
            flash_crowds=tuple(
                FlashCrowd.from_dict(entry)
                for entry in require(payload, "flash_crowds", "TraceSpec")
            ),
            aggregate_capacity_mbps=float(
                require(payload, "aggregate_capacity_mbps", "TraceSpec")
            ),
        )

    def fingerprint(self) -> str:
        """Content hash of the spec (stable across processes and sessions)."""
        return spec_hash(self.to_dict())


@dataclass(frozen=True)
class TraceEvent:
    """One tenant arrival as a wire-form DTO.

    ``early_release_epoch`` is the absolute epoch of a tenant-initiated
    release (-1 when the slice runs its contract to term); ``renewals`` is
    how many extra same-duration terms the tenant will renew for.
    """

    epoch: int
    name: str
    slice_class: str
    duration_epochs: int
    demand_fraction: float
    early_release_epoch: int = -1
    renewals: int = 0

    def to_dict(self) -> dict[str, Any]:
        return stamp(
            {
                "epoch": self.epoch,
                "name": self.name,
                "slice_class": self.slice_class,
                "duration_epochs": self.duration_epochs,
                "demand_fraction": self.demand_fraction,
                "early_release_epoch": self.early_release_epoch,
                "renewals": self.renewals,
            }
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceEvent":
        check_version(payload, "TraceEvent")
        return cls(
            epoch=int(require(payload, "epoch", "TraceEvent")),
            name=str(require(payload, "name", "TraceEvent")),
            slice_class=str(require(payload, "slice_class", "TraceEvent")),
            duration_epochs=int(require(payload, "duration_epochs", "TraceEvent")),
            demand_fraction=float(
                require(payload, "demand_fraction", "TraceEvent")
            ),
            early_release_epoch=int(
                require(payload, "early_release_epoch", "TraceEvent")
            ),
            renewals=int(require(payload, "renewals", "TraceEvent")),
        )


@dataclass(frozen=True, eq=False)
class EpochBatch:
    """One epoch's arrivals in columnar form.

    All arrays share length ``len(self)`` (one row per arrival, in the
    deterministic generation order): ``class_index`` indexes
    ``spec.catalogue.classes``, ``duration_epochs`` is the per-term
    contract length, ``demand_fraction`` the sampled expected demand as a
    fraction of the SLA, ``early_release_epoch`` the absolute tenant
    release epoch (-1: none) and ``renewals`` the number of extra terms.
    """

    spec: TraceSpec = field(repr=False)
    epoch: int
    class_index: np.ndarray
    duration_epochs: np.ndarray
    demand_fraction: np.ndarray
    early_release_epoch: np.ndarray
    renewals: np.ndarray

    def __len__(self) -> int:
        return int(self.class_index.shape[0])

    def names(self) -> list[str]:
        """Deterministic slice names for this batch's arrivals."""
        prefix = f"{self.spec.name}-{self.epoch:05d}-"
        return [f"{prefix}{serial:06d}" for serial in range(len(self))]

    def events(self) -> Iterator[TraceEvent]:
        """Materialise the batch as :class:`TraceEvent` DTOs (small traces)."""
        classes = self.spec.catalogue.classes
        for serial, name in enumerate(self.names()):
            yield TraceEvent(
                epoch=self.epoch,
                name=name,
                slice_class=classes[int(self.class_index[serial])].name,
                duration_epochs=int(self.duration_epochs[serial]),
                demand_fraction=float(self.demand_fraction[serial]),
                early_release_epoch=int(self.early_release_epoch[serial]),
                renewals=int(self.renewals[serial]),
            )


# --------------------------------------------------------------------- #
# Generation
# --------------------------------------------------------------------- #
def _weight_split(total: int, classes: tuple[SliceClass, ...]) -> list[int]:
    """Split ``total`` across classes proportionally to weight.

    Largest-remainder rounding with catalogue order breaking ties, so the
    split is deterministic and sums exactly to ``total``.
    """
    if not classes:
        return []
    weights = [cls.weight for cls in classes]
    scale = total / sum(weights)
    shares = [weight * scale for weight in weights]
    counts = [int(share) for share in shares]
    remainders = [share - count for share, count in zip(shares, counts)]
    leftover = total - sum(counts)
    order = sorted(range(len(classes)), key=lambda i: (-remainders[i], i))
    for i in order[:leftover]:
        counts[i] += 1
    return counts


def _window_schedules(
    spec: TraceSpec, seed: int, fingerprint: str
) -> list[tuple[int, np.ndarray]]:
    """Per window class: (catalogue index, arrivals-per-epoch counts).

    Each class's population lands uniformly at random within its window
    (multinomial over the window epochs), drawn from a seed derived from
    the trace identity and the class name -- O(window) memory, computed
    once up front.
    """
    window_classes = spec.catalogue.window_classes()
    populations = _weight_split(spec.window_population, window_classes)
    schedules: list[tuple[int, np.ndarray]] = []
    for cls, population in zip(window_classes, populations):
        window = max(1, round(cls.arrival_window_fraction * spec.horizon_epochs))
        window = min(window, spec.horizon_epochs)
        rng = make_rng(derive_seed(seed, "trace-window", fingerprint, cls.name))
        counts = rng.multinomial(population, np.full(window, 1.0 / window))
        index = spec.catalogue.classes.index(cls)
        schedules.append((index, counts.astype(np.int64)))
    return schedules


def _sample_columns(
    spec: TraceSpec,
    rng: np.random.Generator,
    epoch: int,
    class_index: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised per-arrival attribute sampling for one epoch's batch."""
    classes = spec.catalogue.classes
    low = np.array([cls.duration_epochs[0] for cls in classes], dtype=np.int64)
    high = np.array([cls.duration_epochs[1] for cls in classes], dtype=np.int64)
    mean = np.array([cls.mean_fraction for cls in classes])
    std = np.array([cls.relative_std for cls in classes])

    n = class_index.shape[0]
    span = high[class_index] - low[class_index] + 1
    durations = low[class_index] + (rng.random(n) * span).astype(np.int64)

    noise = rng.standard_normal(n)
    fractions = mean[class_index] * (1.0 + std[class_index] * noise)
    fractions = np.clip(fractions, _MIN_DEMAND_FRACTION, 1.0)

    renewals = (rng.random(n) < spec.renewal_probability).astype(np.int64)
    lifetimes = durations * (1 + renewals)

    release = np.full(n, -1, dtype=np.int64)
    eligible = (rng.random(n) < spec.early_release_probability) & (lifetimes >= 2)
    offsets = 1 + (rng.random(n) * (lifetimes - 1)).astype(np.int64)
    release[eligible] = epoch + offsets[eligible]
    return durations, fractions, release, renewals


def iter_trace(spec: TraceSpec, seed: int = 0) -> Iterator[EpochBatch]:
    """Stream the trace one :class:`EpochBatch` at a time.

    Byte-deterministic per ``(spec, seed)``: every epoch draws from its own
    generator derived via ``derive_seed(seed, "trace-epoch", fingerprint,
    epoch)``, and the arrival order within a batch is fixed (Poisson
    arrivals in sampled class order, then window classes in catalogue
    order).  Peak memory is O(arrivals per epoch), never O(trace).
    """
    fingerprint = spec.fingerprint()
    schedules = _window_schedules(spec, seed, fingerprint)
    poisson_classes = spec.catalogue.poisson_classes()
    poisson_index = np.array(
        [spec.catalogue.classes.index(cls) for cls in poisson_classes],
        dtype=np.int64,
    )
    weights = np.array([cls.weight for cls in poisson_classes])
    probabilities = weights / weights.sum() if len(weights) else weights

    for epoch in range(spec.horizon_epochs):
        rng = make_rng(derive_seed(seed, "trace-epoch", fingerprint, epoch))
        parts: list[np.ndarray] = []
        if len(poisson_classes):
            count = int(rng.poisson(spec.rate_at(epoch)))
            if count:
                drawn = rng.choice(len(poisson_classes), size=count, p=probabilities)
                parts.append(poisson_index[drawn])
        for index, counts in schedules:
            if epoch < counts.shape[0] and counts[epoch]:
                parts.append(np.full(int(counts[epoch]), index, dtype=np.int64))
        if parts:
            class_index = np.concatenate(parts)
        else:
            class_index = np.empty(0, dtype=np.int64)
        durations, fractions, release, renewals = _sample_columns(
            spec, rng, epoch, class_index
        )
        yield EpochBatch(
            spec=spec,
            epoch=epoch,
            class_index=class_index,
            duration_epochs=durations,
            demand_fraction=fractions,
            early_release_epoch=release,
            renewals=renewals,
        )


def trace_fingerprint(spec: TraceSpec, seed: int = 0) -> str:
    """SHA-256 over the canonical JSON of the full event stream.

    Two equal fingerprints mean bit-identical traces: same arrivals, same
    order, same sampled attributes, epoch by epoch.  Streaming: the trace
    is hashed batch by batch, never held in memory.
    """
    digest = hashlib.sha256()
    digest.update(spec.fingerprint().encode("ascii"))
    for batch in iter_trace(spec, seed):
        for event in batch.events():
            payload = json.dumps(
                event.to_dict(), sort_keys=True, separators=(",", ":")
            )
            digest.update(payload.encode("utf-8"))
    return digest.hexdigest()
