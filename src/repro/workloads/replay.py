"""Trace replay: a broker-fidelity driver and a columnar city-scale engine.

Two tiers share the same byte-deterministic trace stream
(:func:`repro.workloads.trace.iter_trace`):

* :class:`BrokerReplayDriver` feeds every epoch's arrivals, renewals and
  tenant releases through the real northbound facade
  (``SliceBroker.submit_batch`` / ``release`` / ``advance_epoch``), so a
  small trace exercises the full AC-RR cycle -- admission solver,
  registry, forecasting, events -- exactly as production traffic would.
  The golden suite pins its per-epoch reports at 1e-9.

* :class:`ColumnarReplayEngine` is the scale pass: slice bookkeeping
  lives in numpy column arrays keyed by slot id (a free-list recycles
  slots, so memory is bounded by *peak live*, not trace length), and all
  per-epoch work is O(churn):

  - departures are an expiry wheel (``epoch -> slot array``) populated at
    admission time, so an epoch only touches the slices that actually
    leave -- there is no O(live) registry scan anywhere in the loop;
  - admission is one vectorised reward-density greedy over the epoch's
    batch against the spec's aggregate capacity;
  - live count, occupancy and revenue rate are incremental scalars,
    updated by the epoch's deltas only.

  Per-epoch aggregates stream onto a ring-buffer
  :class:`~repro.controlplane.tsdb.TimeSeriesStore` (bounded by its
  ``retention_epochs``), and the digest of the per-epoch summary stream
  (:attr:`ReplayResult.stream_fingerprint`) is bit-stable per
  ``(spec, seed)``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.controlplane.tsdb import TimeSeriesStore
from repro.core.slices import TEMPLATES, SliceRequest
from repro.workloads.trace import EpochBatch, TraceSpec, iter_trace

__all__ = ["ReplayResult", "ColumnarReplayEngine", "BrokerReplayDriver"]

#: Per-epoch metric series the columnar engine streams onto the TSDB.
REPLAY_METRICS = (
    "arrivals",
    "admitted",
    "rejected",
    "released",
    "expired",
    "renewed",
    "live",
    "occupancy_mbps",
    "revenue_rate",
)


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one columnar replay run.

    ``history`` holds the per-epoch metric series (each ``horizon`` long --
    bounded by the horizon, never by the live-slice count);
    ``stream_fingerprint`` is the SHA-256 of the canonical per-epoch
    summary stream, bit-stable per ``(spec, seed)``.
    """

    spec_fingerprint: str
    seed: int
    epochs: int
    total_arrivals: int
    total_admitted: int
    total_rejected: int
    total_released: int
    total_expired: int
    total_renewed: int
    peak_live: int
    final_live: int
    mean_live: float
    peak_occupancy_mbps: float
    mean_occupancy_fraction: float
    total_revenue: float
    stream_fingerprint: str
    history: dict[str, list[float]] = field(repr=False)

    def summary(self) -> dict[str, Any]:
        """JSON-level scalar view (what the campaign layer caches)."""
        return {
            "epochs": self.epochs,
            "total_arrivals": self.total_arrivals,
            "total_admitted": self.total_admitted,
            "total_rejected": self.total_rejected,
            "total_released": self.total_released,
            "total_expired": self.total_expired,
            "total_renewed": self.total_renewed,
            "peak_live": self.peak_live,
            "final_live": self.final_live,
            "mean_live": self.mean_live,
            "peak_occupancy_mbps": self.peak_occupancy_mbps,
            "mean_occupancy_fraction": self.mean_occupancy_fraction,
            "total_revenue": self.total_revenue,
        }


class _SliceTable:
    """Columnar slot store: per-slice attributes as growable numpy columns.

    Slots are recycled through a free-list stack, so capacity tracks the
    *peak* live population; allocation and release are O(batch) with no
    per-slice Python objects anywhere.
    """

    __slots__ = ("capacity", "load_mbps", "reward_rate", "_free")

    def __init__(self, initial_capacity: int = 1024) -> None:
        self.capacity = max(1, int(initial_capacity))
        self.load_mbps = np.zeros(self.capacity)
        self.reward_rate = np.zeros(self.capacity)
        self._free = list(range(self.capacity - 1, -1, -1))

    def allocate(self, loads: np.ndarray, rewards: np.ndarray) -> np.ndarray:
        count = loads.shape[0]
        while len(self._free) < count:
            self._grow()
        slots = np.array(self._free[-count:][::-1], dtype=np.int64)
        del self._free[len(self._free) - count :]
        self.load_mbps[slots] = loads
        self.reward_rate[slots] = rewards
        return slots

    def free(self, slots: np.ndarray) -> None:
        self._free.extend(int(slot) for slot in slots[::-1])

    def _grow(self) -> None:
        old = self.capacity
        self.capacity = old * 2
        for name in ("load_mbps", "reward_rate"):
            column = getattr(self, name)
            grown = np.zeros(self.capacity)
            grown[:old] = column
            setattr(self, name, grown)
        self._free.extend(range(self.capacity - 1, old - 1, -1))


class ColumnarReplayEngine:
    """Replay a trace at city scale with O(churn) work per epoch."""

    def __init__(
        self,
        spec: TraceSpec,
        seed: int = 0,
        *,
        tsdb: TimeSeriesStore | None = None,
        retention_epochs: int | None = None,
    ) -> None:
        self.spec = spec
        self.seed = int(seed)
        if tsdb is not None and retention_epochs is not None:
            raise ValueError(
                "pass either an existing tsdb or retention_epochs, not both"
            )
        self.tsdb = (
            tsdb
            if tsdb is not None
            else TimeSeriesStore(retention_epochs=retention_epochs)
        )
        classes = spec.catalogue.classes
        self._sla = np.array([cls.slice_template().sla_mbps for cls in classes])
        self._reward = np.array([cls.slice_template().reward for cls in classes])
        self._elastic = np.array([cls.elastic for cls in classes], dtype=bool)

    # ------------------------------------------------------------------ #
    def run(
        self,
        on_epoch: Callable[[int, dict[str, float]], None] | None = None,
    ) -> ReplayResult:
        spec = self.spec
        table = _SliceTable()
        # Expiry wheels: epoch -> slot arrays leaving that epoch.  Entries
        # are written once at admission and consumed once, so an epoch's
        # cost is proportional to its own departures.
        release_wheel: dict[int, list[np.ndarray]] = {}
        expire_wheel: dict[int, list[np.ndarray]] = {}
        renewals_due: dict[int, int] = {}
        tags = {"trace": spec.name}

        live = 0
        occupancy = 0.0
        revenue_rate = 0.0
        total_revenue = 0.0
        peak_live = 0
        peak_occupancy = 0.0
        live_sum = 0.0
        occupancy_sum = 0.0
        totals = {name: 0 for name in REPLAY_METRICS[:6]}
        history: dict[str, list[float]] = {name: [] for name in REPLAY_METRICS}
        digest = hashlib.sha256()

        for batch in iter_trace(spec, self.seed):
            epoch = batch.epoch
            released = expired = 0
            for wheel, kind in ((release_wheel, "released"), (expire_wheel, "expired")):
                for slots in wheel.pop(epoch, ()):
                    occupancy -= float(table.load_mbps[slots].sum())
                    revenue_rate -= float(table.reward_rate[slots].sum())
                    live -= slots.shape[0]
                    table.free(slots)
                    if kind == "released":
                        released += slots.shape[0]
                    else:
                        expired += slots.shape[0]
            renewed = renewals_due.pop(epoch, 0)

            admitted_slots, admitted_rows, rejected = self._admit(
                batch, table, occupancy
            )
            admitted = admitted_slots.shape[0]
            if admitted:
                occupancy += float(table.load_mbps[admitted_slots].sum())
                revenue_rate += float(table.reward_rate[admitted_slots].sum())
                live += admitted
                self._schedule(
                    batch,
                    admitted_rows,
                    admitted_slots,
                    release_wheel,
                    expire_wheel,
                    renewals_due,
                )
            total_revenue += revenue_rate

            live_sum += live
            occupancy_sum += occupancy
            peak_live = max(peak_live, live)
            peak_occupancy = max(peak_occupancy, occupancy)
            metrics = {
                "arrivals": float(len(batch)),
                "admitted": float(admitted),
                "rejected": float(rejected),
                "released": float(released),
                "expired": float(expired),
                "renewed": float(renewed),
                "live": float(live),
                "occupancy_mbps": occupancy,
                "revenue_rate": revenue_rate,
            }
            totals["arrivals"] += len(batch)
            totals["admitted"] += admitted
            totals["rejected"] += rejected
            totals["released"] += released
            totals["expired"] += expired
            totals["renewed"] += renewed
            for name in REPLAY_METRICS:
                self.tsdb.write(f"replay.{name}", epoch, metrics[name], tags=tags)
                history[name].append(metrics[name])
            digest.update(
                json.dumps(
                    {"epoch": epoch, **metrics}, sort_keys=True, separators=(",", ":")
                ).encode("utf-8")
            )
            if on_epoch is not None:
                on_epoch(epoch, metrics)

        epochs = spec.horizon_epochs
        return ReplayResult(
            spec_fingerprint=spec.fingerprint(),
            seed=self.seed,
            epochs=epochs,
            total_arrivals=totals["arrivals"],
            total_admitted=totals["admitted"],
            total_rejected=totals["rejected"],
            total_released=totals["released"],
            total_expired=totals["expired"],
            total_renewed=totals["renewed"],
            peak_live=peak_live,
            final_live=live,
            mean_live=live_sum / epochs,
            peak_occupancy_mbps=peak_occupancy,
            mean_occupancy_fraction=(
                occupancy_sum / epochs / spec.aggregate_capacity_mbps
            ),
            total_revenue=total_revenue,
            stream_fingerprint=digest.hexdigest(),
            history=history,
        )

    # ------------------------------------------------------------------ #
    def _admit(
        self, batch: EpochBatch, table: _SliceTable, occupancy: float
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Vectorised reward-density greedy admission over one batch.

        Books each arrival's load estimate (expected demand for elastic
        classes, full SLA for inelastic ones) against the remaining
        aggregate capacity, admitting by descending reward density with
        the deterministic arrival order breaking ties.  Returns the
        admitted arrivals' table slots, their batch rows and the rejected
        count.
        """
        empty = np.empty(0, dtype=np.int64)
        count = len(batch)
        if not count:
            return empty, empty, 0
        class_index = batch.class_index
        loads = np.where(
            self._elastic[class_index],
            batch.demand_fraction * self._sla[class_index],
            self._sla[class_index],
        )
        rewards = self._reward[class_index]
        order = np.argsort(-(rewards / loads), kind="stable")
        budget = self.spec.aggregate_capacity_mbps - occupancy
        fits = np.cumsum(loads[order]) <= budget
        chosen = order[fits]
        chosen.sort()  # keep arrival order for deterministic slot layout
        if not chosen.shape[0]:
            return empty, empty, count
        slots = table.allocate(loads[chosen], rewards[chosen])
        return slots, chosen, count - chosen.shape[0]

    def _schedule(
        self,
        batch: EpochBatch,
        rows: np.ndarray,
        slots: np.ndarray,
        release_wheel: dict[int, list[np.ndarray]],
        expire_wheel: dict[int, list[np.ndarray]],
        renewals_due: dict[int, int],
    ) -> None:
        """Populate the wheels for one epoch's admitted arrivals.

        Every admitted slice gets exactly one departure entry (tenant
        release or contract expiry) and at most one renewal tick, all
        computed vectorised at admission time -- the per-epoch loop never
        scans the live set.
        """
        epoch = batch.epoch
        durations = batch.duration_epochs[rows]
        renewals = batch.renewals[rows]
        release = batch.early_release_epoch[rows]
        term_end = epoch + durations * (1 + renewals)
        departs = np.where(release >= 0, release, term_end)
        kinds = release >= 0  # True: tenant release, False: contract expiry

        first_term = epoch + durations
        renew_at = first_term[(renewals > 0) & (departs > first_term)]
        if renew_at.shape[0]:
            at, counts = np.unique(renew_at, return_counts=True)
            for when, count in zip(at, counts):
                key = int(when)
                renewals_due[key] = renewals_due.get(key, 0) + int(count)

        for wheel, mask in ((release_wheel, kinds), (expire_wheel, ~kinds)):
            if not mask.any():
                continue
            when = departs[mask]
            what = slots[mask]
            for value in np.unique(when):
                entry = what[when == value]
                wheel.setdefault(int(value), []).append(entry)


class BrokerReplayDriver:
    """Fidelity tier: drive a real :class:`SliceBroker` with a trace.

    Streams the trace through the northbound facade -- ``submit_batch``
    for each epoch's arrivals (and pre-booked renewals), ``release`` for
    tenant-initiated departures, ``advance_epoch`` for the decision cycle
    -- and records one summary dict per epoch.  Meant for small traces:
    the broker path runs the full admission solver every epoch.
    """

    def __init__(self, broker, spec: TraceSpec, seed: int = 0) -> None:
        self.broker = broker
        self.spec = spec
        self.seed = int(seed)

    def run(self) -> list[dict[str, Any]]:
        spec = self.spec
        releases_due: dict[int, list[str]] = {}
        renewals_due: dict[int, list[SliceRequest]] = {}
        live: set[str] = set()
        reports: list[dict[str, Any]] = []

        for batch in iter_trace(spec, self.seed):
            epoch = batch.epoch
            released = []
            for name in releases_due.pop(epoch, []):
                if name in live:
                    self.broker.release(name, epoch=epoch)
                    live.discard(name)
                    released.append(name)

            requests = [
                request
                for request in renewals_due.pop(epoch, [])
                if request.name in live
            ]
            for event in batch.events():
                slice_class = spec.catalogue.class_named(event.slice_class)
                request = SliceRequest(
                    name=event.name,
                    template=TEMPLATES[slice_class.template],
                    duration_epochs=event.duration_epochs,
                    penalty_factor=slice_class.penalty_factor,
                    arrival_epoch=epoch,
                    metadata={
                        "slice_class": event.slice_class,
                        "demand_fraction": event.demand_fraction,
                    },
                )
                requests.append(request)
                if event.early_release_epoch >= 0:
                    releases_due.setdefault(event.early_release_epoch, []).append(
                        event.name
                    )
                if event.renewals > 0:
                    term = epoch + event.duration_epochs
                    if event.early_release_epoch < 0 or event.early_release_epoch > term:
                        renewal = SliceRequest(
                            name=event.name,
                            template=request.template,
                            duration_epochs=event.duration_epochs,
                            penalty_factor=slice_class.penalty_factor,
                            arrival_epoch=term,
                            metadata=dict(request.metadata),
                        )
                        renewals_due.setdefault(term, []).append(renewal)

            if requests:
                self.broker.submit_batch(requests)
            report = self.broker.advance_epoch(epoch)
            live = set(report.active)
            reports.append(
                {
                    "epoch": epoch,
                    "arrivals": len(batch),
                    "released": released,
                    "accepted": list(report.accepted),
                    "rejected": list(report.rejected),
                    "expired": list(report.expired),
                    "renewed": list(report.renewed),
                    "active": len(report.active),
                    "objective_value": report.objective_value,
                }
            )
        return reports
