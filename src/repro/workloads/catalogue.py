"""Template catalogues: the workload classes a city-scale trace draws from.

A :class:`TemplateCatalogue` maps the paper's Table 1 slice templates onto
workload *classes* -- the unit the trace generator samples.  Each class
binds one template to churn statistics (arrival process membership,
duration range), demand statistics (mean fraction of the SLA, relative
std -- expressed through :class:`repro.traffic.patterns.DemandSpec` so the
trace tier and the simulation tier speak the same demand language) and an
elasticity flag:

* **elastic** classes (eMBB-like) tolerate overbooking: their admission
  load estimate is the *expected* demand (``mean_fraction * sla_mbps``);
* **inelastic** classes (mMTC/uRLLC-like) must be provisioned at the full
  SLA bitrate regardless of their mean demand.

Classes also choose their arrival process:

* ``"poisson"`` classes share the spec's seasonal Poisson arrival stream,
  split by class weight;
* ``"window"`` classes are a fixed population arriving uniformly within
  the leading ``arrival_window_fraction`` of the horizon (the scenario
  families' arrival-window churn, scaled to city populations).

Catalogues are plain JSON-level declarations (``as_dict``/``from_dict``)
so a :class:`~repro.workloads.trace.TraceSpec` can embed them in its
content-hashed payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.slices import TEMPLATES, SliceTemplate
from repro.traffic.patterns import DemandSpec
from repro.utils.validation import (
    ensure_choice,
    ensure_in_range,
    ensure_ordered_pair,
    ensure_positive,
    ensure_probability,
)

__all__ = ["SliceClass", "TemplateCatalogue", "CITY_CATALOGUE"]

#: Arrival-process memberships a class can declare.
CHURN_MODES = ("poisson", "window")


@dataclass(frozen=True)
class SliceClass:
    """One workload class: a slice template plus churn/demand statistics."""

    name: str
    template: str
    elastic: bool
    weight: float
    duration_epochs: tuple[int, int]
    mean_fraction: float
    relative_std: float = 0.0
    penalty_factor: float = 1.0
    churn: str = "poisson"
    arrival_window_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("slice class name must be non-empty")
        if self.template not in TEMPLATES:
            raise ValueError(
                f"unknown template {self.template!r}; expected one of "
                f"{sorted(TEMPLATES)}"
            )
        ensure_positive(self.weight, "weight")
        low, high = ensure_ordered_pair(self.duration_epochs, "duration_epochs", low=1)
        object.__setattr__(self, "duration_epochs", (int(low), int(high)))
        ensure_probability(self.mean_fraction, "mean_fraction")
        ensure_in_range(self.relative_std, 0.0, 1.0, "relative_std")
        ensure_positive(self.penalty_factor, "penalty_factor")
        ensure_choice(self.churn, CHURN_MODES, "churn")
        ensure_in_range(
            self.arrival_window_fraction, 0.0, 1.0, "arrival_window_fraction"
        )
        if self.churn == "window" and self.arrival_window_fraction <= 0.0:
            raise ValueError(
                "window classes need arrival_window_fraction > 0, got "
                f"{self.arrival_window_fraction}"
            )

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def slice_template(self) -> SliceTemplate:
        """The Table 1 template this class instantiates."""
        return TEMPLATES[self.template]

    def demand_spec(self) -> DemandSpec:
        """The class's demand statistics as a traffic-layer spec."""
        return DemandSpec(
            mean_fraction=self.mean_fraction, relative_std=self.relative_std
        )

    def load_estimate_mbps(self, demand_fraction: float) -> float:
        """Admission load estimate for one arrival of this class.

        Elastic classes book their sampled expected demand; inelastic
        classes book the full SLA bitrate.
        """
        sla = self.slice_template().sla_mbps
        return demand_fraction * sla if self.elastic else sla

    # ------------------------------------------------------------------ #
    # JSON round trip
    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "template": self.template,
            "elastic": self.elastic,
            "weight": self.weight,
            "duration_epochs": list(self.duration_epochs),
            "mean_fraction": self.mean_fraction,
            "relative_std": self.relative_std,
            "penalty_factor": self.penalty_factor,
            "churn": self.churn,
            "arrival_window_fraction": self.arrival_window_fraction,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SliceClass":
        low, high = payload["duration_epochs"]
        return cls(
            name=str(payload["name"]),
            template=str(payload["template"]),
            elastic=bool(payload["elastic"]),
            weight=float(payload["weight"]),
            duration_epochs=(int(low), int(high)),
            mean_fraction=float(payload["mean_fraction"]),
            relative_std=float(payload.get("relative_std", 0.0)),
            penalty_factor=float(payload.get("penalty_factor", 1.0)),
            churn=str(payload.get("churn", "poisson")),
            arrival_window_fraction=float(
                payload.get("arrival_window_fraction", 1.0)
            ),
        )


@dataclass(frozen=True)
class TemplateCatalogue:
    """A named, ordered set of workload classes."""

    name: str
    classes: tuple[SliceClass, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("catalogue name must be non-empty")
        if not self.classes:
            raise ValueError("catalogue must declare at least one slice class")
        object.__setattr__(self, "classes", tuple(self.classes))
        names = [cls.name for cls in self.classes]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate slice class names in catalogue: {names}")

    # ------------------------------------------------------------------ #
    # Views by arrival process (order-preserving: catalogue order is part
    # of the content hash and of the sampling layout)
    # ------------------------------------------------------------------ #
    def poisson_classes(self) -> tuple[SliceClass, ...]:
        return tuple(cls for cls in self.classes if cls.churn == "poisson")

    def window_classes(self) -> tuple[SliceClass, ...]:
        return tuple(cls for cls in self.classes if cls.churn == "window")

    def class_named(self, name: str) -> SliceClass:
        for cls in self.classes:
            if cls.name == name:
                return cls
        raise KeyError(
            f"no slice class {name!r} in catalogue {self.name!r}; expected "
            f"one of {[cls.name for cls in self.classes]}"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "classes": [cls.as_dict() for cls in self.classes],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TemplateCatalogue":
        return cls(
            name=str(payload["name"]),
            classes=tuple(
                SliceClass.from_dict(entry) for entry in payload["classes"]
            ),
        )


#: Default city catalogue: a broadband-heavy mix with a latency-critical
#: inelastic stream and a long-lived IoT population arriving in the first
#: third of the horizon (the Table 1 templates under city churn).
CITY_CATALOGUE = TemplateCatalogue(
    name="city-v1",
    classes=(
        SliceClass(
            name="embb-elastic",
            template="eMBB",
            elastic=True,
            weight=3.0,
            duration_epochs=(24, 96),
            mean_fraction=0.35,
            relative_std=0.25,
        ),
        SliceClass(
            name="urllc-inelastic",
            template="uRLLC",
            elastic=False,
            weight=2.0,
            duration_epochs=(12, 48),
            mean_fraction=1.0,
            penalty_factor=2.0,
        ),
        SliceClass(
            name="mmtc-iot",
            template="mMTC",
            elastic=False,
            weight=1.0,
            duration_epochs=(96, 168),
            mean_fraction=1.0,
            churn="window",
            arrival_window_fraction=0.33,
        ),
    ),
)
