"""City-scale trace-replay workload tier.

This package generates deterministic, city-scale tenant workloads and
replays them against the control plane:

* :mod:`repro.workloads.catalogue` -- template catalogues binding the
  paper's Table 1 slice templates to elastic/inelastic workload classes
  with churn statistics;
* :mod:`repro.workloads.trace` -- content-hashed :class:`TraceSpec` /
  :class:`TraceEvent` streams, byte-deterministic per ``(spec, seed)``,
  generated epoch by epoch without materialising the whole trace;
* :mod:`repro.workloads.replay` -- the two replay drivers: the
  broker-fidelity driver feeding `SliceBroker.submit_batch` / `release` /
  `advance_epoch` (small traces, golden-pinned), and the columnar engine
  sustaining 100k+ live slices per epoch at O(churn) cost per epoch;
* :mod:`repro.workloads.campaigns` -- the ``trace-replay`` campaign run
  kind wiring the tier into ``python -m repro.experiments``.

Everything under this package sits inside the RA03 deterministic subtree:
no wall clocks, no unseeded RNGs, no unordered-set iteration.
"""

from repro.workloads.catalogue import (
    CITY_CATALOGUE,
    SliceClass,
    TemplateCatalogue,
)
from repro.workloads.replay import (
    BrokerReplayDriver,
    ColumnarReplayEngine,
    ReplayResult,
)
from repro.workloads.trace import (
    EpochBatch,
    FlashCrowd,
    TraceEvent,
    TraceSpec,
    iter_trace,
    trace_fingerprint,
)

__all__ = [
    "CITY_CATALOGUE",
    "SliceClass",
    "TemplateCatalogue",
    "TraceSpec",
    "TraceEvent",
    "FlashCrowd",
    "EpochBatch",
    "iter_trace",
    "trace_fingerprint",
    "BrokerReplayDriver",
    "ColumnarReplayEngine",
    "ReplayResult",
]
