"""The ``trace-replay`` campaign run kind: city-scale workload replays.

Each run replays one content-hashed :class:`~repro.workloads.trace.TraceSpec`
through the columnar engine under a campaign-derived seed and caches the
per-epoch admission/revenue/occupancy summaries -- the standard campaign
machinery (content-addressed cache, executors, resume) applies unchanged.

Two module-level trace presets feed the CLI profiles:

* :data:`QUICK_TRACE` -- a minutes-scale city block (hundreds of live
  slices) for interactive runs and the test suite;
* :data:`CITY_TRACE` -- the full city week: ~2 400 Poisson arrivals per
  epoch over 7 seasonal days plus a 20k IoT arrival-window population,
  sustaining > 100 000 live slices per epoch in steady state (the
  ROADMAP's city-scale deliverable, benchmarked by
  ``benchmarks/bench_trace_replay.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    RunSpec,
    register_run_kind,
)
from repro.utils.validation import ensure_positive_int
from repro.workloads.catalogue import CITY_CATALOGUE
from repro.workloads.replay import ColumnarReplayEngine
from repro.workloads.trace import FlashCrowd, TraceSpec, diurnal_profile

__all__ = [
    "QUICK_TRACE",
    "CITY_TRACE",
    "trace_replay_campaign",
    "reduce_trace_replay",
    "format_trace_replay",
    "TraceReplayRow",
]

#: Metric series copied into each run record's extras (per-epoch lists).
_EXTRA_SERIES = ("live", "admitted", "rejected", "occupancy_mbps", "revenue_rate")


QUICK_TRACE = TraceSpec(
    name="city-quick",
    catalogue=CITY_CATALOGUE,
    horizon_epochs=48,
    epochs_per_day=24,
    arrival_rate=24.0,
    window_population=120,
    day_profile=diurnal_profile(24),
    early_release_probability=0.05,
    renewal_probability=0.2,
    flash_crowds=(FlashCrowd(epoch=30, duration_epochs=4, magnitude=3.0),),
    aggregate_capacity_mbps=40_000.0,
)

CITY_TRACE = TraceSpec(
    name="city-week",
    catalogue=CITY_CATALOGUE,
    horizon_epochs=168,
    epochs_per_day=24,
    arrival_rate=2_400.0,
    window_population=20_000,
    day_profile=diurnal_profile(24),
    early_release_probability=0.05,
    renewal_probability=0.25,
    flash_crowds=(FlashCrowd(epoch=120, duration_epochs=6, magnitude=2.5),),
    aggregate_capacity_mbps=6_000_000.0,
)


@register_run_kind("trace-replay")
def _run_trace_replay(spec: RunSpec) -> dict[str, Any]:
    """Replay the spec's trace through the columnar engine."""
    trace = TraceSpec.from_dict(spec.params["trace"])
    retention = spec.params.get("retention_epochs")
    engine = ColumnarReplayEngine(
        trace,
        seed=spec.seed if spec.seed is not None else 0,
        retention_epochs=int(retention) if retention is not None else None,
    )
    result = engine.run()
    return {
        "summary": result.summary(),
        "extras": {
            "trace": trace.name,
            "spec_fingerprint": result.spec_fingerprint,
            "stream_fingerprint": result.stream_fingerprint,
            "series": {name: result.history[name] for name in _EXTRA_SERIES},
        },
    }


def trace_replay_campaign(
    trace: TraceSpec,
    num_replays: int = 2,
    retention_epochs: int | None = None,
    base_seed: int = 23,
) -> Campaign:
    """Declare ``num_replays`` independent replays of one trace.

    The trace declaration travels in every spec (content-addressed cache
    keys follow the trace's JSON), and each replay index draws an
    independent campaign-derived seed.
    """
    num_replays = ensure_positive_int(num_replays, "num_replays")
    specs = tuple(
        RunSpec(
            experiment=f"trace-replay-{trace.name}",
            kind="trace-replay",
            params={
                "trace": trace.to_dict(),
                "retention_epochs": retention_epochs,
                "replay_index": index,
            },
        )
        for index in range(num_replays)
    )
    return Campaign(
        name=f"trace-replay-{trace.name}", specs=specs, base_seed=base_seed
    )


# --------------------------------------------------------------------- #
# Reduction
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class TraceReplayRow:
    """Reduced outcome of one replay run."""

    replay_index: int
    peak_live: int
    mean_live: float
    total_admitted: int
    total_rejected: int
    total_revenue: float
    mean_occupancy_fraction: float
    stream_fingerprint: str


def reduce_trace_replay(result: CampaignResult) -> list[TraceReplayRow]:
    """One row per replay, ordered by replay index."""
    rows = []
    for record in result.records:
        rows.append(
            TraceReplayRow(
                replay_index=int(record.spec.params["replay_index"]),
                peak_live=int(record.summary["peak_live"]),
                mean_live=float(record.summary["mean_live"]),
                total_admitted=int(record.summary["total_admitted"]),
                total_rejected=int(record.summary["total_rejected"]),
                total_revenue=float(record.summary["total_revenue"]),
                mean_occupancy_fraction=float(
                    record.summary["mean_occupancy_fraction"]
                ),
                stream_fingerprint=str(record.extras["stream_fingerprint"]),
            )
        )
    return sorted(rows, key=lambda row: row.replay_index)


def format_trace_replay(rows: list[TraceReplayRow]) -> str:
    """Human-readable summary of a trace-replay campaign."""
    lines = []
    for row in rows:
        lines.append(
            f"replay {row.replay_index}: peak live {row.peak_live:>7}, "
            f"mean live {row.mean_live:>9.1f}, admitted {row.total_admitted}, "
            f"rejected {row.total_rejected}, "
            f"occupancy {row.mean_occupancy_fraction:.1%}, "
            f"revenue {row.total_revenue:.0f}"
        )
    if rows:
        floor = min(row.peak_live for row in rows)
        lines.append(f"min peak live across replays: {floor}")
    return "\n".join(lines)
