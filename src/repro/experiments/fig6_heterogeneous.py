"""Fig. 6: net revenue in heterogeneous (mixed slice type) scenarios.

The paper mixes pairs of slice types -- eMBB+mMTC, eMBB+uRLLC and mMTC+uRLLC
-- and sweeps the share ``beta`` of the second type while keeping the mean
load at ``0.2 * Lambda``.  The reported metric is the *absolute* net revenue
(monetary units) of the overbooking policies next to the no-overbooking
baseline (the black curve in the figure).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.slices import TEMPLATES
from repro.simulation.runner import run_scenario
from repro.simulation.scenario import heterogeneous_scenario

#: The three panel columns of Fig. 6.
DEFAULT_MIXES = (("eMBB", "mMTC"), ("eMBB", "uRLLC"), ("mMTC", "uRLLC"))
DEFAULT_BETAS = (0.0, 0.25, 0.5, 0.75, 1.0)
DEFAULT_OPERATORS = ("romanian", "swiss", "italian")
DEFAULT_POLICIES = ("optimal", "kac")
DEFAULT_NUM_BASE_STATIONS = 8
DEFAULT_NUM_TENANTS = {"romanian": 10, "swiss": 10, "italian": 20}
DEFAULT_NUM_EPOCHS = 3
DEFAULT_MEAN_LOAD_FRACTION = 0.2


@dataclass(frozen=True)
class Fig6Point:
    """One point of Fig. 6: one beta value of one mix on one operator."""

    operator: str
    mix: tuple[str, str]
    beta: float
    relative_std: float
    penalty_factor: float
    policy: str
    net_revenue: float
    num_admitted: int
    violation_probability: float

    def as_dict(self) -> dict[str, float | str]:
        return {
            "operator": self.operator,
            "mix": f"{self.mix[0]}+{self.mix[1]}",
            "beta": self.beta,
            "relative_std": self.relative_std,
            "penalty_factor": self.penalty_factor,
            "policy": self.policy,
            "net_revenue": self.net_revenue,
            "num_admitted": self.num_admitted,
            "violation_probability": self.violation_probability,
        }


def run_fig6(
    operators: tuple[str, ...] = DEFAULT_OPERATORS,
    mixes: tuple[tuple[str, str], ...] = DEFAULT_MIXES,
    betas: tuple[float, ...] = DEFAULT_BETAS,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    relative_std: float = 0.25,
    penalty_factor: float = 1.0,
    mean_load_fraction: float = DEFAULT_MEAN_LOAD_FRACTION,
    num_base_stations: int | None = DEFAULT_NUM_BASE_STATIONS,
    num_tenants: dict[str, int] | None = None,
    num_epochs: int = DEFAULT_NUM_EPOCHS,
    seed: int | None = 1,
    include_baseline: bool = True,
) -> list[Fig6Point]:
    """Regenerate (a sub-sampled version of) Fig. 6.

    The no-overbooking baseline is included as its own policy row (the black
    curve of the figure) when ``include_baseline`` is set.
    """
    tenants_by_operator = dict(DEFAULT_NUM_TENANTS)
    if num_tenants:
        tenants_by_operator.update(num_tenants)
    all_policies = tuple(policies) + (("no-overbooking",) if include_baseline else ())

    points: list[Fig6Point] = []
    for operator in operators:
        tenants = tenants_by_operator.get(operator, 10)
        for mix in mixes:
            template_a, template_b = TEMPLATES[mix[0]], TEMPLATES[mix[1]]
            for beta in betas:
                scenario = heterogeneous_scenario(
                    operator=operator,
                    template_a=template_a,
                    template_b=template_b,
                    num_tenants=tenants,
                    fraction_b=beta,
                    mean_load_fraction=mean_load_fraction,
                    relative_std=relative_std,
                    penalty_factor=penalty_factor,
                    num_epochs=num_epochs,
                    num_base_stations=num_base_stations,
                    seed=seed,
                )
                for policy in all_policies:
                    result = run_scenario(scenario, policy=policy)
                    points.append(
                        Fig6Point(
                            operator=operator,
                            mix=mix,
                            beta=beta,
                            relative_std=relative_std,
                            penalty_factor=penalty_factor,
                            policy=policy,
                            net_revenue=result.net_revenue,
                            num_admitted=result.num_admitted,
                            violation_probability=result.violation_probability,
                        )
                    )
    return points


def format_fig6(points: list[Fig6Point]) -> str:
    """Plain-text rendering of the Fig. 6 data series."""
    header = (
        f"{'operator':<10} {'mix':<12} {'beta':>5} {'policy':<14} "
        f"{'revenue':>9} {'admitted':>9} {'viol.prob':>10}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        lines.append(
            f"{p.operator:<10} {p.mix[0] + '+' + p.mix[1]:<12} {p.beta:>5.2f} {p.policy:<14} "
            f"{p.net_revenue:>9.2f} {p.num_admitted:>9d} {p.violation_probability:>10.6f}"
        )
    return "\n".join(lines)
