"""Fig. 6: net revenue in heterogeneous (mixed slice type) scenarios.

The paper mixes pairs of slice types -- eMBB+mMTC, eMBB+uRLLC and mMTC+uRLLC
-- and sweeps the share ``beta`` of the second type while keeping the mean
load at ``0.2 * Lambda``.  The reported metric is the *absolute* net revenue
(monetary units) of the overbooking policies next to the no-overbooking
baseline (the black curve in the figure).

Like Fig. 5, the sweep is declared as a campaign (one run spec per scenario
point and policy) and reduced from the run records, so it parallelises and
resumes through the shared campaign machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.campaign import Campaign, CampaignResult, RunSpec, expand_grid

#: The three panel columns of Fig. 6.
DEFAULT_MIXES = (("eMBB", "mMTC"), ("eMBB", "uRLLC"), ("mMTC", "uRLLC"))
DEFAULT_BETAS = (0.0, 0.25, 0.5, 0.75, 1.0)
DEFAULT_OPERATORS = ("romanian", "swiss", "italian")
DEFAULT_POLICIES = ("optimal", "kac")
DEFAULT_NUM_BASE_STATIONS = 8
DEFAULT_NUM_TENANTS = {"romanian": 10, "swiss": 10, "italian": 20}
DEFAULT_NUM_EPOCHS = 3
DEFAULT_MEAN_LOAD_FRACTION = 0.2


@dataclass(frozen=True)
class Fig6Point:
    """One point of Fig. 6: one beta value of one mix on one operator."""

    operator: str
    mix: tuple[str, str]
    beta: float
    relative_std: float
    penalty_factor: float
    policy: str
    net_revenue: float
    num_admitted: int
    violation_probability: float

    def as_dict(self) -> dict[str, float | str]:
        return {
            "operator": self.operator,
            "mix": f"{self.mix[0]}+{self.mix[1]}",
            "beta": self.beta,
            "relative_std": self.relative_std,
            "penalty_factor": self.penalty_factor,
            "policy": self.policy,
            "net_revenue": self.net_revenue,
            "num_admitted": self.num_admitted,
            "violation_probability": self.violation_probability,
        }


def fig6_campaign(
    operators: tuple[str, ...] = DEFAULT_OPERATORS,
    mixes: tuple[tuple[str, str], ...] = DEFAULT_MIXES,
    betas: tuple[float, ...] = DEFAULT_BETAS,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    relative_std: float = 0.25,
    penalty_factor: float = 1.0,
    mean_load_fraction: float = DEFAULT_MEAN_LOAD_FRACTION,
    num_base_stations: int | None = DEFAULT_NUM_BASE_STATIONS,
    num_tenants: dict[str, int] | None = None,
    num_epochs: int = DEFAULT_NUM_EPOCHS,
    seed: int | None = 1,
    include_baseline: bool = True,
) -> Campaign:
    """Declare the Fig. 6 sweep as a campaign (one spec per point/policy)."""
    tenants_by_operator = dict(DEFAULT_NUM_TENANTS)
    if num_tenants:
        tenants_by_operator.update(num_tenants)
    all_policies = _fig6_policies(policies, include_baseline)

    specs: list[RunSpec] = []
    for point in expand_grid(
        {"operator": operators, "mix": mixes, "beta": betas}
    ):
        mix = point["mix"]
        params = {
            "scenario": "heterogeneous",
            "operator": point["operator"],
            "slice_type_a": mix[0],
            "slice_type_b": mix[1],
            "beta": point["beta"],
            "mean_load_fraction": mean_load_fraction,
            "relative_std": relative_std,
            "penalty_factor": penalty_factor,
            "num_tenants": tenants_by_operator.get(point["operator"], 10),
            "num_epochs": num_epochs,
            "num_base_stations": num_base_stations,
        }
        for policy in all_policies:
            specs.append(
                RunSpec(
                    experiment="fig6",
                    kind="simulation",
                    params=params,
                    policy=policy,
                    seed=seed,
                )
            )
    return Campaign(name="fig6", specs=tuple(specs), base_seed=seed)


def _fig6_policies(
    policies: tuple[str, ...], include_baseline: bool
) -> tuple[str, ...]:
    extra = ("no-overbooking",) if include_baseline else ()
    return tuple(policies) + tuple(p for p in extra if p not in policies)


def reduce_fig6(result: CampaignResult) -> list[Fig6Point]:
    """Fold the campaign's run records back into the Fig. 6 point rows."""
    points: list[Fig6Point] = []
    for record in result.records:
        params = record.spec.params
        points.append(
            Fig6Point(
                operator=params["operator"],
                mix=(params["slice_type_a"], params["slice_type_b"]),
                beta=params["beta"],
                relative_std=params["relative_std"],
                penalty_factor=params["penalty_factor"],
                policy=record.spec.policy,
                net_revenue=record.summary["net_revenue"],
                num_admitted=int(record.summary["num_admitted"]),
                violation_probability=record.summary["violation_probability"],
            )
        )
    return points


def run_fig6(
    operators: tuple[str, ...] = DEFAULT_OPERATORS,
    mixes: tuple[tuple[str, str], ...] = DEFAULT_MIXES,
    betas: tuple[float, ...] = DEFAULT_BETAS,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    relative_std: float = 0.25,
    penalty_factor: float = 1.0,
    mean_load_fraction: float = DEFAULT_MEAN_LOAD_FRACTION,
    num_base_stations: int | None = DEFAULT_NUM_BASE_STATIONS,
    num_tenants: dict[str, int] | None = None,
    num_epochs: int = DEFAULT_NUM_EPOCHS,
    seed: int | None = 1,
    include_baseline: bool = True,
    cache_dir=None,
    executor=None,
    workers: int | None = None,
    force: bool = False,
) -> list[Fig6Point]:
    """Regenerate (a sub-sampled version of) Fig. 6.

    The no-overbooking baseline is included as its own policy row (the black
    curve of the figure) when ``include_baseline`` is set.
    """
    campaign = fig6_campaign(
        operators=operators,
        mixes=mixes,
        betas=betas,
        policies=policies,
        relative_std=relative_std,
        penalty_factor=penalty_factor,
        mean_load_fraction=mean_load_fraction,
        num_base_stations=num_base_stations,
        num_tenants=num_tenants,
        num_epochs=num_epochs,
        seed=seed,
        include_baseline=include_baseline,
    )
    result = campaign.run(
        cache_dir=cache_dir, executor=executor, workers=workers, force=force
    )
    return reduce_fig6(result)


def format_fig6(points: list[Fig6Point]) -> str:
    """Plain-text rendering of the Fig. 6 data series."""
    header = (
        f"{'operator':<10} {'mix':<12} {'beta':>5} {'policy':<14} "
        f"{'revenue':>9} {'admitted':>9} {'viol.prob':>10}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        lines.append(
            f"{p.operator:<10} {p.mix[0] + '+' + p.mix[1]:<12} {p.beta:>5.2f} {p.policy:<14} "
            f"{p.net_revenue:>9.2f} {p.num_admitted:>9d} {p.violation_probability:>10.6f}"
        )
    return "\n".join(lines)
