"""Fig. 8: the dynamic proof-of-concept experiment of Section 5.

Nine heterogeneous slice requests arrive over a day on the small testbed
(two base stations, one switch, an edge and a core compute unit); the
experiment compares the overbooking orchestrator against the no-overbooking
baseline and records, per epoch:

* the accumulated net revenue (Fig. 8(a)),
* the per-slice radio reservation vs. utilisation at both BSs (Fig. 8(b)),
* the same for the two CU-facing transport links (Fig. 8(c)),
* the same for the CPU pools of the edge and core CUs (Fig. 8(d)).

The per-policy runs are declared as a campaign; :class:`Fig8Result` is a
view over the persisted run records (net-revenue series, admission outcome
and per-domain usage timelines), so the figure can be re-rendered from the
cache without re-simulating.

The paper's hardware inventory (Table 2) cannot be reproduced in software;
``TESTBED_CONFIG`` documents how each component is substituted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.campaign import Campaign, CampaignResult, RunRecord, RunSpec

#: Substitution map for Table 2 (see DESIGN.md).
TESTBED_CONFIG = {
    "vEPC (OpenEPC Rel. 7, one per slice)": "VNF entry in the slice's simulated network service",
    "UEs (Samsung Galaxy S7, one per slice and BS)": "aggregate per-BS demand stream per slice",
    "Transport (48-port OpenFlow 1.5 switch)": "simulated switch with 1 Gb/s links",
    "RAN (2x NEC 20 MHz small cells with RAN sharing)": "two simulated 20 MHz base stations with PRB-share enforcement",
    "CU (OpenStack Queens, 16 edge / 64 core CPUs)": "edge CU (16 CPUs) and core CU (64 CPUs, +30 ms) in the simulated compute domain",
}

#: The experiment starts at 06:00 and uses one-hour epochs.
START_HOUR = 6


@dataclass(frozen=True)
class Fig8Result:
    """Per-policy run records plus the figure's convenience accessors."""

    records: dict[str, RunRecord]

    def policies(self) -> list[str]:
        return list(self.records)

    def _extras(self, policy: str) -> dict:
        return dict(self.records[policy].extras)

    # -- Fig. 8(a): net revenue over time ------------------------------- #
    def per_epoch_net_revenue(self, policy: str) -> np.ndarray:
        return np.asarray(self._extras(policy)["per_epoch_net"], dtype=float)

    def cumulative_revenue(self, policy: str) -> np.ndarray:
        return np.cumsum(self.per_epoch_net_revenue(policy))

    def revenue_timeline(self, policy: str) -> list[tuple[str, float]]:
        """(hour-of-day label, cumulative net revenue) pairs."""
        cumulative = self.cumulative_revenue(policy)
        return [
            (f"{(START_HOUR + epoch) % 24:02d}:00", float(value))
            for epoch, value in enumerate(cumulative)
        ]

    # -- admission outcomes --------------------------------------------- #
    def admitted(self, policy: str) -> tuple[str, ...]:
        return tuple(self._extras(policy)["final_admitted"])

    def rejected(self, policy: str) -> tuple[str, ...]:
        return tuple(self._extras(policy)["final_rejected"])

    # -- Fig. 8(b)-(d): per-domain reservation vs utilisation ------------ #
    def domain_timeline(
        self, policy: str, domain: str
    ) -> dict[str, list[tuple[str, float, float]]]:
        """Per resource: (hour label, reserved, used) triples over time.

        ``domain`` is one of ``radio``, ``transport`` or ``compute``.
        Transport resources are labelled ``"endpoint--endpoint"``.
        """
        if domain not in ("radio", "transport", "compute"):
            raise ValueError("domain must be 'radio', 'transport' or 'compute'")
        timeline: dict[str, list[tuple[str, float, float]]] = {}
        for epoch_usage in self._extras(policy).get("epoch_usage", []):
            hour = f"{(START_HOUR + epoch_usage['epoch']) % 24:02d}:00"
            for label, usage in epoch_usage[domain].items():
                timeline.setdefault(label, []).append(
                    (hour, usage["reserved"], usage["used"])
                )
        return timeline

    def final_revenue(self, policy: str) -> float:
        return self.records[policy].summary["net_revenue"]


def fig8_campaign(
    policies: tuple[str, ...] = ("optimal", "no-overbooking"),
    num_epochs: int = 18,
    seed: int | None = 3,
) -> Campaign:
    """Declare the testbed experiment as a campaign (one run per policy)."""
    specs = tuple(
        RunSpec(
            experiment="fig8",
            kind="simulation",
            params={"scenario": "testbed", "num_epochs": num_epochs},
            policy=policy,
            seed=seed,
        )
        for policy in policies
    )
    return Campaign(name="fig8", specs=specs, base_seed=seed)


def reduce_fig8(result: CampaignResult) -> Fig8Result:
    """Rebuild the figure view from the campaign's run records."""
    return Fig8Result(
        records={record.spec.policy: record for record in result.records}
    )


def run_fig8(
    policies: tuple[str, ...] = ("optimal", "no-overbooking"),
    num_epochs: int = 18,
    seed: int | None = 3,
    cache_dir=None,
    executor=None,
    workers: int | None = None,
    force: bool = False,
) -> Fig8Result:
    """Run the testbed experiment under each policy and collect the results."""
    campaign = fig8_campaign(policies=policies, num_epochs=num_epochs, seed=seed)
    result = campaign.run(
        cache_dir=cache_dir, executor=executor, workers=workers, force=force
    )
    return reduce_fig8(result)
