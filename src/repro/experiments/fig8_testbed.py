"""Fig. 8: the dynamic proof-of-concept experiment of Section 5.

Nine heterogeneous slice requests arrive over a day on the small testbed
(two base stations, one switch, an edge and a core compute unit); the
experiment compares the overbooking orchestrator against the no-overbooking
baseline and records, per epoch:

* the accumulated net revenue (Fig. 8(a)),
* the per-slice radio reservation vs. utilisation at both BSs (Fig. 8(b)),
* the same for the two CU-facing transport links (Fig. 8(c)),
* the same for the CPU pools of the edge and core CUs (Fig. 8(d)).

The paper's hardware inventory (Table 2) cannot be reproduced in software;
``TESTBED_CONFIG`` documents how each component is substituted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.engine import SimulationResult
from repro.simulation.runner import run_scenario
from repro.simulation.scenario import testbed_scenario

#: Substitution map for Table 2 (see DESIGN.md).
TESTBED_CONFIG = {
    "vEPC (OpenEPC Rel. 7, one per slice)": "VNF entry in the slice's simulated network service",
    "UEs (Samsung Galaxy S7, one per slice and BS)": "aggregate per-BS demand stream per slice",
    "Transport (48-port OpenFlow 1.5 switch)": "simulated switch with 1 Gb/s links",
    "RAN (2x NEC 20 MHz small cells with RAN sharing)": "two simulated 20 MHz base stations with PRB-share enforcement",
    "CU (OpenStack Queens, 16 edge / 64 core CPUs)": "edge CU (16 CPUs) and core CU (64 CPUs, +30 ms) in the simulated compute domain",
}

#: The experiment starts at 06:00 and uses one-hour epochs.
START_HOUR = 6


@dataclass(frozen=True)
class Fig8Result:
    """Per-policy simulation results plus convenience accessors."""

    results: dict[str, SimulationResult]

    def policies(self) -> list[str]:
        return list(self.results)

    # -- Fig. 8(a): net revenue over time ------------------------------- #
    def cumulative_revenue(self, policy: str) -> np.ndarray:
        return np.cumsum(self.results[policy].per_epoch_net_revenue)

    def revenue_timeline(self, policy: str) -> list[tuple[str, float]]:
        """(hour-of-day label, cumulative net revenue) pairs."""
        cumulative = self.cumulative_revenue(policy)
        return [
            (f"{(START_HOUR + epoch) % 24:02d}:00", float(value))
            for epoch, value in enumerate(cumulative)
        ]

    # -- admission outcomes --------------------------------------------- #
    def admitted(self, policy: str) -> tuple[str, ...]:
        return self.results[policy].final_admitted

    def rejected(self, policy: str) -> tuple[str, ...]:
        return self.results[policy].final_rejected

    # -- Fig. 8(b)-(d): per-domain reservation vs utilisation ------------ #
    def domain_timeline(
        self, policy: str, domain: str
    ) -> dict[str, list[tuple[str, float, float]]]:
        """Per resource: (hour label, reserved, used) triples over time.

        ``domain`` is one of ``radio``, ``transport`` or ``compute``.
        """
        if domain not in ("radio", "transport", "compute"):
            raise ValueError("domain must be 'radio', 'transport' or 'compute'")
        result = self.results[policy]
        timeline: dict[str, list[tuple[str, float, float]]] = {}
        for record in result.epoch_records:
            usage_map = {
                "radio": record.radio_usage,
                "transport": record.transport_usage,
                "compute": record.compute_usage,
            }[domain]
            hour = f"{(START_HOUR + record.epoch) % 24:02d}:00"
            for key, usage in usage_map.items():
                label = key if isinstance(key, str) else f"{key[0]}--{key[1]}"
                timeline.setdefault(label, []).append((hour, usage.reserved, usage.used))
        return timeline

    def final_revenue(self, policy: str) -> float:
        return self.results[policy].net_revenue


def run_fig8(
    policies: tuple[str, ...] = ("optimal", "no-overbooking"),
    num_epochs: int = 18,
    seed: int | None = 3,
) -> Fig8Result:
    """Run the testbed experiment under each policy and collect the results."""
    results: dict[str, SimulationResult] = {}
    for policy in policies:
        scenario = testbed_scenario(num_epochs=num_epochs, seed=seed)
        results[policy] = run_scenario(scenario, policy=policy)
    return Fig8Result(results=results)
