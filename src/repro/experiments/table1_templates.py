"""Table 1: the end-to-end network slice templates."""

from __future__ import annotations

from repro.core.slices import SliceTemplate, TEMPLATES


def table1_rows(templates: dict[str, SliceTemplate] | None = None) -> list[dict[str, float | str]]:
    """Regenerate the rows of Table 1 from the template definitions.

    Returns one dictionary per slice type with the columns of the paper's
    table: reward ``R``, latency tolerance ``Delta``, SLA bitrate ``Lambda``,
    whether the demand variability ``sigma`` is a free parameter, and the
    service compute model ``s = {a, b}``.
    """
    templates = templates or TEMPLATES
    rows: list[dict[str, float | str]] = []
    for name, template in templates.items():
        rows.append(
            {
                "slice_type": name,
                "reward": template.reward,
                "latency_tolerance_ms": template.latency_tolerance_ms,
                "sla_mbps": template.sla_mbps,
                "sigma": "variable" if template.default_relative_std > 0 else "0",
                "compute_baseline_cpus": template.compute_baseline_cpus,
                "compute_cpus_per_mbps": template.compute_cpus_per_mbps,
            }
        )
    return rows


def format_table1(rows: list[dict[str, float | str]] | None = None) -> str:
    """Human-readable rendering of Table 1 (used by the examples and benches)."""
    rows = rows if rows is not None else table1_rows()
    header = (
        f"{'type':<8} {'R':>6} {'delta(ms)':>10} {'lambda(Mb/s)':>13} "
        f"{'sigma':>9} {'a(CPU)':>7} {'b(CPU/Mbps)':>12}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['slice_type']:<8} {row['reward']:>6.1f} {row['latency_tolerance_ms']:>10.0f} "
            f"{row['sla_mbps']:>13.0f} {str(row['sigma']):>9} "
            f"{row['compute_baseline_cpus']:>7.1f} {row['compute_cpus_per_mbps']:>12.1f}"
        )
    return "\n".join(lines)
