"""SLA-violation footprint of overbooking (Sections 4.3.3-4.3.4).

The paper argues overbooking is almost free for the tenants: in the most
aggressive configuration (sigma = lambda/2, m = 1) SLA violations occur in
fewer than 0.0001 % of the monitoring samples and affect at most ~10 % of the
traffic; an even more aggressive sanity check (sigma = 3*lambda/4, m = 0.01)
raises this to 0.043 % of samples and ~20 % of traffic.  This experiment runs
those two configurations and reports the same statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.slices import TEMPLATES
from repro.simulation.runner import run_scenario
from repro.simulation.scenario import homogeneous_scenario


@dataclass(frozen=True)
class SlaViolationResult:
    """Violation statistics of one configuration."""

    label: str
    relative_std: float
    penalty_factor: float
    policy: str
    violation_probability: float
    mean_drop_fraction: float
    max_drop_fraction: float
    net_revenue: float

    def as_dict(self) -> dict[str, float | str]:
        return {
            "label": self.label,
            "relative_std": self.relative_std,
            "penalty_factor": self.penalty_factor,
            "policy": self.policy,
            "violation_probability": self.violation_probability,
            "mean_drop_fraction": self.mean_drop_fraction,
            "max_drop_fraction": self.max_drop_fraction,
            "net_revenue": self.net_revenue,
        }


#: The two configurations quoted in the paper's text.
PAPER_CONFIGURATIONS = (
    ("aggressive (sigma=lambda/2, m=1)", 0.5, 1.0),
    ("sanity-check (sigma=3*lambda/4, m=0.01)", 0.75, 0.01),
)


def run_sla_violations(
    operator: str = "romanian",
    slice_type: str = "eMBB",
    alpha: float = 0.5,
    policy: str = "optimal",
    configurations: tuple[tuple[str, float, float], ...] = PAPER_CONFIGURATIONS,
    num_base_stations: int | None = 8,
    num_tenants: int = 10,
    num_epochs: int = 8,
    seed: int | None = 7,
) -> list[SlaViolationResult]:
    """Measure the SLA-violation footprint in the paper's two configurations."""
    results: list[SlaViolationResult] = []
    for label, relative_std, penalty in configurations:
        scenario = homogeneous_scenario(
            operator=operator,
            template=TEMPLATES[slice_type],
            num_tenants=num_tenants,
            mean_load_fraction=alpha,
            relative_std=relative_std,
            penalty_factor=penalty,
            num_epochs=num_epochs,
            num_base_stations=num_base_stations,
            seed=seed,
        )
        result = run_scenario(scenario, policy=policy)
        results.append(
            SlaViolationResult(
                label=label,
                relative_std=relative_std,
                penalty_factor=penalty,
                policy=policy,
                violation_probability=result.violation_probability,
                mean_drop_fraction=result.mean_drop_fraction,
                max_drop_fraction=result.revenue.max_drop_fraction,
                net_revenue=result.net_revenue,
            )
        )
    return results
