"""SLA-violation footprint of overbooking (Sections 4.3.3-4.3.4).

The paper argues overbooking is almost free for the tenants: in the most
aggressive configuration (sigma = lambda/2, m = 1) SLA violations occur in
fewer than 0.0001 % of the monitoring samples and affect at most ~10 % of the
traffic; an even more aggressive sanity check (sigma = 3*lambda/4, m = 0.01)
raises this to 0.043 % of samples and ~20 % of traffic.  This experiment runs
those two configurations (as a campaign, one run per configuration) and
reports the same statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.campaign import Campaign, CampaignResult, RunSpec


@dataclass(frozen=True)
class SlaViolationResult:
    """Violation statistics of one configuration."""

    label: str
    relative_std: float
    penalty_factor: float
    policy: str
    violation_probability: float
    mean_drop_fraction: float
    max_drop_fraction: float
    net_revenue: float

    def as_dict(self) -> dict[str, float | str]:
        return {
            "label": self.label,
            "relative_std": self.relative_std,
            "penalty_factor": self.penalty_factor,
            "policy": self.policy,
            "violation_probability": self.violation_probability,
            "mean_drop_fraction": self.mean_drop_fraction,
            "max_drop_fraction": self.max_drop_fraction,
            "net_revenue": self.net_revenue,
        }


#: The two configurations quoted in the paper's text.
PAPER_CONFIGURATIONS = (
    ("aggressive (sigma=lambda/2, m=1)", 0.5, 1.0),
    ("sanity-check (sigma=3*lambda/4, m=0.01)", 0.75, 0.01),
)


def sla_violations_campaign(
    operator: str = "romanian",
    slice_type: str = "eMBB",
    alpha: float = 0.5,
    policy: str = "optimal",
    configurations: tuple[tuple[str, float, float], ...] = PAPER_CONFIGURATIONS,
    num_base_stations: int | None = 8,
    num_tenants: int = 10,
    num_epochs: int = 8,
    seed: int | None = 7,
) -> Campaign:
    """Declare the SLA-violation sweep as a campaign (one run per config)."""
    specs = tuple(
        RunSpec(
            experiment="sla",
            kind="simulation",
            params={
                "scenario": "homogeneous",
                "operator": operator,
                "slice_type": slice_type,
                "alpha": alpha,
                "relative_std": relative_std,
                "penalty_factor": penalty,
                "num_tenants": num_tenants,
                "num_epochs": num_epochs,
                "num_base_stations": num_base_stations,
                "label": label,
            },
            policy=policy,
            seed=seed,
        )
        for label, relative_std, penalty in configurations
    )
    return Campaign(name="sla", specs=specs, base_seed=seed)


def reduce_sla_violations(result: CampaignResult) -> list[SlaViolationResult]:
    """Fold the run records into the per-configuration statistics rows."""
    rows: list[SlaViolationResult] = []
    for record in result.records:
        params = record.spec.params
        rows.append(
            SlaViolationResult(
                label=params["label"],
                relative_std=params["relative_std"],
                penalty_factor=params["penalty_factor"],
                policy=record.spec.policy,
                violation_probability=record.summary["violation_probability"],
                mean_drop_fraction=record.summary["mean_drop_fraction"],
                max_drop_fraction=record.summary["max_drop_fraction"],
                net_revenue=record.summary["net_revenue"],
            )
        )
    return rows


def run_sla_violations(
    operator: str = "romanian",
    slice_type: str = "eMBB",
    alpha: float = 0.5,
    policy: str = "optimal",
    configurations: tuple[tuple[str, float, float], ...] = PAPER_CONFIGURATIONS,
    num_base_stations: int | None = 8,
    num_tenants: int = 10,
    num_epochs: int = 8,
    seed: int | None = 7,
    cache_dir=None,
    executor=None,
    workers: int | None = None,
    force: bool = False,
) -> list[SlaViolationResult]:
    """Measure the SLA-violation footprint in the paper's two configurations."""
    campaign = sla_violations_campaign(
        operator=operator,
        slice_type=slice_type,
        alpha=alpha,
        policy=policy,
        configurations=configurations,
        num_base_stations=num_base_stations,
        num_tenants=num_tenants,
        num_epochs=num_epochs,
        seed=seed,
    )
    result = campaign.run(
        cache_dir=cache_dir, executor=executor, workers=workers, force=force
    )
    return reduce_sla_violations(result)
