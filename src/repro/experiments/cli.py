"""Command-line front end for the experiment campaigns.

``python -m repro.experiments`` (or the ``repro-experiments`` console
script) drives the campaign layer:

* ``list`` -- show the registered campaigns and their run counts;
* ``run NAME`` -- execute a campaign (``--workers N`` fans out over a
  process pool; re-invocations skip runs already in the cache directory and
  report them as cached);
* ``status [NAME]`` -- show how much of each campaign is already cached.

Each campaign comes in two sizes: the default *quick* grid finishes in tens
of seconds and exists so sweeps (and their caching/parallelism) can be
exercised interactively; ``--full`` switches to the module-level reduced
defaults used by the benchmark harness, which regenerate the figure trends.
Records are cached under ``--cache-dir`` (default ``.repro_campaigns`` or
``$REPRO_CAMPAIGN_DIR``), keyed by each run spec's content hash, so quick
and full sweeps share whatever points they have in common.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Callable

from repro.experiments import ablations, fig4_topologies, fig5_homogeneous
from repro.experiments import fig6_heterogeneous, fig8_testbed, sla_violations
from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    RunStore,
    default_cache_dir,
)
from repro.utils.executors import default_executor

#: Quick-profile grid for Fig. 5 (2 operators x 3 load points, 3 runs each).
_FIG5_QUICK = {
    "operators": ("romanian", "swiss"),
    "slice_types": ("eMBB",),
    "alphas": (0.2, 0.5, 0.8),
    "relative_stds": (0.25,),
    "penalty_factors": (1.0,),
    "policies": ("optimal", "kac"),
    "num_base_stations": 6,
    "num_tenants": {"romanian": 8, "swiss": 8},
    "num_epochs": 2,
    "seed": 1,
}

_FIG6_QUICK = {
    "operators": ("romanian",),
    "mixes": (("eMBB", "mMTC"),),
    "betas": (0.0, 0.5, 1.0),
    "policies": ("optimal", "kac"),
    "num_base_stations": 6,
    "num_tenants": {"romanian": 8},
    "num_epochs": 2,
    "seed": 1,
}


@dataclass(frozen=True)
class CampaignEntry:
    """One runnable campaign: how to build it and how to render its result."""

    name: str
    description: str
    factory: Callable[[bool], tuple[Campaign, Callable[[CampaignResult], str]]]

    def build(self, full: bool) -> tuple[Campaign, Callable[[CampaignResult], str]]:
        return self.factory(full)


def _fig4_factory(full: bool):
    kwargs = {"seed": 1} if full else {"num_base_stations": 12, "seed": 1}
    campaign = fig4_topologies.fig4_campaign(**kwargs)

    def render(result: CampaignResult) -> str:
        rows = fig4_topologies.reduce_fig4(result).rows()
        lines = []
        for row in rows:
            cells = ", ".join(
                f"{key}={value:.2f}" if isinstance(value, float) else f"{key}={value}"
                for key, value in row.items()
            )
            lines.append(cells)
        return "\n".join(lines)

    return campaign, render


def _fig5_factory(full: bool):
    kwargs = {} if full else dict(_FIG5_QUICK)
    campaign = fig5_homogeneous.fig5_campaign(**kwargs)
    policies = kwargs.get("policies", fig5_homogeneous.DEFAULT_POLICIES)

    def render(result: CampaignResult) -> str:
        return fig5_homogeneous.format_fig5(
            fig5_homogeneous.reduce_fig5(result, policies=policies)
        )

    return campaign, render


def _fig6_factory(full: bool):
    kwargs = {} if full else dict(_FIG6_QUICK)
    campaign = fig6_heterogeneous.fig6_campaign(**kwargs)

    def render(result: CampaignResult) -> str:
        return fig6_heterogeneous.format_fig6(fig6_heterogeneous.reduce_fig6(result))

    return campaign, render


def _fig8_factory(full: bool):
    campaign = fig8_testbed.fig8_campaign(num_epochs=18 if full else 10, seed=3)

    def render(result: CampaignResult) -> str:
        fig8 = fig8_testbed.reduce_fig8(result)
        lines = []
        for policy in fig8.policies():
            admitted = ", ".join(fig8.admitted(policy)) or "(none)"
            lines.append(
                f"{policy:>15}: net revenue {fig8.final_revenue(policy):8.2f}, "
                f"admitted {admitted}"
            )
        return "\n".join(lines)

    return campaign, render


def _sla_factory(full: bool):
    kwargs = (
        {}
        if full
        else {"num_base_stations": 4, "num_tenants": 6, "num_epochs": 4, "seed": 5}
    )
    campaign = sla_violations.sla_violations_campaign(**kwargs)

    def render(result: CampaignResult) -> str:
        rows = sla_violations.reduce_sla_violations(result)
        return "\n".join(
            f"{row.label:<42} violations={row.violation_probability:.6%} "
            f"mean-drop={row.mean_drop_fraction:.2%} revenue={row.net_revenue:.2f}"
            for row in rows
        )

    return campaign, render


def _solver_ablation_factory(full: bool):
    sizes = ((4, 4), (6, 6), (8, 8)) if full else ((3, 3), (4, 4))
    solvers = ("optimal", "benders", "kac")
    campaign = ablations.solver_ablation_campaign(sizes=sizes, solvers=solvers, seed=11)

    def render(result: CampaignResult) -> str:
        rows = ablations.reduce_solver_ablation(result, solvers=solvers)
        return "\n".join(
            f"tenants={row.num_tenants:>3} BSs={row.num_base_stations:>3} "
            f"{row.solver:<8} runtime={row.runtime_s:7.3f}s "
            f"gap={row.optimality_gap_percent:6.2f}% admitted={row.num_admitted}"
            for row in rows
        )

    return campaign, render


def _generated_factory(full: bool):
    from repro.scenarios import campaigns as generated_campaigns
    from repro.scenarios.family import CHURN_FAMILY, DIFFERENTIAL_FAMILY

    if full:
        campaign = generated_campaigns.generated_campaign(
            CHURN_FAMILY, num_scenarios=12, base_seed=7
        )
    else:
        campaign = generated_campaigns.generated_campaign(
            DIFFERENTIAL_FAMILY, num_scenarios=4, base_seed=7
        )

    def render(result: CampaignResult) -> str:
        return generated_campaigns.format_generated(
            generated_campaigns.reduce_generated(result)
        )

    return campaign, render


def _trace_replay_factory(full: bool):
    from repro.workloads import campaigns as workload_campaigns

    trace = workload_campaigns.CITY_TRACE if full else workload_campaigns.QUICK_TRACE
    campaign = workload_campaigns.trace_replay_campaign(
        trace, num_replays=2, retention_epochs=trace.epochs_per_day * 7
    )

    def render(result: CampaignResult) -> str:
        return workload_campaigns.format_trace_replay(
            workload_campaigns.reduce_trace_replay(result)
        )

    return campaign, render


def _forecaster_ablation_factory(full: bool):
    kwargs = (
        {}
        if full
        else {
            "forecasters": ("holt-winters", "naive"),
            "num_tenants": 3,
            "num_base_stations": 2,
            "num_days": 2,
            "epochs_per_day": 6,
            "seed": 2,
        }
    )
    campaign = ablations.forecaster_ablation_campaign(**kwargs)

    def render(result: CampaignResult) -> str:
        rows = ablations.reduce_forecaster_ablation(result)
        return "\n".join(
            f"{row.forecaster:<20} revenue={row.net_revenue:8.2f} "
            f"violations={row.violation_probability:.4%} admitted={row.num_admitted}"
            for row in rows
        )

    return campaign, render


CAMPAIGNS: dict[str, CampaignEntry] = {
    entry.name: entry
    for entry in (
        CampaignEntry(
            "fig4", "operator topologies and path statistics", _fig4_factory
        ),
        CampaignEntry(
            "fig5", "revenue gain in homogeneous scenarios", _fig5_factory
        ),
        CampaignEntry(
            "fig6", "net revenue in heterogeneous scenarios", _fig6_factory
        ),
        CampaignEntry("fig8", "dynamic testbed experiment", _fig8_factory),
        CampaignEntry("sla", "SLA-violation footprint", _sla_factory),
        CampaignEntry(
            "solver-ablation", "solver runtime and optimality gap", _solver_ablation_factory
        ),
        CampaignEntry(
            "forecaster-ablation", "forecaster choice on seasonal demand", _forecaster_ablation_factory
        ),
        CampaignEntry(
            "generated", "randomized scenario families (stochastic generator)", _generated_factory
        ),
        CampaignEntry(
            "trace-replay", "city-scale trace replay (columnar workload tier)", _trace_replay_factory
        ),
    )
}


# --------------------------------------------------------------------- #
# Commands
# --------------------------------------------------------------------- #
def _entry(name: str) -> CampaignEntry:
    try:
        return CAMPAIGNS[name]
    except KeyError:
        raise SystemExit(
            f"unknown campaign {name!r}; choose from {', '.join(sorted(CAMPAIGNS))}"
        ) from None


def cmd_list(args: argparse.Namespace, out) -> int:
    print(f"{'campaign':<22} {'runs':>5}  description", file=out)
    print("-" * 60, file=out)
    for name in sorted(CAMPAIGNS):
        campaign, _ = CAMPAIGNS[name].build(args.full)
        print(
            f"{name:<22} {len(campaign.specs):>5}  {CAMPAIGNS[name].description}",
            file=out,
        )
    return 0


def cmd_status(args: argparse.Namespace, out) -> int:
    names = [args.campaign] if args.campaign else sorted(CAMPAIGNS)
    print(f"cache directory: {args.cache_dir}", file=out)
    for name in names:
        campaign, _ = _entry(name).build(args.full)
        status = campaign.status(cache_dir=args.cache_dir)
        print(
            f"{name:<22} {status.cached:>4}/{status.total:<4} runs cached"
            f"{'' if status.missing else '  (complete)'}",
            file=out,
        )
        if args.campaign:  # single campaign: list every run
            store = RunStore(args.cache_dir)
            for spec in campaign.resolved_specs():
                marker = "+" if store.contains(spec) else "."
                print(f"  {marker} {spec.label()}", file=out)
    return 0


def cmd_run(args: argparse.Namespace, out) -> int:
    campaign, render = _entry(args.campaign).build(args.full)
    executor = default_executor(args.workers)
    started = time.perf_counter()
    result = campaign.run(
        cache_dir=args.cache_dir, executor=executor, force=args.force
    )
    elapsed = time.perf_counter() - started
    rate = result.num_executed / elapsed if elapsed > 0 else float("inf")
    print(
        f"campaign {campaign.name}: {len(result.records)} runs "
        f"({result.num_executed} executed, {result.num_cached} cached) "
        f"in {elapsed:.1f}s [{executor!r}, {rate:.2f} runs/s]",
        file=out,
    )
    if result.num_executed == 0 and result.num_cached == len(result.records):
        print("all runs cached; nothing to execute", file=out)
    if not args.no_render:
        print(render(result), file=out)
    return 0


def _add_shared_options(parser: argparse.ArgumentParser, suppress: bool) -> None:
    """Register --cache-dir/--full on a (sub)parser.

    The options are accepted both before and after the subcommand
    (``--cache-dir X run fig5`` and ``run fig5 --cache-dir X``): the
    subparser copies use ``SUPPRESS`` defaults so an omitted flag leaves
    the top-level value untouched instead of clobbering it.
    """
    parser.add_argument(
        "--cache-dir",
        default=argparse.SUPPRESS if suppress else str(default_cache_dir()),
        help="run-record cache directory (default: %(default)s)"
        if not suppress
        else "run-record cache directory",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        default=argparse.SUPPRESS if suppress else False,
        help="use the full reduced-figure grids instead of the quick profiles",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Run the paper's experiment campaigns (parallel, cached, resumable).",
    )
    _add_shared_options(parser, suppress=False)
    sub = parser.add_subparsers(dest="command", required=True)

    listing = sub.add_parser("list", help="list the registered campaigns")
    _add_shared_options(listing, suppress=True)

    status = sub.add_parser("status", help="show cached/total runs per campaign")
    status.add_argument("campaign", nargs="?", help="campaign name (default: all)")
    _add_shared_options(status, suppress=True)

    run = sub.add_parser("run", help="execute a campaign")
    _add_shared_options(run, suppress=True)
    run.add_argument("campaign", help=f"one of: {', '.join(sorted(CAMPAIGNS))}")
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size (default: run serially)",
    )
    run.add_argument(
        "--force", action="store_true", help="re-execute runs even if cached"
    )
    run.add_argument(
        "--no-render", action="store_true", help="skip printing the reduced figure"
    )
    return parser


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    commands = {"list": cmd_list, "status": cmd_status, "run": cmd_run}
    try:
        return commands[args.command](args, out)
    except BrokenPipeError:  # e.g. `... status | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
