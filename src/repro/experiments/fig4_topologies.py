"""Fig. 4: the three operator networks and their path statistics.

The paper characterises the networks through (a)-(c) their structure and
(d)-(e) the distributions of per-path bottleneck capacity and per-path delay
over all candidate paths between base stations and the edge compute unit.
This module regenerates those distributions for the synthetic operator
topologies.

The per-operator computation runs through the campaign layer (run kind
``path-stats``): each operator is one cacheable run whose record stores the
raw per-path capacity/delay samples, and the reduce step rebuilds the
empirical CDFs from them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    RunSpec,
    register_run_kind,
)
from repro.topology.network import NetworkTopology
from repro.topology.operators import OPERATOR_FACTORIES
from repro.topology.paths import PathSet, compute_path_sets
from repro.utils.stats import EmpiricalCDF


@dataclass(frozen=True)
class OperatorPathStatistics:
    """Path statistics of one operator network (one curve of Fig. 4(d)-(e))."""

    operator: str
    num_base_stations: int
    num_links: int
    mean_paths_per_pair: float
    capacity_cdf_gbps: EmpiricalCDF
    delay_cdf_us: EmpiricalCDF

    def summary(self) -> dict[str, float]:
        return {
            "num_base_stations": float(self.num_base_stations),
            "num_links": float(self.num_links),
            "mean_paths_per_pair": self.mean_paths_per_pair,
            "median_capacity_gbps": self.capacity_cdf_gbps.quantile(0.5),
            "max_capacity_gbps": self.capacity_cdf_gbps.quantile(1.0),
            "median_delay_us": self.delay_cdf_us.quantile(0.5),
            "p95_delay_us": self.delay_cdf_us.quantile(0.95),
        }


@dataclass(frozen=True)
class Fig4Result:
    """Per-operator path statistics (the full figure)."""

    operators: dict[str, OperatorPathStatistics]

    def rows(self) -> list[dict[str, float | str]]:
        rows: list[dict[str, float | str]] = []
        for name, stats in self.operators.items():
            row: dict[str, float | str] = {"operator": name}
            row.update(stats.summary())
            rows.append(row)
        return rows


def path_statistics(
    operator: str,
    topology: NetworkTopology,
    path_set: PathSet | None = None,
    k_paths: int = 6,
) -> OperatorPathStatistics:
    """Compute the Fig. 4(d)-(e) statistics for one topology.

    Only paths towards the edge compute unit are considered, matching the
    paper (the green dot in Fig. 4(a)-(c) is the edge CU).
    """
    paths = path_set or compute_path_sets(topology, k=k_paths)
    edge_paths = [p for p in paths.all_paths() if p.compute_unit == "edge-cu"]
    if not edge_paths:
        raise ValueError(f"topology {topology.name!r} has no path to the edge CU")
    capacities_gbps = [p.capacity_mbps / 1000.0 for p in edge_paths]
    delays_us = [p.delay_us for p in edge_paths]
    pairs = {(p.base_station, p.compute_unit) for p in edge_paths}
    mean_paths = len(edge_paths) / len(pairs)
    return OperatorPathStatistics(
        operator=operator,
        num_base_stations=len(topology.base_station_names),
        num_links=len(topology.links),
        mean_paths_per_pair=mean_paths,
        capacity_cdf_gbps=EmpiricalCDF.from_samples(capacities_gbps),
        delay_cdf_us=EmpiricalCDF.from_samples(delays_us),
    )


@register_run_kind("path-stats")
def _run_path_stats_spec(spec: RunSpec) -> dict:
    """Campaign run kind: one operator's Fig. 4 statistics.

    The record's extras keep the raw per-path samples so the reduce step
    (and any later re-rendering from the cache) can rebuild the CDFs.
    """
    params = spec.params
    factory = OPERATOR_FACTORIES[params["operator"]]
    topology = factory(
        num_base_stations=params.get("num_base_stations"), seed=spec.seed
    )
    stats = path_statistics(
        params["operator"], topology, k_paths=int(params.get("k_paths", 6))
    )
    return {
        "summary": stats.summary(),
        "extras": {
            "capacities_gbps": list(stats.capacity_cdf_gbps.values),
            "delays_us": list(stats.delay_cdf_us.values),
        },
    }


def fig4_campaign(
    num_base_stations: int | None = None,
    k_paths: int = 6,
    seed: int | None = None,
    operators: tuple[str, ...] = ("romanian", "swiss", "italian"),
) -> Campaign:
    """Declare the Fig. 4 per-operator computation as a campaign."""
    specs = tuple(
        RunSpec(
            experiment="fig4",
            kind="path-stats",
            params={
                "operator": operator,
                "num_base_stations": num_base_stations,
                "k_paths": k_paths,
            },
            seed=seed,
        )
        for operator in operators
    )
    return Campaign(name="fig4", specs=specs, base_seed=seed)


def reduce_fig4(result: CampaignResult) -> Fig4Result:
    """Rebuild the per-operator statistics from the run records."""
    operators: dict[str, OperatorPathStatistics] = {}
    for record in result.records:
        operator = record.spec.params["operator"]
        operators[operator] = OperatorPathStatistics(
            operator=operator,
            num_base_stations=int(record.summary["num_base_stations"]),
            num_links=int(record.summary["num_links"]),
            mean_paths_per_pair=record.summary["mean_paths_per_pair"],
            capacity_cdf_gbps=EmpiricalCDF.from_samples(
                record.extras["capacities_gbps"]
            ),
            delay_cdf_us=EmpiricalCDF.from_samples(record.extras["delays_us"]),
        )
    return Fig4Result(operators=operators)


def run_fig4(
    num_base_stations: int | None = None,
    k_paths: int = 6,
    seed: int | None = None,
    operators: tuple[str, ...] = ("romanian", "swiss", "italian"),
    cache_dir=None,
    executor=None,
    workers: int | None = None,
    force: bool = False,
) -> Fig4Result:
    """Regenerate Fig. 4 for the requested operators.

    ``num_base_stations=None`` uses the full-size networks (198/197/200 base
    stations); the benchmark harness passes a smaller number to keep its
    runtime reasonable.
    """
    campaign = fig4_campaign(
        num_base_stations=num_base_stations,
        k_paths=k_paths,
        seed=seed,
        operators=operators,
    )
    result = campaign.run(
        cache_dir=cache_dir, executor=executor, workers=workers, force=force
    )
    return reduce_fig4(result)
