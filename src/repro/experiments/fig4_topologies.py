"""Fig. 4: the three operator networks and their path statistics.

The paper characterises the networks through (a)-(c) their structure and
(d)-(e) the distributions of per-path bottleneck capacity and per-path delay
over all candidate paths between base stations and the edge compute unit.
This module regenerates those distributions for the synthetic operator
topologies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.network import NetworkTopology
from repro.topology.operators import OPERATOR_FACTORIES
from repro.topology.paths import PathSet, compute_path_sets
from repro.utils.stats import EmpiricalCDF


@dataclass(frozen=True)
class OperatorPathStatistics:
    """Path statistics of one operator network (one curve of Fig. 4(d)-(e))."""

    operator: str
    num_base_stations: int
    num_links: int
    mean_paths_per_pair: float
    capacity_cdf_gbps: EmpiricalCDF
    delay_cdf_us: EmpiricalCDF

    def summary(self) -> dict[str, float]:
        return {
            "num_base_stations": float(self.num_base_stations),
            "num_links": float(self.num_links),
            "mean_paths_per_pair": self.mean_paths_per_pair,
            "median_capacity_gbps": self.capacity_cdf_gbps.quantile(0.5),
            "max_capacity_gbps": self.capacity_cdf_gbps.quantile(1.0),
            "median_delay_us": self.delay_cdf_us.quantile(0.5),
            "p95_delay_us": self.delay_cdf_us.quantile(0.95),
        }


@dataclass(frozen=True)
class Fig4Result:
    """Per-operator path statistics (the full figure)."""

    operators: dict[str, OperatorPathStatistics]

    def rows(self) -> list[dict[str, float | str]]:
        rows: list[dict[str, float | str]] = []
        for name, stats in self.operators.items():
            row: dict[str, float | str] = {"operator": name}
            row.update(stats.summary())
            rows.append(row)
        return rows


def path_statistics(
    operator: str,
    topology: NetworkTopology,
    path_set: PathSet | None = None,
    k_paths: int = 6,
) -> OperatorPathStatistics:
    """Compute the Fig. 4(d)-(e) statistics for one topology.

    Only paths towards the edge compute unit are considered, matching the
    paper (the green dot in Fig. 4(a)-(c) is the edge CU).
    """
    paths = path_set or compute_path_sets(topology, k=k_paths)
    edge_paths = [p for p in paths.all_paths() if p.compute_unit == "edge-cu"]
    if not edge_paths:
        raise ValueError(f"topology {topology.name!r} has no path to the edge CU")
    capacities_gbps = [p.capacity_mbps / 1000.0 for p in edge_paths]
    delays_us = [p.delay_us for p in edge_paths]
    pairs = {(p.base_station, p.compute_unit) for p in edge_paths}
    mean_paths = len(edge_paths) / len(pairs)
    return OperatorPathStatistics(
        operator=operator,
        num_base_stations=len(topology.base_station_names),
        num_links=len(topology.links),
        mean_paths_per_pair=mean_paths,
        capacity_cdf_gbps=EmpiricalCDF.from_samples(capacities_gbps),
        delay_cdf_us=EmpiricalCDF.from_samples(delays_us),
    )


def run_fig4(
    num_base_stations: int | None = None,
    k_paths: int = 6,
    seed: int | None = None,
    operators: tuple[str, ...] = ("romanian", "swiss", "italian"),
) -> Fig4Result:
    """Regenerate Fig. 4 for the requested operators.

    ``num_base_stations=None`` uses the full-size networks (198/197/200 base
    stations); the benchmark harness passes a smaller number to keep its
    runtime reasonable.
    """
    results: dict[str, OperatorPathStatistics] = {}
    for operator in operators:
        factory = OPERATOR_FACTORIES[operator]
        topology = factory(num_base_stations=num_base_stations, seed=seed)
        results[operator] = path_statistics(operator, topology, k_paths=k_paths)
    return Fig4Result(operators=results)
