"""Reproduction of every table and figure of the paper's evaluation.

Each module regenerates one artefact (see DESIGN.md for the full index):

* :mod:`repro.experiments.table1_templates` -- Table 1 (slice templates);
* :mod:`repro.experiments.fig4_topologies` -- Fig. 4 (operator topologies and
  their path capacity / delay distributions);
* :mod:`repro.experiments.fig5_homogeneous` -- Fig. 5 (relative revenue gain
  in homogeneous scenarios);
* :mod:`repro.experiments.fig6_heterogeneous` -- Fig. 6 (net revenue in
  heterogeneous scenarios);
* :mod:`repro.experiments.sla_violations` -- the SLA-violation statistics
  quoted in Sections 4.3.3-4.3.4;
* :mod:`repro.experiments.fig8_testbed` -- Fig. 8 (the dynamic testbed
  experiment);
* :mod:`repro.experiments.ablations` -- additional ablations (solver runtime
  and optimality gap, forecaster choice).
"""

from repro.experiments.table1_templates import table1_rows
from repro.experiments.fig4_topologies import Fig4Result, run_fig4
from repro.experiments.fig5_homogeneous import Fig5Point, run_fig5
from repro.experiments.fig6_heterogeneous import Fig6Point, run_fig6
from repro.experiments.sla_violations import SlaViolationResult, run_sla_violations
from repro.experiments.fig8_testbed import Fig8Result, run_fig8
from repro.experiments.ablations import (
    SolverAblationRow,
    run_solver_ablation,
    ForecasterAblationRow,
    run_forecaster_ablation,
)

__all__ = [
    "table1_rows",
    "Fig4Result",
    "run_fig4",
    "Fig5Point",
    "run_fig5",
    "Fig6Point",
    "run_fig6",
    "SlaViolationResult",
    "run_sla_violations",
    "Fig8Result",
    "run_fig8",
    "SolverAblationRow",
    "run_solver_ablation",
    "ForecasterAblationRow",
    "run_forecaster_ablation",
]
