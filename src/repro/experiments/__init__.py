"""Reproduction of every table and figure of the paper's evaluation.

Each module regenerates one artefact (see DESIGN.md for the full index):

* :mod:`repro.experiments.table1_templates` -- Table 1 (slice templates);
* :mod:`repro.experiments.fig4_topologies` -- Fig. 4 (operator topologies and
  their path capacity / delay distributions);
* :mod:`repro.experiments.fig5_homogeneous` -- Fig. 5 (relative revenue gain
  in homogeneous scenarios);
* :mod:`repro.experiments.fig6_heterogeneous` -- Fig. 6 (net revenue in
  heterogeneous scenarios);
* :mod:`repro.experiments.sla_violations` -- the SLA-violation statistics
  quoted in Sections 4.3.3-4.3.4;
* :mod:`repro.experiments.fig8_testbed` -- Fig. 8 (the dynamic testbed
  experiment);
* :mod:`repro.experiments.ablations` -- additional ablations (solver runtime
  and optimality gap, forecaster choice).

Every sweep is declared through the campaign layer
(:mod:`repro.experiments.campaign`): grids expand into content-hashed run
specs, execute through pluggable (serial / process-pool) executors with
per-run seeds, persist their records as JSON and resume from the cache.
``python -m repro.experiments`` (see :mod:`repro.experiments.cli`) lists,
runs and reports the status of the registered campaigns.

All simulation run kinds reach the control plane exclusively through the
northbound :class:`~repro.api.broker.SliceBroker` facade (via the simulation
engine); no experiment touches the orchestrator directly.
"""

from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    CampaignStatus,
    RunRecord,
    RunSpec,
    RunStore,
    execute_spec,
    expand_grid,
)
from repro.experiments.table1_templates import table1_rows
from repro.experiments.fig4_topologies import Fig4Result, fig4_campaign, run_fig4
from repro.experiments.fig5_homogeneous import Fig5Point, fig5_campaign, run_fig5
from repro.experiments.fig6_heterogeneous import Fig6Point, fig6_campaign, run_fig6
from repro.experiments.sla_violations import (
    SlaViolationResult,
    run_sla_violations,
    sla_violations_campaign,
)
from repro.experiments.fig8_testbed import Fig8Result, fig8_campaign, run_fig8
from repro.experiments.ablations import (
    SolverAblationRow,
    run_solver_ablation,
    solver_ablation_campaign,
    ForecasterAblationRow,
    run_forecaster_ablation,
    forecaster_ablation_campaign,
)

__all__ = [
    "Campaign",
    "CampaignResult",
    "CampaignStatus",
    "RunRecord",
    "RunSpec",
    "RunStore",
    "execute_spec",
    "expand_grid",
    "table1_rows",
    "Fig4Result",
    "fig4_campaign",
    "run_fig4",
    "Fig5Point",
    "fig5_campaign",
    "run_fig5",
    "Fig6Point",
    "fig6_campaign",
    "run_fig6",
    "SlaViolationResult",
    "sla_violations_campaign",
    "run_sla_violations",
    "Fig8Result",
    "fig8_campaign",
    "run_fig8",
    "SolverAblationRow",
    "solver_ablation_campaign",
    "run_solver_ablation",
    "ForecasterAblationRow",
    "forecaster_ablation_campaign",
    "run_forecaster_ablation",
]
