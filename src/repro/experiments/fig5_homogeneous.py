"""Fig. 5: relative revenue gain of overbooking in homogeneous scenarios.

For every operator network, slice type, mean-load factor ``alpha``, demand
variability ``sigma`` and penalty factor ``m``, the experiment runs the same
scenario under an overbooking policy (optimal and/or KAC) and under the
no-overbooking baseline, and reports the relative net-revenue gain -- the
quantity plotted on the y-axis of Fig. 5.

The paper's full grid (3 operators x 3 slice types x 9 load points x 3
variability levels x 3 penalties, on 197-1497-cell networks) takes CPLEX
hours per point; the defaults below use the reduced operator topologies and a
sub-sampled grid so the whole figure regenerates in minutes, while preserving
the trends (see EXPERIMENTS.md for the paper-vs-measured comparison).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.slices import TEMPLATES
from repro.simulation.runner import run_scenario
from repro.simulation.scenario import homogeneous_scenario
from repro.utils.stats import relative_gain

#: Reduced-scale defaults used by the benchmark harness.
DEFAULT_OPERATORS = ("romanian", "swiss", "italian")
DEFAULT_TEMPLATES = ("eMBB", "mMTC", "uRLLC")
DEFAULT_ALPHAS = (0.2, 0.5, 0.8)
DEFAULT_RELATIVE_STDS = (0.0, 0.25)
DEFAULT_PENALTY_FACTORS = (1.0, 16.0)
DEFAULT_POLICIES = ("optimal", "kac")
DEFAULT_NUM_BASE_STATIONS = 8
DEFAULT_NUM_TENANTS = {"romanian": 10, "swiss": 10, "italian": 20}
DEFAULT_NUM_EPOCHS = 3


@dataclass(frozen=True)
class Fig5Point:
    """One point of Fig. 5 (one x-value of one curve of one panel)."""

    operator: str
    slice_type: str
    alpha: float
    relative_std: float
    penalty_factor: float
    policy: str
    net_revenue: float
    baseline_revenue: float
    gain_percent: float
    num_admitted: int
    baseline_admitted: int
    violation_probability: float

    def as_dict(self) -> dict[str, float | str]:
        return {
            "operator": self.operator,
            "slice_type": self.slice_type,
            "alpha": self.alpha,
            "relative_std": self.relative_std,
            "penalty_factor": self.penalty_factor,
            "policy": self.policy,
            "net_revenue": self.net_revenue,
            "baseline_revenue": self.baseline_revenue,
            "gain_percent": self.gain_percent,
            "num_admitted": self.num_admitted,
            "baseline_admitted": self.baseline_admitted,
            "violation_probability": self.violation_probability,
        }


def run_fig5(
    operators: tuple[str, ...] = DEFAULT_OPERATORS,
    slice_types: tuple[str, ...] = DEFAULT_TEMPLATES,
    alphas: tuple[float, ...] = DEFAULT_ALPHAS,
    relative_stds: tuple[float, ...] = DEFAULT_RELATIVE_STDS,
    penalty_factors: tuple[float, ...] = DEFAULT_PENALTY_FACTORS,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    num_base_stations: int | None = DEFAULT_NUM_BASE_STATIONS,
    num_tenants: dict[str, int] | None = None,
    num_epochs: int = DEFAULT_NUM_EPOCHS,
    seed: int | None = 1,
) -> list[Fig5Point]:
    """Regenerate (a sub-sampled version of) Fig. 5.

    Returns one :class:`Fig5Point` per (operator, slice type, alpha, sigma,
    penalty, policy) combination.
    """
    tenants_by_operator = dict(DEFAULT_NUM_TENANTS)
    if num_tenants:
        tenants_by_operator.update(num_tenants)

    points: list[Fig5Point] = []
    for operator in operators:
        tenants = tenants_by_operator.get(operator, 10)
        for slice_type in slice_types:
            template = TEMPLATES[slice_type]
            for alpha in alphas:
                for relative_std in relative_stds:
                    for penalty in penalty_factors:
                        scenario = homogeneous_scenario(
                            operator=operator,
                            template=template,
                            num_tenants=tenants,
                            mean_load_fraction=alpha,
                            relative_std=relative_std,
                            penalty_factor=penalty,
                            num_epochs=num_epochs,
                            num_base_stations=num_base_stations,
                            seed=seed,
                        )
                        baseline = run_scenario(scenario, policy="no-overbooking")
                        for policy in policies:
                            result = run_scenario(scenario, policy=policy)
                            points.append(
                                Fig5Point(
                                    operator=operator,
                                    slice_type=slice_type,
                                    alpha=alpha,
                                    relative_std=relative_std,
                                    penalty_factor=penalty,
                                    policy=policy,
                                    net_revenue=result.net_revenue,
                                    baseline_revenue=baseline.net_revenue,
                                    gain_percent=relative_gain(
                                        result.net_revenue, baseline.net_revenue
                                    ),
                                    num_admitted=result.num_admitted,
                                    baseline_admitted=baseline.num_admitted,
                                    violation_probability=result.violation_probability,
                                )
                            )
    return points


def format_fig5(points: list[Fig5Point]) -> str:
    """Plain-text rendering of the Fig. 5 data series."""
    header = (
        f"{'operator':<10} {'type':<6} {'alpha':>5} {'std':>5} {'m':>4} {'policy':<8} "
        f"{'revenue':>9} {'baseline':>9} {'gain%':>8} {'viol.prob':>10}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        lines.append(
            f"{p.operator:<10} {p.slice_type:<6} {p.alpha:>5.2f} {p.relative_std:>5.2f} "
            f"{p.penalty_factor:>4.0f} {p.policy:<8} {p.net_revenue:>9.2f} "
            f"{p.baseline_revenue:>9.2f} {p.gain_percent:>8.1f} {p.violation_probability:>10.6f}"
        )
    return "\n".join(lines)
