"""Fig. 5: relative revenue gain of overbooking in homogeneous scenarios.

For every operator network, slice type, mean-load factor ``alpha``, demand
variability ``sigma`` and penalty factor ``m``, the experiment runs the same
scenario under an overbooking policy (optimal and/or KAC) and under the
no-overbooking baseline, and reports the relative net-revenue gain -- the
quantity plotted on the y-axis of Fig. 5.

The sweep is declared as a :class:`repro.experiments.campaign.Campaign`: the
grid expands into one :class:`RunSpec` per (scenario point, policy), the runs
execute through a pluggable executor (parallel and cached/resumable when a
cache directory is given) and :func:`reduce_fig5` folds the persisted records
back into :class:`Fig5Point` rows.

The paper's full grid (3 operators x 3 slice types x 9 load points x 3
variability levels x 3 penalties, on 197-1497-cell networks) takes CPLEX
hours per point; the defaults below use the reduced operator topologies and a
sub-sampled grid so the whole figure regenerates in minutes, while preserving
the trends (see EXPERIMENTS.md for the paper-vs-measured comparison).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    RunRecord,
    RunSpec,
    expand_grid,
)
from repro.utils.rng import spec_hash
from repro.utils.stats import relative_gain

#: The policy every overbooking policy is compared against.
BASELINE_POLICY = "no-overbooking"

#: Reduced-scale defaults used by the benchmark harness.
DEFAULT_OPERATORS = ("romanian", "swiss", "italian")
DEFAULT_TEMPLATES = ("eMBB", "mMTC", "uRLLC")
DEFAULT_ALPHAS = (0.2, 0.5, 0.8)
DEFAULT_RELATIVE_STDS = (0.0, 0.25)
DEFAULT_PENALTY_FACTORS = (1.0, 16.0)
DEFAULT_POLICIES = ("optimal", "kac")
DEFAULT_NUM_BASE_STATIONS = 8
DEFAULT_NUM_TENANTS = {"romanian": 10, "swiss": 10, "italian": 20}
DEFAULT_NUM_EPOCHS = 3


@dataclass(frozen=True)
class Fig5Point:
    """One point of Fig. 5 (one x-value of one curve of one panel)."""

    operator: str
    slice_type: str
    alpha: float
    relative_std: float
    penalty_factor: float
    policy: str
    net_revenue: float
    baseline_revenue: float
    gain_percent: float
    num_admitted: int
    baseline_admitted: int
    violation_probability: float

    def as_dict(self) -> dict[str, float | str]:
        return {
            "operator": self.operator,
            "slice_type": self.slice_type,
            "alpha": self.alpha,
            "relative_std": self.relative_std,
            "penalty_factor": self.penalty_factor,
            "policy": self.policy,
            "net_revenue": self.net_revenue,
            "baseline_revenue": self.baseline_revenue,
            "gain_percent": self.gain_percent,
            "num_admitted": self.num_admitted,
            "baseline_admitted": self.baseline_admitted,
            "violation_probability": self.violation_probability,
        }


def fig5_campaign(
    operators: tuple[str, ...] = DEFAULT_OPERATORS,
    slice_types: tuple[str, ...] = DEFAULT_TEMPLATES,
    alphas: tuple[float, ...] = DEFAULT_ALPHAS,
    relative_stds: tuple[float, ...] = DEFAULT_RELATIVE_STDS,
    penalty_factors: tuple[float, ...] = DEFAULT_PENALTY_FACTORS,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    num_base_stations: int | None = DEFAULT_NUM_BASE_STATIONS,
    num_tenants: dict[str, int] | None = None,
    num_epochs: int = DEFAULT_NUM_EPOCHS,
    seed: int | None = 1,
) -> Campaign:
    """Declare the Fig. 5 sweep as a campaign.

    Every scenario point expands into the baseline run plus one run per
    requested policy; all runs of a point share the scenario seed so the
    comparison stays paired.
    """
    tenants_by_operator = dict(DEFAULT_NUM_TENANTS)
    if num_tenants:
        tenants_by_operator.update(num_tenants)

    specs: list[RunSpec] = []
    for point in expand_grid(
        {
            "operator": operators,
            "slice_type": slice_types,
            "alpha": alphas,
            "relative_std": relative_stds,
            "penalty_factor": penalty_factors,
        }
    ):
        params = {
            "scenario": "homogeneous",
            **point,
            "num_tenants": tenants_by_operator.get(point["operator"], 10),
            "num_epochs": num_epochs,
            "num_base_stations": num_base_stations,
        }
        for policy in _point_policies(policies):
            specs.append(
                RunSpec(
                    experiment="fig5",
                    kind="simulation",
                    params=params,
                    policy=policy,
                    seed=seed,
                )
            )
    return Campaign(name="fig5", specs=tuple(specs), base_seed=seed)


def _point_policies(policies: tuple[str, ...]) -> tuple[str, ...]:
    """Baseline first, then the requested policies (deduplicated)."""
    ordered = [BASELINE_POLICY]
    ordered.extend(policy for policy in policies if policy != BASELINE_POLICY)
    return tuple(ordered)


def reduce_fig5(
    result: CampaignResult, policies: tuple[str, ...] = DEFAULT_POLICIES
) -> list[Fig5Point]:
    """Fold the campaign's run records back into the Fig. 5 point rows."""
    groups: dict[str, dict[str | None, RunRecord]] = {}
    order: list[str] = []
    for record in result.records:
        key = spec_hash(record.spec.scenario_identity())
        if key not in groups:
            groups[key] = {}
            order.append(key)
        groups[key][record.spec.policy] = record

    points: list[Fig5Point] = []
    for key in order:
        by_policy = groups[key]
        baseline = by_policy[BASELINE_POLICY]
        params = baseline.spec.params
        for policy in policies:
            record = by_policy[policy]
            points.append(
                Fig5Point(
                    operator=params["operator"],
                    slice_type=params["slice_type"],
                    alpha=params["alpha"],
                    relative_std=params["relative_std"],
                    penalty_factor=params["penalty_factor"],
                    policy=policy,
                    net_revenue=record.summary["net_revenue"],
                    baseline_revenue=baseline.summary["net_revenue"],
                    gain_percent=relative_gain(
                        record.summary["net_revenue"], baseline.summary["net_revenue"]
                    ),
                    num_admitted=int(record.summary["num_admitted"]),
                    baseline_admitted=int(baseline.summary["num_admitted"]),
                    violation_probability=record.summary["violation_probability"],
                )
            )
    return points


def run_fig5(
    operators: tuple[str, ...] = DEFAULT_OPERATORS,
    slice_types: tuple[str, ...] = DEFAULT_TEMPLATES,
    alphas: tuple[float, ...] = DEFAULT_ALPHAS,
    relative_stds: tuple[float, ...] = DEFAULT_RELATIVE_STDS,
    penalty_factors: tuple[float, ...] = DEFAULT_PENALTY_FACTORS,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    num_base_stations: int | None = DEFAULT_NUM_BASE_STATIONS,
    num_tenants: dict[str, int] | None = None,
    num_epochs: int = DEFAULT_NUM_EPOCHS,
    seed: int | None = 1,
    cache_dir=None,
    executor=None,
    workers: int | None = None,
    force: bool = False,
) -> list[Fig5Point]:
    """Regenerate (a sub-sampled version of) Fig. 5.

    Expands the grid into a campaign, runs it (in parallel when ``workers``
    or ``executor`` say so, resuming from ``cache_dir`` when given) and
    returns one :class:`Fig5Point` per (operator, slice type, alpha, sigma,
    penalty, policy) combination.
    """
    campaign = fig5_campaign(
        operators=operators,
        slice_types=slice_types,
        alphas=alphas,
        relative_stds=relative_stds,
        penalty_factors=penalty_factors,
        policies=policies,
        num_base_stations=num_base_stations,
        num_tenants=num_tenants,
        num_epochs=num_epochs,
        seed=seed,
    )
    result = campaign.run(
        cache_dir=cache_dir, executor=executor, workers=workers, force=force
    )
    return reduce_fig5(result, policies=policies)


def format_fig5(points: list[Fig5Point]) -> str:
    """Plain-text rendering of the Fig. 5 data series."""
    header = (
        f"{'operator':<10} {'type':<6} {'alpha':>5} {'std':>5} {'m':>4} {'policy':<8} "
        f"{'revenue':>9} {'baseline':>9} {'gain%':>8} {'viol.prob':>10}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        lines.append(
            f"{p.operator:<10} {p.slice_type:<6} {p.alpha:>5.2f} {p.relative_std:>5.2f} "
            f"{p.penalty_factor:>4.0f} {p.policy:<8} {p.net_revenue:>9.2f} "
            f"{p.baseline_revenue:>9.2f} {p.gain_percent:>8.1f} {p.violation_probability:>10.6f}"
        )
    return "\n".join(lines)
