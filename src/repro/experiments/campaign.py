"""The experiment-campaign layer: declarative, parallel, resumable sweeps.

The paper's evaluation is a grid of scenario sweeps (Figs. 4-8, Table 1 and
the ablations).  Every figure module used to walk its grid with nested loops
and run each point inline; this module turns the grid into data so the runs
can be fanned out, cached and resumed:

* a :class:`RunSpec` names one independent run -- the experiment it belongs
  to, a *run kind* (how to execute it), JSON-level parameters, the policy
  and the seed.  Specs are content-hashed (:func:`repro.utils.rng.spec_hash`)
  into a ``run_id`` that keys the on-disk cache;
* a :class:`Campaign` is an ordered list of specs.  :meth:`Campaign.run`
  loads the cached records, executes only the missing specs through a
  pluggable executor (:mod:`repro.utils.executors`) and persists each fresh
  :class:`RunRecord` as ``<cache_dir>/<experiment>/<run_id>.json``;
* the figure modules declare their grids as campaigns and *reduce* the
  resulting records into their existing point/result types, so every figure
  is "expand grid -> run (parallel, cached) -> reduce".

Determinism contract: a spec carries everything its run needs, every
stochastic component seeds itself from the spec's ``seed`` through
:func:`repro.utils.rng.derive_seed` (stable across processes since the CRC32
fix), and run kinds are pure functions of the spec.  Hence serial and
process-pool executions produce identical records -- asserted by
``tests/property/test_executor_invariance.py`` -- and cached records can be
trusted regardless of which process produced them.  The one documented
exemption is the ``solver-ablation`` kind's wall-clock ``runtime_s`` field
(see :mod:`repro.experiments.ablations`).
"""

from __future__ import annotations

import importlib
import itertools
import json
import os
import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.utils.executors import SerialExecutor, resolve_executor
from repro.utils.rng import derive_spec_seed, normalize_spec, spec_hash

#: Bump when the persisted record layout changes; loaders reject other versions.
SCHEMA_VERSION = 1

#: Default cache directory (overridable per call and via the environment).
CACHE_DIR_ENV = "REPRO_CAMPAIGN_DIR"
DEFAULT_CACHE_DIR = ".repro_campaigns"


def default_cache_dir() -> Path:
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


# --------------------------------------------------------------------- #
# Specs and records
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class RunSpec:
    """One independent run of a campaign.

    ``params`` must hold JSON-level values only (strings, numbers, booleans,
    lists) so the spec can be content-hashed and rebuilt in a worker process;
    rich objects (templates, topologies) are referenced by name and resolved
    by the run kind.  ``stop_on_converged_revenue`` is part of the spec --
    and therefore of the cache key -- because an early-stopped run covers
    fewer epochs than a full one and the two must never alias in the cache.
    """

    experiment: str
    kind: str
    params: Mapping[str, Any]
    policy: str | None = None
    seed: int | None = None
    stop_on_converged_revenue: bool = False

    def as_dict(self) -> dict[str, Any]:
        """JSON-level view of the spec (tuples and numpy scalars normalised).

        The normalisation matters for caching: a record loaded from disk has
        been through a JSON round trip, so the in-memory spec must serialise
        to exactly the same shapes or :meth:`RunStore.load` would reject
        every cached record for, say, a tuple-valued parameter.
        """
        return {
            "experiment": self.experiment,
            "kind": self.kind,
            "params": normalize_spec(dict(self.params)),
            "policy": self.policy,
            "seed": self.seed,
            "stop_on_converged_revenue": self.stop_on_converged_revenue,
        }

    @property
    def run_id(self) -> str:
        """Content hash keying this run in the on-disk cache."""
        return spec_hash(self.as_dict())

    def label(self) -> str:
        """Short human-readable identifier for status/progress output.

        Mapping-valued params (e.g. a whole scenario-family declaration)
        render as their ``name`` field, or a short content hash, instead of
        the full dict.
        """

        def compact(value: Any) -> Any:
            if isinstance(value, Mapping):
                name = value.get("name")
                return str(name) if name is not None else f"<{spec_hash(value)[:8]}>"
            return value

        params = ",".join(f"{k}={compact(v)}" for k, v in sorted(self.params.items()))
        policy = f":{self.policy}" if self.policy else ""
        return f"{self.experiment}[{params}]{policy}"

    def scenario_identity(self) -> dict[str, Any]:
        """The part of the spec that identifies the *scenario* (not the run).

        Policy and the stopping rule are excluded: paired comparisons (e.g.
        overbooking vs the no-overbooking baseline in Fig. 5) must replay the
        same demand traces, so derived seeds depend only on this identity.
        """
        return {"experiment": self.experiment, "params": dict(self.params)}


@dataclass(frozen=True)
class RunRecord:
    """The persisted outcome of one run: its spec, a flat numeric summary
    and run-kind-specific extras (per-epoch series, usage timelines, ...)."""

    spec: RunSpec
    summary: Mapping[str, float]
    extras: Mapping[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "run_id": self.spec.run_id,
            "spec": self.spec.as_dict(),
            "summary": dict(self.summary),
            "extras": dict(self.extras),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRecord":
        if payload.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported record schema {payload.get('schema')!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        spec = payload["spec"]
        return cls(
            spec=RunSpec(
                experiment=spec["experiment"],
                kind=spec["kind"],
                params=spec["params"],
                policy=spec.get("policy"),
                seed=spec.get("seed"),
                stop_on_converged_revenue=spec.get("stop_on_converged_revenue", False),
            ),
            summary=payload["summary"],
            extras=payload.get("extras", {}),
        )


# --------------------------------------------------------------------- #
# Run kinds
# --------------------------------------------------------------------- #
#: Run kind name -> function executing a spec of that kind.  A run function
#: takes the spec and returns ``{"summary": {...}, "extras": {...}}``.
_RUN_KINDS: dict[str, Callable[[RunSpec], dict[str, Any]]] = {}

#: Where each non-built-in run kind registers itself.  Worker processes only
#: import this module (via pickled :class:`RunSpec`), so unknown kinds are
#: resolved by importing their home module on first use.
_RUN_KIND_MODULES = {
    "path-stats": "repro.experiments.fig4_topologies",
    "solver-ablation": "repro.experiments.ablations",
    "forecaster-ablation": "repro.experiments.ablations",
    "generated": "repro.scenarios.campaigns",
    "trace-replay": "repro.workloads.campaigns",
}


def register_run_kind(name: str):
    """Decorator registering ``fn`` as the executor of run kind ``name``."""

    def decorator(fn: Callable[[RunSpec], dict[str, Any]]):
        _RUN_KINDS[name] = fn
        return fn

    return decorator


def _resolve_run_kind(kind: str) -> Callable[[RunSpec], dict[str, Any]]:
    if kind not in _RUN_KINDS:
        module = _RUN_KIND_MODULES.get(kind)
        if module is not None:
            importlib.import_module(module)
    try:
        return _RUN_KINDS[kind]
    except KeyError as exc:
        known = sorted(set(_RUN_KINDS) | set(_RUN_KIND_MODULES))
        raise KeyError(f"unknown run kind {kind!r}; expected one of {known}") from exc


def execute_spec(spec: RunSpec) -> RunRecord:
    """Execute one spec in the calling process (the executor map function)."""
    outcome = _resolve_run_kind(spec.kind)(spec)
    return RunRecord(
        spec=spec,
        summary=outcome.get("summary", {}),
        extras=outcome.get("extras", {}),
    )


@register_run_kind("simulation")
def _run_simulation_spec(spec: RunSpec) -> dict[str, Any]:
    """Built-in run kind: build a scenario from the spec and simulate it."""
    from repro.simulation.runner import run_scenario, simulation_record

    scenario = build_scenario(spec.params, seed=spec.seed)
    result = run_scenario(
        scenario,
        policy=spec.policy or "optimal",
        stop_on_converged_revenue=spec.stop_on_converged_revenue,
    )
    return simulation_record(result)


def build_scenario(params: Mapping[str, Any], seed: int | None):
    """Rebuild a scenario from JSON-level spec parameters.

    ``params["scenario"]`` selects the constructor; slice templates are
    referenced by name (resolved through ``repro.core.slices.TEMPLATES``) so
    the spec stays hashable and picklable.
    """
    from repro.core.slices import TEMPLATES
    from repro.simulation.scenario import (
        heterogeneous_scenario,
        homogeneous_scenario,
        testbed_scenario,
    )

    kind = params.get("scenario")
    if kind == "homogeneous":
        return homogeneous_scenario(
            operator=params["operator"],
            template=TEMPLATES[params["slice_type"]],
            num_tenants=int(params["num_tenants"]),
            mean_load_fraction=float(params["alpha"]),
            relative_std=float(params.get("relative_std", 0.25)),
            penalty_factor=float(params.get("penalty_factor", 1.0)),
            num_epochs=int(params.get("num_epochs", 24)),
            num_base_stations=params.get("num_base_stations"),
            seed=seed,
            forecast_mode=params.get("forecast_mode", "oracle"),
        )
    if kind == "heterogeneous":
        return heterogeneous_scenario(
            operator=params["operator"],
            template_a=TEMPLATES[params["slice_type_a"]],
            template_b=TEMPLATES[params["slice_type_b"]],
            num_tenants=int(params["num_tenants"]),
            fraction_b=float(params["beta"]),
            mean_load_fraction=float(params.get("mean_load_fraction", 0.2)),
            relative_std=float(params.get("relative_std", 0.25)),
            penalty_factor=float(params.get("penalty_factor", 1.0)),
            num_epochs=int(params.get("num_epochs", 24)),
            num_base_stations=params.get("num_base_stations"),
            seed=seed,
            forecast_mode=params.get("forecast_mode", "oracle"),
        )
    if kind == "testbed":
        return testbed_scenario(
            num_epochs=int(params.get("num_epochs", 18)),
            penalty_factor=float(params.get("penalty_factor", 1.0)),
            mean_load_fraction=float(params.get("mean_load_fraction", 0.5)),
            relative_std=float(params.get("relative_std", 0.1)),
            seed=seed,
        )
    if kind == "generated":
        from repro.scenarios.family import ScenarioFamily
        from repro.scenarios.generator import sample_scenario

        family = ScenarioFamily.from_dict(params["family"])
        return sample_scenario(family, seed=seed if seed is not None else 0)
    raise KeyError(
        f"unknown scenario kind {kind!r}; "
        "expected homogeneous/heterogeneous/testbed/generated"
    )


# --------------------------------------------------------------------- #
# Grid expansion
# --------------------------------------------------------------------- #
def expand_grid(axes: Mapping[str, Sequence[Any]]) -> list[dict[str, Any]]:
    """Cartesian product of named axes, in nested-loop (row-major) order.

    ``expand_grid({"a": (1, 2), "b": ("x",)})`` yields
    ``[{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]`` -- the same order the old
    nested ``for`` loops produced, which the reduce steps rely on.
    """
    keys = list(axes)
    return [
        dict(zip(keys, combo))
        for combo in itertools.product(*(axes[key] for key in keys))
    ]


# --------------------------------------------------------------------- #
# Campaign execution
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class CampaignStatus:
    """How much of a campaign is already in the cache."""

    name: str
    total: int
    cached: int

    @property
    def missing(self) -> int:
        return self.total - self.cached


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of :meth:`Campaign.run`: records aligned with the specs."""

    name: str
    specs: tuple[RunSpec, ...]
    records: tuple[RunRecord, ...]
    num_executed: int
    num_cached: int


@dataclass(frozen=True)
class Campaign:
    """An ordered set of independent runs plus how to seed them.

    ``base_seed`` only matters for specs whose ``seed`` is ``None``: those
    get a deterministic per-run seed derived from the campaign seed and the
    spec's *scenario identity* (params without policy/stopping rule), so
    paired policy comparisons replay identical demand while distinct grid
    points draw independent streams.
    """

    name: str
    specs: tuple[RunSpec, ...]
    base_seed: int | None = None

    def __post_init__(self) -> None:
        ids = [spec.run_id for spec in self.resolved_specs()]
        if len(set(ids)) != len(ids):
            raise ValueError(f"campaign {self.name!r} contains duplicate run specs")

    def resolved_specs(self) -> tuple[RunSpec, ...]:
        """Specs with ``seed=None`` resolved via the campaign base seed."""
        if self.base_seed is None:
            return tuple(self.specs)
        resolved = []
        for spec in self.specs:
            if spec.seed is None:
                seed = derive_spec_seed(self.base_seed, spec.scenario_identity())
                spec = replace(spec, seed=seed)
            resolved.append(spec)
        return tuple(resolved)

    # ------------------------------------------------------------------ #
    def run(
        self,
        cache_dir: str | Path | None = None,
        executor=None,
        workers: int | None = None,
        force: bool = False,
    ) -> CampaignResult:
        """Execute the campaign, reusing cached records where possible.

        ``cache_dir=None`` disables persistence entirely (every run
        executes, nothing is written) -- the hermetic mode used by most
        tests.  Otherwise completed runs are loaded from
        ``<cache_dir>/<experiment>/<run_id>.json`` and only the missing
        specs are executed (through ``executor``, or serially/in a pool
        according to ``workers``).  Each fresh record is persisted as soon
        as its run finishes, so a sweep interrupted (or aborted by a
        failing run) mid-way keeps everything completed up to that point
        and resumes from there.  ``force=True`` re-executes everything and
        overwrites the cache.
        """
        specs = self.resolved_specs()
        executor = resolve_executor(executor, workers)
        store = RunStore(cache_dir) if cache_dir is not None else None

        records: dict[str, RunRecord] = {}
        pending: list[RunSpec] = []
        for spec in specs:
            cached = None if (store is None or force) else store.load(spec)
            if cached is not None:
                records[spec.run_id] = cached
            else:
                pending.append(spec)

        on_result = store.save if store is not None else None
        fresh = (
            executor.map(execute_spec, pending, on_result=on_result)
            if pending
            else []
        )
        for record in fresh:
            records[record.spec.run_id] = record

        return CampaignResult(
            name=self.name,
            specs=specs,
            records=tuple(records[spec.run_id] for spec in specs),
            num_executed=len(pending),
            num_cached=len(specs) - len(pending),
        )

    def status(self, cache_dir: str | Path | None = None) -> CampaignStatus:
        """Count how many of the campaign's runs are already cached."""
        specs = self.resolved_specs()
        if cache_dir is None:
            return CampaignStatus(name=self.name, total=len(specs), cached=0)
        store = RunStore(cache_dir)
        cached = sum(1 for spec in specs if store.contains(spec))
        return CampaignStatus(name=self.name, total=len(specs), cached=cached)


class RunStore:
    """Content-addressed JSON store for run records.

    Layout: ``<root>/<experiment>/<run_id>.json``.  Writes go through a
    temporary file plus :func:`os.replace` so a record is either absent or
    complete -- concurrent sweeps over the same cache directory never
    observe half-written JSON.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def path_for(self, spec: RunSpec) -> Path:
        return self.root / spec.experiment / f"{spec.run_id}.json"

    def contains(self, spec: RunSpec) -> bool:
        """Cheap cached-run check: does a non-empty record file exist?

        The file name *is* the spec's content hash and only validated
        records are ever written there, so existence is enough for status
        counting without parsing the record body (fig8 records carry full
        usage timelines).  :meth:`load` keeps the strict embedded-spec
        check for the execution path, where a corrupt or hand-edited file
        must trigger a re-run.
        """
        try:
            return self.path_for(spec).stat().st_size > 0
        except OSError:
            return False

    def load(self, spec: RunSpec) -> RunRecord | None:
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        try:
            record = RunRecord.from_dict(payload)
        except (KeyError, ValueError):
            return None
        # Guard against hash collisions and hand-edited files: the stored
        # spec must be the one we asked for, or the run is re-executed.
        if record.spec.as_dict() != spec.as_dict():
            return None
        return record

    def save(self, record: RunRecord) -> Path:
        path = self.path_for(record.spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(record.as_dict(), sort_keys=True, indent=1)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{record.spec.run_id}", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path


__all__ = [
    "SCHEMA_VERSION",
    "Campaign",
    "CampaignResult",
    "CampaignStatus",
    "RunRecord",
    "RunSpec",
    "RunStore",
    "SerialExecutor",
    "build_scenario",
    "default_cache_dir",
    "execute_spec",
    "expand_grid",
    "register_run_kind",
]
