"""Ablations beyond the paper's figures.

Two design choices of the system deserve quantification on their own:

* **Solver choice** -- the paper motivates KAC by Benders' convergence time
  ("a few hours" vs "a few seconds").  :func:`run_solver_ablation` solves the
  same AC-RR instances with the direct MILP, Benders decomposition and KAC
  and reports runtime, objective value and optimality gap.
* **Forecaster choice** -- the paper selects multiplicative Holt-Winters over
  double exponential smoothing because mobile demand is seasonal.
  :func:`run_forecaster_ablation` replays a seasonal-demand scenario with
  online forecasting under different forecasters and reports net revenue and
  SLA-violation footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.controlplane.orchestrator import ForecastingBlock
from repro.core.benders import BendersSolver
from repro.core.forecast_inputs import ForecastInput
from repro.core.kac import KACSolver
from repro.core.milp_solver import DirectMILPSolver
from repro.core.problem import ACRRProblem
from repro.core.slices import EMBB_TEMPLATE, TEMPLATES, make_requests
from repro.forecasting import (
    DoubleExponentialForecaster,
    HoltWintersForecaster,
    NaiveForecaster,
    PeakForecaster,
)
from repro.simulation.engine import SimulationEngine
from repro.simulation.runner import make_solver
from repro.simulation.scenario import homogeneous_scenario
from repro.topology.operators import romanian_topology
from repro.topology.paths import compute_path_sets
from repro.traffic.patterns import DemandSpec
from repro.utils.rng import derive_seed


# --------------------------------------------------------------------- #
# Solver ablation
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SolverAblationRow:
    """Runtime/quality of one solver on one instance size."""

    num_tenants: int
    num_base_stations: int
    num_items: int
    solver: str
    runtime_s: float
    objective: float
    optimality_gap_percent: float
    num_admitted: int

    def as_dict(self) -> dict[str, float | str]:
        return {
            "num_tenants": self.num_tenants,
            "num_base_stations": self.num_base_stations,
            "num_items": self.num_items,
            "solver": self.solver,
            "runtime_s": self.runtime_s,
            "objective": self.objective,
            "optimality_gap_percent": self.optimality_gap_percent,
            "num_admitted": self.num_admitted,
        }


def _ablation_problem(
    num_tenants: int, num_base_stations: int, seed: int | None
) -> ACRRProblem:
    topology = romanian_topology(num_base_stations=num_base_stations, seed=seed)
    path_set = compute_path_sets(topology, k=2)
    requests = make_requests(
        TEMPLATES["eMBB"], num_tenants, duration_epochs=24, penalty_factor=1.0
    )
    forecasts = {
        request.name: ForecastInput(lambda_hat_mbps=0.3 * request.sla_mbps, sigma_hat=0.25)
        for request in requests
    }
    return ACRRProblem(topology, path_set, requests, forecasts)


def run_solver_ablation(
    sizes: tuple[tuple[int, int], ...] = ((4, 4), (6, 6), (8, 8)),
    solvers: tuple[str, ...] = ("optimal", "benders", "kac"),
    seed: int | None = 11,
) -> list[SolverAblationRow]:
    """Compare solver runtime and solution quality across instance sizes.

    ``sizes`` is a sequence of (number of tenants, number of base stations).
    The optimality gap of each solver is measured against the direct MILP
    optimum of the same instance.
    """
    solver_factories = {
        "optimal": DirectMILPSolver,
        "benders": lambda: BendersSolver(max_iterations=150),
        "kac": KACSolver,
    }
    rows: list[SolverAblationRow] = []
    for num_tenants, num_bs in sizes:
        problem = _ablation_problem(num_tenants, num_bs, seed)
        reference = DirectMILPSolver().solve(problem)
        for solver_name in solvers:
            decision = solver_factories[solver_name]().solve(problem)
            if reference.objective_value != 0:
                gap = (
                    100.0
                    * (decision.objective_value - reference.objective_value)
                    / abs(reference.objective_value)
                )
            else:
                gap = 0.0
            rows.append(
                SolverAblationRow(
                    num_tenants=num_tenants,
                    num_base_stations=num_bs,
                    num_items=problem.num_items,
                    solver=solver_name,
                    runtime_s=decision.stats.runtime_s,
                    objective=decision.objective_value,
                    optimality_gap_percent=max(0.0, gap),
                    num_admitted=decision.num_accepted,
                )
            )
    return rows


# --------------------------------------------------------------------- #
# Forecaster ablation
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ForecasterAblationRow:
    """Revenue and SLA footprint of one forecaster on a seasonal workload."""

    forecaster: str
    net_revenue: float
    violation_probability: float
    mean_drop_fraction: float
    num_admitted: int

    def as_dict(self) -> dict[str, float | str]:
        return {
            "forecaster": self.forecaster,
            "net_revenue": self.net_revenue,
            "violation_probability": self.violation_probability,
            "mean_drop_fraction": self.mean_drop_fraction,
            "num_admitted": self.num_admitted,
        }


def run_forecaster_ablation(
    forecasters: tuple[str, ...] = ("holt-winters", "double-exponential", "naive", "peak"),
    num_tenants: int = 6,
    num_base_stations: int | None = 4,
    num_days: int = 3,
    epochs_per_day: int = 12,
    policy: str = "optimal",
    seed: int | None = 13,
) -> list[ForecasterAblationRow]:
    """Replay a seasonal workload with online forecasting under each forecaster."""
    factories = {
        "holt-winters": lambda: HoltWintersForecaster(season_length=epochs_per_day),
        "double-exponential": DoubleExponentialForecaster,
        "naive": NaiveForecaster,
        "peak": PeakForecaster,
    }
    num_epochs = num_days * epochs_per_day
    rows: list[ForecasterAblationRow] = []
    for name in forecasters:
        scenario = homogeneous_scenario(
            operator="romanian",
            template=EMBB_TEMPLATE,
            num_tenants=num_tenants,
            mean_load_fraction=0.3,
            relative_std=0.2,
            penalty_factor=1.0,
            num_epochs=num_epochs,
            num_base_stations=num_base_stations,
            seed=derive_seed(seed, name),
            forecast_mode="online",
        )
        # Switch every workload to the seasonal (diurnal) demand so the
        # forecaster actually has seasonality to exploit.
        seasonal_workloads = tuple(
            replace(
                workload,
                demand=DemandSpec(
                    mean_fraction=workload.demand.mean_fraction,
                    relative_std=workload.demand.relative_std,
                    seasonal=True,
                    epochs_per_day=epochs_per_day,
                ),
            )
            for workload in scenario.workloads
        )
        scenario = replace(
            scenario, workloads=seasonal_workloads, epochs_per_day=epochs_per_day
        )
        engine = SimulationEngine(scenario, make_solver(policy), policy_name=policy)
        engine.orchestrator.forecasting = ForecastingBlock(primary=factories[name]())
        result = engine.run()
        rows.append(
            ForecasterAblationRow(
                forecaster=name,
                net_revenue=result.net_revenue,
                violation_probability=result.violation_probability,
                mean_drop_fraction=result.mean_drop_fraction,
                num_admitted=result.num_admitted,
            )
        )
    return rows
