"""Ablations beyond the paper's figures.

Two design choices of the system deserve quantification on their own:

* **Solver choice** -- the paper motivates KAC by Benders' convergence time
  ("a few hours" vs "a few seconds").  :func:`run_solver_ablation` solves the
  same AC-RR instances with the direct MILP, Benders decomposition and KAC
  and reports runtime, objective value and optimality gap.
* **Forecaster choice** -- the paper selects multiplicative Holt-Winters over
  double exponential smoothing because mobile demand is seasonal.
  :func:`run_forecaster_ablation` replays a seasonal-demand scenario with
  online forecasting under different forecasters and reports net revenue and
  SLA-violation footprint.

Both ablations are campaigns with their own run kinds (``solver-ablation``
and ``forecaster-ablation``): one run per (instance size, solver) or per
forecaster, so the sweeps parallelise and cache like the figure grids.  The
optimality gap is computed in the reduce step against the direct-MILP record
of the same instance, which the campaign always includes as the reference.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.controlplane.orchestrator import ForecastingBlock
from repro.core.benders import BendersSolver
from repro.core.forecast_inputs import ForecastInput
from repro.core.kac import KACSolver
from repro.core.milp_solver import DirectMILPSolver
from repro.core.problem import ACRRProblem
from repro.core.slices import EMBB_TEMPLATE, TEMPLATES, make_requests
from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    RunRecord,
    RunSpec,
    register_run_kind,
)
from repro.forecasting import (
    DoubleExponentialForecaster,
    HoltWintersForecaster,
    NaiveForecaster,
    PeakForecaster,
)
from repro.topology.operators import romanian_topology
from repro.topology.paths import compute_path_sets
from repro.traffic.patterns import DemandSpec
from repro.utils.rng import derive_seed

#: The solver solved against as the optimality reference (exact MILP).
REFERENCE_SOLVER = "optimal"


# --------------------------------------------------------------------- #
# Solver ablation
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SolverAblationRow:
    """Runtime/quality of one solver on one instance size."""

    num_tenants: int
    num_base_stations: int
    num_items: int
    solver: str
    runtime_s: float
    objective: float
    optimality_gap_percent: float
    num_admitted: int

    def as_dict(self) -> dict[str, float | str]:
        return {
            "num_tenants": self.num_tenants,
            "num_base_stations": self.num_base_stations,
            "num_items": self.num_items,
            "solver": self.solver,
            "runtime_s": self.runtime_s,
            "objective": self.objective,
            "optimality_gap_percent": self.optimality_gap_percent,
            "num_admitted": self.num_admitted,
        }


def _ablation_problem(
    num_tenants: int, num_base_stations: int, seed: int | None
) -> ACRRProblem:
    topology = romanian_topology(num_base_stations=num_base_stations, seed=seed)
    path_set = compute_path_sets(topology, k=2)
    requests = make_requests(
        TEMPLATES["eMBB"], num_tenants, duration_epochs=24, penalty_factor=1.0
    )
    forecasts = {
        request.name: ForecastInput(lambda_hat_mbps=0.3 * request.sla_mbps, sigma_hat=0.25)
        for request in requests
    }
    return ACRRProblem(topology, path_set, requests, forecasts)


_SOLVER_FACTORIES = {
    "optimal": DirectMILPSolver,
    "benders": lambda: BendersSolver(max_iterations=150),
    "kac": KACSolver,
}


@register_run_kind("solver-ablation")
def _run_solver_ablation_spec(spec: RunSpec) -> dict:
    """Campaign run kind: one solver on one AC-RR instance size.

    ``runtime_s`` is wall-clock and therefore the one summary field exempt
    from the campaign layer's record-determinism contract: a cached sweep
    reports the runtime measured by whichever machine/process first
    populated the cache.  Re-measure with ``force=True`` (or the solver
    benchmark) when the runtime itself is the quantity under study.
    """
    params = spec.params
    problem = _ablation_problem(
        int(params["num_tenants"]), int(params["num_base_stations"]), spec.seed
    )
    decision = _SOLVER_FACTORIES[params["solver"]]().solve(problem)
    return {
        "summary": {
            "runtime_s": decision.stats.runtime_s,
            "objective": decision.objective_value,
            "num_admitted": float(decision.num_accepted),
            "num_items": float(problem.num_items),
        }
    }


def solver_ablation_campaign(
    sizes: tuple[tuple[int, int], ...] = ((4, 4), (6, 6), (8, 8)),
    solvers: tuple[str, ...] = ("optimal", "benders", "kac"),
    seed: int | None = 11,
) -> Campaign:
    """One run per (instance size, solver), plus the MILP reference per size."""
    specs: list[RunSpec] = []
    for num_tenants, num_bs in sizes:
        for solver in _ablation_solvers(solvers):
            specs.append(
                RunSpec(
                    experiment="solver-ablation",
                    kind="solver-ablation",
                    params={
                        "num_tenants": num_tenants,
                        "num_base_stations": num_bs,
                        "solver": solver,
                    },
                    seed=seed,
                )
            )
    return Campaign(name="solver-ablation", specs=tuple(specs), base_seed=seed)


def _ablation_solvers(solvers: tuple[str, ...]) -> tuple[str, ...]:
    """The reference MILP first (the gap baseline), then the requested rest."""
    ordered = [REFERENCE_SOLVER]
    ordered.extend(solver for solver in solvers if solver != REFERENCE_SOLVER)
    return tuple(ordered)


def reduce_solver_ablation(
    result: CampaignResult, solvers: tuple[str, ...] = ("optimal", "benders", "kac")
) -> list[SolverAblationRow]:
    """Compute per-solver rows (gap measured against the MILP record)."""
    by_size: dict[tuple[int, int], dict[str, RunRecord]] = {}
    order: list[tuple[int, int]] = []
    for record in result.records:
        size = (
            int(record.spec.params["num_tenants"]),
            int(record.spec.params["num_base_stations"]),
        )
        if size not in by_size:
            by_size[size] = {}
            order.append(size)
        by_size[size][record.spec.params["solver"]] = record

    rows: list[SolverAblationRow] = []
    for size in order:
        records = by_size[size]
        reference = records[REFERENCE_SOLVER].summary["objective"]
        for solver in solvers:
            record = records[solver]
            objective = record.summary["objective"]
            gap = (
                100.0 * (objective - reference) / abs(reference)
                if reference != 0
                else 0.0
            )
            rows.append(
                SolverAblationRow(
                    num_tenants=size[0],
                    num_base_stations=size[1],
                    num_items=int(record.summary["num_items"]),
                    solver=solver,
                    runtime_s=record.summary["runtime_s"],
                    objective=objective,
                    optimality_gap_percent=max(0.0, gap),
                    num_admitted=int(record.summary["num_admitted"]),
                )
            )
    return rows


def run_solver_ablation(
    sizes: tuple[tuple[int, int], ...] = ((4, 4), (6, 6), (8, 8)),
    solvers: tuple[str, ...] = ("optimal", "benders", "kac"),
    seed: int | None = 11,
    cache_dir=None,
    executor=None,
    workers: int | None = None,
    force: bool = False,
) -> list[SolverAblationRow]:
    """Compare solver runtime and solution quality across instance sizes.

    ``sizes`` is a sequence of (number of tenants, number of base stations).
    The optimality gap of each solver is measured against the direct MILP
    optimum of the same instance.
    """
    campaign = solver_ablation_campaign(sizes=sizes, solvers=solvers, seed=seed)
    result = campaign.run(
        cache_dir=cache_dir, executor=executor, workers=workers, force=force
    )
    return reduce_solver_ablation(result, solvers=solvers)


# --------------------------------------------------------------------- #
# Forecaster ablation
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ForecasterAblationRow:
    """Revenue and SLA footprint of one forecaster on a seasonal workload."""

    forecaster: str
    net_revenue: float
    violation_probability: float
    mean_drop_fraction: float
    num_admitted: int

    def as_dict(self) -> dict[str, float | str]:
        return {
            "forecaster": self.forecaster,
            "net_revenue": self.net_revenue,
            "violation_probability": self.violation_probability,
            "mean_drop_fraction": self.mean_drop_fraction,
            "num_admitted": self.num_admitted,
        }


_FORECASTER_FACTORIES = {
    "holt-winters": lambda epochs_per_day: HoltWintersForecaster(
        season_length=epochs_per_day
    ),
    "double-exponential": lambda epochs_per_day: DoubleExponentialForecaster(),
    "naive": lambda epochs_per_day: NaiveForecaster(),
    "peak": lambda epochs_per_day: PeakForecaster(),
}


@register_run_kind("forecaster-ablation")
def _run_forecaster_ablation_spec(spec: RunSpec) -> dict:
    """Campaign run kind: replay a seasonal workload under one forecaster."""
    from repro.simulation.engine import SimulationEngine
    from repro.simulation.runner import make_solver, simulation_record
    from repro.simulation.scenario import homogeneous_scenario

    params = spec.params
    name = params["forecaster"]
    epochs_per_day = int(params["epochs_per_day"])
    num_epochs = int(params["num_days"]) * epochs_per_day
    scenario = homogeneous_scenario(
        operator="romanian",
        template=EMBB_TEMPLATE,
        num_tenants=int(params["num_tenants"]),
        mean_load_fraction=0.3,
        relative_std=0.2,
        penalty_factor=1.0,
        num_epochs=num_epochs,
        num_base_stations=params.get("num_base_stations"),
        seed=derive_seed(spec.seed, name),
        forecast_mode="online",
    )
    # Switch every workload to the seasonal (diurnal) demand so the
    # forecaster actually has seasonality to exploit.
    seasonal_workloads = tuple(
        replace(
            workload,
            demand=DemandSpec(
                mean_fraction=workload.demand.mean_fraction,
                relative_std=workload.demand.relative_std,
                seasonal=True,
                epochs_per_day=epochs_per_day,
            ),
        )
        for workload in scenario.workloads
    )
    scenario = replace(
        scenario, workloads=seasonal_workloads, epochs_per_day=epochs_per_day
    )
    policy = params.get("policy", "optimal")
    engine = SimulationEngine(scenario, make_solver(policy), policy_name=policy)
    engine.broker.set_forecasting(
        ForecastingBlock(primary=_FORECASTER_FACTORIES[name](epochs_per_day))
    )
    return simulation_record(engine.run())


def forecaster_ablation_campaign(
    forecasters: tuple[str, ...] = ("holt-winters", "double-exponential", "naive", "peak"),
    num_tenants: int = 6,
    num_base_stations: int | None = 4,
    num_days: int = 3,
    epochs_per_day: int = 12,
    policy: str = "optimal",
    seed: int | None = 13,
) -> Campaign:
    """One run per forecaster over the shared seasonal scenario."""
    specs = tuple(
        RunSpec(
            experiment="forecaster-ablation",
            kind="forecaster-ablation",
            params={
                "forecaster": name,
                "num_tenants": num_tenants,
                "num_base_stations": num_base_stations,
                "num_days": num_days,
                "epochs_per_day": epochs_per_day,
                "policy": policy,
            },
            policy=policy,
            seed=seed,
        )
        for name in forecasters
    )
    return Campaign(name="forecaster-ablation", specs=tuple(specs), base_seed=seed)


def reduce_forecaster_ablation(result: CampaignResult) -> list[ForecasterAblationRow]:
    """Fold the run records into the per-forecaster rows."""
    return [
        ForecasterAblationRow(
            forecaster=record.spec.params["forecaster"],
            net_revenue=record.summary["net_revenue"],
            violation_probability=record.summary["violation_probability"],
            mean_drop_fraction=record.summary["mean_drop_fraction"],
            num_admitted=int(record.summary["num_admitted"]),
        )
        for record in result.records
    ]


def run_forecaster_ablation(
    forecasters: tuple[str, ...] = ("holt-winters", "double-exponential", "naive", "peak"),
    num_tenants: int = 6,
    num_base_stations: int | None = 4,
    num_days: int = 3,
    epochs_per_day: int = 12,
    policy: str = "optimal",
    seed: int | None = 13,
    cache_dir=None,
    executor=None,
    workers: int | None = None,
    force: bool = False,
) -> list[ForecasterAblationRow]:
    """Replay a seasonal workload with online forecasting under each forecaster."""
    campaign = forecaster_ablation_campaign(
        forecasters=forecasters,
        num_tenants=num_tenants,
        num_base_stations=num_base_stations,
        num_days=num_days,
        epochs_per_day=epochs_per_day,
        policy=policy,
        seed=seed,
    )
    result = campaign.run(
        cache_dir=cache_dir, executor=executor, workers=workers, force=force
    )
    return reduce_forecaster_ablation(result)
