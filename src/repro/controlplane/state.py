"""Slice lifecycle state, kept by the E2E orchestrator.

The orchestrator is the only stateful control-plane entity (Section 2.2.2):
it remembers which slices were admitted, where they were anchored, and when
they expire, so that constraint (13) -- once admitted, a slice stays admitted
until it expires -- can be enforced in later epochs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.core.slices import SliceRequest


class SliceState(str, enum.Enum):
    """Lifecycle of a slice request."""

    REQUESTED = "requested"
    ADMITTED = "admitted"
    REJECTED = "rejected"
    EXPIRED = "expired"


class SliceStateError(RuntimeError):
    """Raised on an invalid lifecycle transition."""


@dataclass
class SliceRecord:
    """Orchestrator-side record of one slice request."""

    request: SliceRequest
    state: SliceState = SliceState.REQUESTED
    admitted_epoch: int | None = None
    compute_unit: str | None = None
    last_reservations_mbps: dict[str, float] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.request.name

    def copy(self) -> "SliceRecord":
        """Independent copy (records are mutated in place by transitions)."""
        return replace(
            self, last_reservations_mbps=dict(self.last_reservations_mbps)
        )

    def expires_at(self) -> int:
        """First epoch at which an admitted slice stops being provisioned."""
        start = self.admitted_epoch if self.admitted_epoch is not None else self.request.arrival_epoch
        return start + self.request.duration_epochs

    def is_active(self, epoch: int) -> bool:
        return self.state is SliceState.ADMITTED and epoch < self.expires_at()


#: States from which a slice name may be re-submitted as a fresh request.
TERMINAL_STATES = (SliceState.EXPIRED, SliceState.REJECTED)


class SliceRegistry:
    """All slice records known to the orchestrator."""

    def __init__(self) -> None:
        self._records: dict[str, SliceRecord] = {}
        #: Superseded records of renewed slices, oldest first (per name).
        self._archive: dict[str, list[SliceRecord]] = {}

    # ------------------------------------------------------------------ #
    def register(self, request: SliceRequest) -> SliceRecord:
        """Register a freshly received request (state: REQUESTED)."""
        if request.name in self._records:
            raise SliceStateError(f"slice {request.name!r} is already registered")
        record = SliceRecord(request=request)
        self._records[request.name] = record
        return record

    def renew(self, request: SliceRequest) -> SliceRecord:
        """Re-register a request under the name of a terminated slice.

        Renewal semantics: once a slice has reached a terminal state
        (EXPIRED or REJECTED), its tenant may submit a new request under the
        same name; the old record is archived and a fresh REQUESTED record
        takes its place, so the renewal goes through admission control like
        any new arrival.  Renewing a name that is still REQUESTED or ADMITTED
        is a lifecycle error -- the live slice owns the name.
        """
        record = self._records.get(request.name)
        if record is None:
            return self.register(request)
        if record.state not in TERMINAL_STATES:
            raise SliceStateError(
                f"cannot renew slice {request.name!r} from state "
                f"{record.state.value}: only expired or rejected slices "
                "can be re-submitted"
            )
        self._archive.setdefault(request.name, []).append(record)
        fresh = SliceRecord(request=request)
        self._records[request.name] = fresh
        return fresh

    def renewal_count(self, name: str) -> int:
        """How many archived (superseded) records a slice name has."""
        return len(self._archive.get(name, []))

    def archived_records(self, name: str) -> list[SliceRecord]:
        """Superseded records of one slice name, oldest first."""
        return list(self._archive.get(name, []))

    def record(self, name: str) -> SliceRecord:
        return self._records[name]

    def __contains__(self, name: str) -> bool:
        return name in self._records

    def all_records(self) -> list[SliceRecord]:
        return list(self._records.values())

    # ------------------------------------------------------------------ #
    # Transitions
    # ------------------------------------------------------------------ #
    def mark_admitted(
        self,
        name: str,
        epoch: int,
        compute_unit: str | None,
        reservations_mbps: dict[str, float],
    ) -> SliceRecord:
        record = self._records[name]
        if record.state not in (SliceState.REQUESTED, SliceState.ADMITTED):
            raise SliceStateError(
                f"cannot admit slice {name!r} from state {record.state.value}"
            )
        if record.state is SliceState.REQUESTED:
            record.admitted_epoch = epoch
        record.state = SliceState.ADMITTED
        record.compute_unit = compute_unit
        record.last_reservations_mbps = dict(reservations_mbps)
        return record

    def mark_rejected(self, name: str) -> SliceRecord:
        record = self._records[name]
        if record.state is SliceState.ADMITTED:
            raise SliceStateError(
                f"cannot reject slice {name!r}: it was already admitted "
                "(admitted slices can only expire)"
            )
        record.state = SliceState.REJECTED
        return record

    def release(self, name: str) -> SliceRecord:
        """Tenant-initiated early termination of an admitted slice.

        The record moves straight to EXPIRED (the same terminal state a
        natural expiry reaches, so renewals and re-submissions behave
        identically afterwards); the reservations the controllers still hold
        are reclaimed at the start of the next decision epoch, exactly as for
        a natural expiry.  Releasing a slice that is not currently admitted is
        a lifecycle error.
        """
        record = self._records[name]
        if record.state is not SliceState.ADMITTED:
            raise SliceStateError(
                f"cannot release slice {name!r} from state {record.state.value}: "
                "only admitted slices can be released"
            )
        record.state = SliceState.EXPIRED
        return record

    def expire_due(self, epoch: int) -> list[SliceRecord]:
        """Expire every admitted slice whose lifetime ended before ``epoch``."""
        expired = []
        for record in self._records.values():
            if record.state is SliceState.ADMITTED and epoch >= record.expires_at():
                record.state = SliceState.EXPIRED
                expired.append(record)
        return expired

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def active_slices(self, epoch: int) -> list[SliceRecord]:
        """Admitted slices that must remain provisioned during ``epoch``."""
        return [record for record in self._records.values() if record.is_active(epoch)]

    def admitted_names(self) -> list[str]:
        return [
            record.name
            for record in self._records.values()
            if record.state is SliceState.ADMITTED
        ]

    def rejected_names(self) -> list[str]:
        return [
            record.name
            for record in self._records.values()
            if record.state is SliceState.REJECTED
        ]

    # ------------------------------------------------------------------ #
    # Crash-consistent epochs (snapshot / restore)
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Capture the registry state for epoch-level rollback.

        Live records are mutated in place by the lifecycle transitions, so
        each one is copied; archived records are immutable once archived, so
        only the per-name lists are copied.  The snapshot is independent of
        any later mutation -- :meth:`restore` brings the registry back to a
        byte-identical pre-epoch state.
        """
        return {
            "records": {name: record.copy() for name, record in self._records.items()},
            "archive": {name: list(records) for name, records in self._archive.items()},
        }

    def restore(self, snapshot: dict) -> None:
        """Reset the registry to a :meth:`snapshot` taken earlier.

        The registry object itself is preserved (callers hold references to
        it); only its internal tables are swapped.  Records are re-copied so
        the same snapshot can be restored more than once.
        """
        self._records = {
            name: record.copy() for name, record in snapshot["records"].items()
        }
        self._archive = {
            name: list(records) for name, records in snapshot["archive"].items()
        }

    def counts_by_state(self) -> dict[SliceState, int]:
        counts = {state: 0 for state in SliceState}
        for record in self._records.values():
            counts[record.state] += 1
        return counts
