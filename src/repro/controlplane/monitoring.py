"""Monitoring & feedback block of the E2E orchestrator (Section 2.2.2).

Between two decision epochs the controllers collect kappa monitoring samples
of each slice's network load.  The orchestrator only consumes the per-epoch
*peak* of those samples (``lambda^(t) = max_theta lambda^(theta)``), because
reserving for the peak minimises the under-allocation footprint.  This module
stores the raw samples (per slice and base station) in the time-series store
and exposes the per-slice peak history that feeds the Forecasting block.
"""

from __future__ import annotations

import numpy as np

from repro.controlplane.tsdb import TimeSeriesStore

_LOAD_SERIES = "slice_load_mbps"


class MonitoringService:
    """Collects per-slice load samples and derives per-epoch peak histories.

    ``retention_epochs`` caps the per-series history kept by the backing
    store, so the peak history handed to the Forecasting block covers at
    most that many epochs.  It is mutually exclusive with an explicit
    ``store`` (configure retention on the store itself in that case).
    """

    def __init__(
        self,
        store: TimeSeriesStore | None = None,
        retention_epochs: int | None = None,
    ):
        if store is not None and retention_epochs is not None:
            raise ValueError(
                "pass either an explicit store or retention_epochs, not both"
            )
        self.store = store or TimeSeriesStore(retention_epochs=retention_epochs)

    # ------------------------------------------------------------------ #
    # Ingestion (called by the controllers / simulation engine)
    # ------------------------------------------------------------------ #
    def record_samples(
        self,
        slice_name: str,
        base_station: str,
        epoch: int,
        samples_mbps: list[float] | np.ndarray,
    ) -> None:
        """Store the monitoring samples of one slice at one BS for one epoch."""
        self.store.write_many(
            _LOAD_SERIES,
            epoch,
            samples_mbps,
            tags={"slice": slice_name, "bs": base_station},
        )

    # ------------------------------------------------------------------ #
    # Queries (consumed by the Forecasting block)
    # ------------------------------------------------------------------ #
    def observed_base_stations(self, slice_name: str) -> list[str]:
        """Base stations for which samples of this slice have been recorded."""
        stations = []
        for name, tags in self.store.series_names():
            if name == _LOAD_SERIES and tags.get("slice") == slice_name:
                stations.append(tags["bs"])
        return sorted(set(stations))

    def peak_history(self, slice_name: str, base_station: str | None = None) -> np.ndarray:
        """Per-epoch peak load of a slice, ordered by epoch.

        When ``base_station`` is None the peak is taken across every base
        station serving the slice, which is the (conservative) per-site load
        the reservation must cover.
        """
        if base_station is not None:
            per_epoch = self.store.per_epoch_aggregate(
                _LOAD_SERIES, tags={"slice": slice_name, "bs": base_station}, aggregate="max"
            )
            return np.array([per_epoch[e] for e in sorted(per_epoch)])

        merged: dict[int, float] = {}
        for bs in self.observed_base_stations(slice_name):
            per_epoch = self.store.per_epoch_aggregate(
                _LOAD_SERIES, tags={"slice": slice_name, "bs": bs}, aggregate="max"
            )
            for epoch, value in per_epoch.items():
                merged[epoch] = max(merged.get(epoch, 0.0), value)
        return np.array([merged[e] for e in sorted(merged)])

    def num_observed_epochs(self, slice_name: str) -> int:
        return int(self.peak_history(slice_name).size)

    def mean_load(self, slice_name: str) -> float:
        """Mean of all recorded samples of a slice (across BSs and epochs)."""
        values = []
        for bs in self.observed_base_stations(slice_name):
            values.append(
                self.store.values(_LOAD_SERIES, tags={"slice": slice_name, "bs": bs})
            )
        if not values:
            return 0.0
        return float(np.mean(np.concatenate(values)))
