"""Monitoring & feedback block of the E2E orchestrator (Section 2.2.2).

Between two decision epochs the controllers collect kappa monitoring samples
of each slice's network load.  The orchestrator only consumes the per-epoch
*peak* of those samples (``lambda^(t) = max_theta lambda^(theta)``), because
reserving for the peak minimises the under-allocation footprint.  This module
stores the raw samples (per slice and base station) in the time-series store
and exposes the per-slice peak history that feeds the Forecasting block.

The peak history is served from an incremental cache: the store maintains
per-epoch maxima as samples arrive (see :mod:`repro.controlplane.tsdb`), and
the cross-base-station merge performed here is memoised against the backing
series' version counters, so a steady-state epoch whose slices saw no new
samples pays a handful of dictionary lookups instead of re-aggregating raw
samples.
"""

from __future__ import annotations

import numpy as np

from repro.controlplane.tsdb import TimeSeriesStore

_LOAD_SERIES = "slice_load_mbps"


class MonitoringService:
    """Collects per-slice load samples and derives per-epoch peak histories.

    ``retention_epochs`` caps the per-series history kept by the backing
    store, so the peak history handed to the Forecasting block covers at
    most that many epochs.  It is mutually exclusive with an explicit
    ``store`` (configure retention on the store itself in that case).
    """

    def __init__(
        self,
        store: TimeSeriesStore | None = None,
        retention_epochs: int | None = None,
    ):
        if store is not None and retention_epochs is not None:
            raise ValueError(
                "pass either an explicit store or retention_epochs, not both"
            )
        # `store if store is not None`, NOT `store or ...`: an empty
        # TimeSeriesStore has len() == 0 and is falsy, and silently swapping
        # a caller's (shared) store for a private one loses every sample the
        # caller writes to it directly.
        self.store = (
            store if store is not None else TimeSeriesStore(retention_epochs=retention_epochs)
        )
        #: slice name -> sorted BS names with recorded samples.  Maintained
        #: incrementally on ingestion; invalidated wholesale whenever the
        #: store's series count moves (a new series may belong to any slice,
        #: including ones written to the store directly).
        self._stations: dict[str, list[str]] = {}
        self._stations_series_count = 0
        #: slice name -> (per-BS version stamp, merged peak-history array).
        self._peak_cache: dict[str, tuple[tuple, np.ndarray]] = {}

    # ------------------------------------------------------------------ #
    # Ingestion (called by the controllers / simulation engine)
    # ------------------------------------------------------------------ #
    def record_samples(
        self,
        slice_name: str,
        base_station: str,
        epoch: int,
        samples_mbps: list[float] | np.ndarray,
    ) -> None:
        """Store the monitoring samples of one slice at one BS for one epoch."""
        self._sync_station_index()
        self.store.write_many(
            _LOAD_SERIES,
            epoch,
            samples_mbps,
            tags={"slice": slice_name, "bs": base_station},
        )
        stations = self._stations.get(slice_name)
        if stations is None:
            stations = self._stations_from_store(slice_name)
            self._stations[slice_name] = stations
        if base_station not in stations:
            stations.append(base_station)
            stations.sort()
        self._stations_series_count = len(self.store)

    # ------------------------------------------------------------------ #
    # Queries (consumed by the Forecasting block)
    # ------------------------------------------------------------------ #
    def _stations_from_store(self, slice_name: str) -> list[str]:
        stations = set()
        for name, tags in self.store.series_names():
            if name == _LOAD_SERIES and tags.get("slice") == slice_name:
                stations.add(tags["bs"])
        return sorted(stations)

    def _sync_station_index(self) -> None:
        """Drop the station index if series were created behind our back.

        The store's series count is O(1) to read and moves exactly when a
        series appears (or the store is cleared), so a direct ``store``
        write that opens a new (slice, bs) series -- bypassing
        :meth:`record_samples` -- invalidates the cached station lists
        instead of being silently ignored.
        """
        if len(self.store) != self._stations_series_count:
            self._stations.clear()
            self._stations_series_count = len(self.store)

    def observed_base_stations(self, slice_name: str) -> list[str]:
        """Base stations for which samples of this slice have been recorded."""
        self._sync_station_index()
        stations = self._stations.get(slice_name)
        if stations is None:
            stations = self._stations_from_store(slice_name)
            if stations:
                self._stations[slice_name] = stations
        return list(stations)

    def peak_history(self, slice_name: str, base_station: str | None = None) -> np.ndarray:
        """Per-epoch peak load of a slice, ordered by epoch.

        When ``base_station`` is None the peak is taken across every base
        station serving the slice, which is the (conservative) per-site load
        the reservation must cover.  The merged history is cached per slice
        and invalidated through the backing series' version counters, so
        repeated forecasts between writes are O(#base stations).
        """
        if base_station is not None:
            _, peaks = self.store.peak_series(
                _LOAD_SERIES, tags={"slice": slice_name, "bs": base_station}
            )
            return np.array(peaks)

        stations = self.observed_base_stations(slice_name)
        stamp = tuple(
            self.store.series_version(
                _LOAD_SERIES, tags={"slice": slice_name, "bs": bs}
            )
            for bs in stations
        )
        cached = self._peak_cache.get(slice_name)
        if cached is not None and cached[0] == stamp:
            return cached[1]

        merged: dict[int, float] = {}
        for bs in stations:
            epochs, peaks = self.store.peak_series(
                _LOAD_SERIES, tags={"slice": slice_name, "bs": bs}
            )
            for epoch, value in zip(epochs, peaks):
                epoch = int(epoch)
                merged[epoch] = max(merged.get(epoch, 0.0), float(value))
        history = np.array([merged[e] for e in sorted(merged)])
        self._peak_cache[slice_name] = (stamp, history)
        return history

    def num_observed_epochs(self, slice_name: str) -> int:
        return int(self.peak_history(slice_name).size)

    def mean_load(self, slice_name: str) -> float:
        """Mean of all recorded samples of a slice (across BSs and epochs)."""
        values = []
        for bs in self.observed_base_stations(slice_name):
            values.append(
                self.store.values(_LOAD_SERIES, tags={"slice": slice_name, "bs": bs})
            )
        if not values:
            return 0.0
        return float(np.mean(np.concatenate(values)))
