"""Domain controllers: RAN, transport and cloud.

The E2E orchestrator never touches data-plane elements directly; it pushes
per-slice reservations to one controller per domain (Fig. 2), which translate
them into domain-specific artefacts -- PRB shares on base stations, per-link
bandwidth allocations on the SDN transport, CPU reservations on the compute
units -- exactly as the paper's prototype does with proprietary BS interfaces,
Floodlight flow rules and OpenStack Heat templates.  The controllers are
stateless between epochs apart from the currently enforced reservation, and
they expose the utilisation numbers the monitoring block collects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.problem import ACRRProblem
from repro.core.solution import OrchestrationDecision
from repro.radio.ran_sharing import RanSlicingEnforcer
from repro.topology.network import NetworkTopology


class RanController:
    """Grants PRB shares of every base station to the admitted slices."""

    def __init__(self, topology: NetworkTopology):
        self.topology = topology
        self.enforcers: dict[str, RanSlicingEnforcer] = {
            bs.name: RanSlicingEnforcer(base_station=bs.name, capacity_mhz=bs.capacity_mhz)
            for bs in topology.base_stations
        }

    def apply(self, problem: ACRRProblem, decision: OrchestrationDecision) -> None:
        """Replace the current PRB shares with the new decision's reservations.

        The previous epoch's shares are released first: a re-orchestration can
        move capacity between slices, and granting the new shares on top of
        the stale ones could transiently exceed the carrier size even though
        the final allocation is feasible.
        """
        self.clear()
        for bs_name, enforcer in self.enforcers.items():
            for slice_name, alloc in decision.allocations.items():
                if not alloc.accepted:
                    continue
                mbps = alloc.reservations_mbps.get(bs_name)
                if mbps is None:
                    continue
                # Under the big-M deficit relaxation (Section 3.4) the decision
                # may nominally exceed the carrier; the base station can only
                # grant what physically exists, so clamp to the remaining PRBs.
                grantable_mbps = enforcer.radio_model.mhz_to_bitrate(
                    max(0.0, enforcer.free_prbs) / 5.0
                )
                enforcer.grant_bitrate(slice_name, min(mbps, grantable_mbps))

    def clear(self) -> None:
        """Revoke every PRB share (no slice is entitled to radio resources)."""
        for enforcer in self.enforcers.values():
            for slice_name in list(enforcer.shares()):
                enforcer.revoke(slice_name)

    def served_bitrate(self, base_station: str, slice_name: str, offered_mbps: float) -> float:
        """Traffic the air interface actually carries for a slice at one BS."""
        return self.enforcers[base_station].served_bitrate(slice_name, offered_mbps)

    def shares(self, base_station: str) -> dict[str, float]:
        """Current PRB share per slice at one base station."""
        return {
            name: share.prbs
            for name, share in self.enforcers[base_station].shares().items()
        }

    def snapshot(self) -> dict:
        """Per-BS granted shares (RadioShare objects are immutable)."""
        return {name: enforcer.shares() for name, enforcer in self.enforcers.items()}

    def restore(self, snapshot: dict) -> None:
        """Re-grant exactly the shares of a :meth:`snapshot`."""
        for name, enforcer in self.enforcers.items():
            enforcer._shares = dict(snapshot.get(name, {}))


class TransportController:
    """Programs per-slice bandwidth on every transport link (SDN paths)."""

    def __init__(self, topology: NetworkTopology):
        self.topology = topology
        self.reservations_mbps: dict[tuple[str, str], dict[str, float]] = {
            link.key: {} for link in topology.links
        }

    def apply(self, problem: ACRRProblem, decision: OrchestrationDecision) -> None:
        self.reservations_mbps = decision.transport_reservations_mbps(problem)

    def clear(self) -> None:
        """Tear down every per-link bandwidth reservation."""
        self.reservations_mbps = {link.key: {} for link in self.topology.links}

    def snapshot(self) -> dict:
        return {key: dict(slices) for key, slices in self.reservations_mbps.items()}

    def restore(self, snapshot: dict) -> None:
        self.reservations_mbps = {key: dict(slices) for key, slices in snapshot.items()}

    def link_reservation(self, link_key: tuple[str, str]) -> float:
        key = tuple(sorted(link_key))
        return float(sum(self.reservations_mbps.get(key, {}).values()))

    def link_headroom(self, link_key: tuple[str, str]) -> float:
        key = tuple(sorted(link_key))
        capacity = self.topology.link(*key).capacity_mbps
        return capacity - self.link_reservation(key)


class CloudController:
    """Reserves CPU cores for each slice's network service on its compute unit."""

    def __init__(self, topology: NetworkTopology):
        self.topology = topology
        self.reservations_cpus: dict[str, dict[str, float]] = {
            cu.name: {} for cu in topology.compute_units
        }

    def apply(self, problem: ACRRProblem, decision: OrchestrationDecision) -> None:
        self.reservations_cpus = decision.compute_reservations_cpus(problem)

    def clear(self) -> None:
        """Release every CPU reservation."""
        self.reservations_cpus = {cu.name: {} for cu in self.topology.compute_units}

    def snapshot(self) -> dict:
        return {name: dict(slices) for name, slices in self.reservations_cpus.items()}

    def restore(self, snapshot: dict) -> None:
        self.reservations_cpus = {name: dict(slices) for name, slices in snapshot.items()}

    def cu_reservation(self, compute_unit: str) -> float:
        return float(sum(self.reservations_cpus.get(compute_unit, {}).values()))

    def cu_headroom(self, compute_unit: str) -> float:
        capacity = self.topology.compute_unit(compute_unit).capacity_cpus
        return capacity - self.cu_reservation(compute_unit)


@dataclass
class ControllerSet:
    """The three domain controllers the orchestrator drives."""

    ran: RanController
    transport: TransportController
    cloud: CloudController
    #: Optional chaos hook, called with the hook-point name right before each
    #: domain apply (see repro.faults for the hook catalogue).  ``None`` in
    #: production; a :class:`repro.faults.FaultInjector` under test.
    fault_hook: "Callable[[str], None] | None" = None

    @classmethod
    def for_topology(cls, topology: NetworkTopology) -> "ControllerSet":
        return cls(
            ran=RanController(topology),
            transport=TransportController(topology),
            cloud=CloudController(topology),
        )

    def snapshot(self) -> dict:
        """Capture the enforced reservations of all three domains."""
        return {
            "ran": self.ran.snapshot(),
            "transport": self.transport.snapshot(),
            "cloud": self.cloud.snapshot(),
        }

    def restore(self, snapshot: dict) -> None:
        """Reset all three domains to a :meth:`snapshot` taken earlier."""
        self.ran.restore(snapshot["ran"])
        self.transport.restore(snapshot["transport"])
        self.cloud.restore(snapshot["cloud"])

    def apply(self, problem: ACRRProblem, decision: OrchestrationDecision) -> None:
        """Enforce one orchestration decision across all three domains.

        All-or-nothing: if any domain apply raises, the domains that already
        applied are rolled back to their pre-call reservations before the
        exception propagates, so the controllers never enforce half of a
        decision (e.g. RAN shares from the new decision with transport
        reservations from the previous one).
        """
        before = self.snapshot()
        try:
            self._fire("controller.ran.apply")
            self.ran.apply(problem, decision)
            self._fire("controller.transport.apply")
            self.transport.apply(problem, decision)
            self._fire("controller.cloud.apply")
            self.cloud.apply(problem, decision)
        except BaseException:
            self.restore(before)
            raise

    def _fire(self, hook: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(hook)

    def clear(self) -> None:
        """Release every reservation in every domain.

        Called by the orchestrator on an idle epoch (no active or pending
        slice): without it, the controllers would keep enforcing the last
        decision's reservations forever after the final slice expired.
        """
        self.ran.clear()
        self.transport.clear()
        self.cloud.clear()
