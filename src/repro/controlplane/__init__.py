"""The hierarchical control plane of Fig. 2.

At the top, the :class:`~repro.controlplane.slice_manager.SliceManager`
receives tenant slice requests.  In the middle, the
:class:`~repro.controlplane.orchestrator.E2EOrchestrator` (the paper's OVNES)
runs admission control & resource reservation, monitoring aggregation and
forecasting, and is the only stateful entity.  At the bottom, per-domain
controllers (RAN, transport, cloud) enforce the orchestrator's decisions on
the (simulated) data plane and feed monitoring data back up.
"""

from repro.controlplane.tsdb import TimeSeriesStore
from repro.controlplane.monitoring import MonitoringService
from repro.controlplane.state import SliceState, SliceRecord, SliceRegistry
from repro.controlplane.slice_manager import SliceManager, SliceDescriptor
from repro.controlplane.controllers import (
    RanController,
    TransportController,
    CloudController,
    ControllerSet,
)
from repro.controlplane.orchestrator import E2EOrchestrator, OrchestratorConfig

__all__ = [
    "TimeSeriesStore",
    "MonitoringService",
    "SliceState",
    "SliceRecord",
    "SliceRegistry",
    "SliceManager",
    "SliceDescriptor",
    "RanController",
    "TransportController",
    "CloudController",
    "ControllerSet",
    "E2EOrchestrator",
    "OrchestratorConfig",
]
