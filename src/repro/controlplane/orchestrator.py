"""The end-to-end orchestrator (the paper's OVNES).

This is the central, stateful control-plane component.  Every decision epoch
it:

1. collects the slice requests released by the slice manager and the slices
   admitted in earlier epochs that are still active (constraint (13));
2. turns the monitoring history of each slice into a peak-load forecast and
   an uncertainty estimate (the Forecasting block);
3. builds the AC-RR problem of Section 3 and solves it with the configured
   algorithm (Benders, KAC, direct MILP, or the no-overbooking baseline);
4. records admissions/rejections in the slice registry and pushes the new
   reservations to the RAN, transport and cloud controllers.

The orchestrator is deliberately independent of the simulation engine: any
driver that feeds it requests and monitoring samples (a testbed adapter, a
trace replayer, the bundled simulator) gets the same behaviour.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.controlplane.controllers import ControllerSet
from repro.controlplane.monitoring import MonitoringService
from repro.controlplane.slice_manager import SliceManager
from repro.controlplane.state import (
    TERMINAL_STATES,
    SliceRegistry,
    SliceState,
    SliceStateError,
)
from repro.core.forecast_inputs import ForecastInput
from repro.core.problem import (
    ACRRProblem,
    ProblemOptions,
    ProblemStructureCache,
    topology_signature,
)
from repro.core.slices import SliceRequest
from repro.core.solution import OrchestrationDecision, SolverStats
from repro.forecasting import (
    DoubleExponentialForecaster,
    Forecaster,
    HoltWintersForecaster,
    NaiveForecaster,
)
from repro.topology.generators import degrade_link_capacities
from repro.topology.network import NetworkTopology
from repro.topology.paths import PathSet, compute_path_sets
from repro.utils.executors import SerialExecutor, ThreadPoolRunExecutor


@dataclass(frozen=True)
class OrchestratorConfig:
    """Static configuration of the orchestrator.

    ``reuse_unchanged_decisions`` short-circuits the solver when the AC-RR
    problem of the current epoch is semantically identical to the previous
    epoch's (same request set, options, forecasts and solver): every solver
    in this codebase is deterministic, so re-solving an unchanged problem
    returns the unchanged decision.  Steady-state simulations (the Fig. 5 /
    Fig. 6 oracle scenarios) hit this on every epoch after the admission
    settles; disable it when benchmarking raw solver latency.

    ``partition_admission`` splits each epoch's joint admission problem
    into topology-disjoint footprints (tenant groups no *contendable*
    capacity row couples, see :meth:`ACRRProblem.tenant_partition`) and
    solves the independent sub-problems concurrently, merging the decisions
    deterministically in joint request order.  The partition is exact for
    exact solvers -- every cross-group capacity row has room for the worst
    case on both sides, so the concatenation of group optima is a joint
    optimum.  Epochs whose options enable the per-domain deficit variables
    are never partitioned (the deficit columns are global to a domain, so
    independent sub-solves would buy the slack twice).
    ``partition_workers`` sizes the thread pool for the concurrent group
    solves (``None``/``<=1`` means serial; results are bit-identical either
    way).
    """

    epochs_per_day: int = 24
    samples_per_epoch: int = 12
    candidate_paths_per_pair: int = 3
    allow_deficit_for_committed: bool = True
    deficit_cost: float = 1.0e4
    reuse_unchanged_decisions: bool = True
    partition_admission: bool = False
    partition_workers: int | None = None


@dataclass
class ForecastingBlock:
    """Chooses the best forecaster the available history allows.

    The primary algorithm is multiplicative Holt-Winters (one season per
    day); slices younger than two seasons fall back to double exponential
    smoothing, then to the naive last-value predictor, and finally -- with no
    history at all -- to a pessimistic full-SLA forecast (new slices are not
    overbooked until their behaviour has been learnt).
    """

    primary: Forecaster
    fallback: Forecaster = field(default_factory=DoubleExponentialForecaster)
    last_resort: Forecaster = field(default_factory=NaiveForecaster)
    #: Optional chaos hook, fired on entry of every per-slice forecast (hook
    #: point ``forecast.forecast_for``); ``None`` in production.
    fault_hook: Callable[[str], None] | None = None

    def forecast_for(self, request: SliceRequest, history: np.ndarray) -> ForecastInput:
        """Forecast one slice's next-epoch peak, never raising.

        Forecasting is advisory, so a failure anywhere in the chain -- an
        injected chaos fault or a real forecaster bug -- degrades to the
        next tier instead of failing the epoch, bottoming out at the
        pessimistic full-SLA forecast (the same stance taken for slices with
        no history: an unforecastable slice is simply not overbooked).
        """
        history = np.asarray(history, dtype=float)
        if self.fault_hook is not None:
            try:
                self.fault_hook("forecast.forecast_for")
            except Exception:
                return ForecastInput.pessimistic(request.sla_mbps)
        for forecaster in (self.primary, self.fallback, self.last_resort):
            try:
                if forecaster.can_forecast(history):
                    outcome = forecaster.forecast(history, horizon=1)
                    return outcome.as_forecast_input(request.sla_mbps)
            except Exception:
                continue
        return ForecastInput.pessimistic(request.sla_mbps)


class E2EOrchestrator:
    """Hierarchical end-to-end orchestrator with overbooking support."""

    def __init__(
        self,
        topology: NetworkTopology,
        solver,
        config: OrchestratorConfig | None = None,
        path_set: PathSet | None = None,
        forecasting: ForecastingBlock | None = None,
        monitoring: MonitoringService | None = None,
        slice_manager: SliceManager | None = None,
        problem_options: ProblemOptions | None = None,
    ):
        self.topology = topology
        self.solver = solver
        self.config = config or OrchestratorConfig()
        self.path_set = path_set or compute_path_sets(
            topology, k=self.config.candidate_paths_per_pair
        )
        self.forecasting = forecasting or ForecastingBlock(
            primary=HoltWintersForecaster(season_length=self.config.epochs_per_day)
        )
        self.monitoring = monitoring or MonitoringService()
        self.slice_manager = slice_manager or SliceManager()
        self.registry = SliceRegistry()
        self.controllers = ControllerSet.for_topology(topology)
        self._base_problem_options = problem_options or ProblemOptions(
            epochs_per_day=self.config.epochs_per_day,
            deficit_cost=self.config.deficit_cost,
        )
        #: Per-slice forecasts that take precedence over the online
        #: forecasting block.  Used by the steady-state evaluation scenarios
        #: (Fig. 5 / Fig. 6), where the orchestrator is assumed to already
        #: know each slice's demand statistics.
        self.forecast_overrides: dict[str, ForecastInput] = {}
        self.last_problem: ACRRProblem | None = None
        self.last_decision: OrchestrationDecision | None = None
        #: Reuses the ACRRProblem skeleton across epochs with an unchanged
        #: request set and options (see DESIGN.md).
        self.problem_cache = ProblemStructureCache()
        #: (solve key, decision) of the last actual solver run, stored as one
        #: atomic pair so a failure later in run_epoch can never pair a stale
        #: decision with a fresh key.
        self._last_solve: tuple[tuple, OrchestrationDecision] | None = None
        #: Optional :class:`repro.faults.FaultInjector` (chaos testing).
        self.fault_injector = None
        #: Link failures queued via :meth:`schedule_link_failure`, applied at
        #: the start of the next epoch.
        self._scheduled_link_failures: list[tuple[list[tuple[str, str]], float]] = []
        #: True while a link-capacity loss still awaits a committed epoch's
        #: re-homing pass.  Deliberately *not* part of the epoch checkpoint:
        #: if the epoch that applied the damage rolls back, the retry must
        #: re-run displacement detection (the damage itself persists).
        self._rehome_pending = False
        #: Names re-homed (released + renewal re-submitted) by the last
        #: committed epoch, for the broker's EpochReport.
        self.last_rehomed: tuple[str, ...] = ()

    # ------------------------------------------------------------------ #
    # Request intake
    # ------------------------------------------------------------------ #
    def submit_request(self, request: SliceRequest) -> None:
        """Tenant-facing entry point (delegates to the slice manager).

        A re-submission under the name of a *live* slice is rejected here,
        at intake -- before the request can enter an epoch batch -- unless
        its arrival lies at or beyond the live slice's expiry (a legal
        renewal booked in advance).  Rejecting at submit time keeps an
        invalid renewal from poisoning the batch it would have been
        collected with.
        """
        record = self._live_record(request.name)
        if record is not None and request.arrival_epoch < record.expires_at():
            raise SliceStateError(
                f"cannot submit slice {request.name!r}: a slice with that "
                f"name is still {record.state.value} until epoch "
                f"{record.expires_at()}; renewals must arrive at or after "
                "its expiry"
            )
        self.slice_manager.submit(request)

    def _live_record(self, name: str):
        if name not in self.registry:
            return None
        record = self.registry.record(name)
        return None if record.state in TERMINAL_STATES else record

    # ------------------------------------------------------------------ #
    # Monitoring feedback
    # ------------------------------------------------------------------ #
    def observe_load(
        self,
        slice_name: str,
        base_station: str,
        epoch: int,
        samples_mbps: list[float] | np.ndarray,
    ) -> None:
        """Feed monitoring samples collected by the controllers."""
        self.monitoring.record_samples(slice_name, base_station, epoch, samples_mbps)

    # ------------------------------------------------------------------ #
    # Decision epoch
    # ------------------------------------------------------------------ #
    def forecast_for(self, request: SliceRequest) -> ForecastInput:
        """Forecast the next-epoch peak load of one slice."""
        override = self.forecast_overrides.get(request.name)
        if override is not None:
            return override.clamped(request.sla_mbps)
        history = self.monitoring.peak_history(request.name)
        return self.forecasting.forecast_for(request, history)

    def schedule_link_failure(
        self, link_keys: list[tuple[str, str]], capacity_factor: float
    ) -> None:
        """Queue a mid-epoch link-capacity loss for the next decision epoch.

        Each named link's capacity is multiplied by ``capacity_factor`` when
        the next epoch starts (before expiries are processed), and any
        admitted slice whose transport reservations no longer fit the
        damaged links is re-homed through the renewal path.
        """
        if not 0.0 < capacity_factor < 1.0:
            raise ValueError(
                f"capacity_factor must be in (0, 1), got {capacity_factor!r}"
            )
        keys = [tuple(sorted(key)) for key in link_keys]
        for key in keys:
            self.topology.link(*key)  # raises KeyError for unknown links
        self._scheduled_link_failures.append((keys, float(capacity_factor)))

    def run_epoch(self, epoch: int) -> OrchestrationDecision:
        """Run the AC-RR cycle for one decision epoch and enforce the result.

        Crash-consistent: every mutable control-plane structure (registry,
        intake queue, controllers, the solver layer's warm-start state, the
        decision-reuse pair and the problem-structure cache) is checkpointed
        on entry, and any exception -- an injected fault, a solver error, a
        controller apply failure -- restores the checkpoint byte-for-byte
        before propagating.  The epoch either commits fully or did not
        happen.  Topology damage applied by a link failure is *not* rolled
        back: the network really is degraded, and the retry epoch re-detects
        and re-homes the displaced slices.
        """
        if self.fault_injector is not None:
            self.fault_injector.begin_epoch(epoch)
        checkpoint = self._checkpoint()
        try:
            return self._run_epoch_inner(epoch)
        except BaseException:
            self._restore_checkpoint(checkpoint)
            raise

    def _run_epoch_inner(self, epoch: int) -> OrchestrationDecision:
        self._apply_link_failures(epoch)
        rehomed = self._rehome_displaced(epoch) if self._rehome_pending else ()
        self.registry.expire_due(epoch)

        new_requests = self.slice_manager.collect_for_epoch(epoch)
        for request in new_requests:
            if request.name not in self.registry:
                self.registry.register(request)
            else:
                # A re-submission under a known name is a *renewal*: legal
                # once the previous slice reached a terminal state (the
                # registry archives the old record and the renewal competes
                # for admission like any new arrival), a lifecycle error
                # while the original slice is still live.  Intake already
                # rejects live-name renewals, so this is defence in depth.
                # The raise rolls the whole epoch back (run_epoch restores
                # the checkpoint), returning every collected request --
                # including the invalid one -- to the intake queue intact;
                # withdrawing the poisoned request unblocks its batch mates.
                self.registry.renew(request)

        committed_records = self.registry.active_slices(epoch)
        committed_requests = []
        for record in committed_records:
            committed = record.request.as_committed()
            if record.compute_unit is not None:
                # Remember where the slice already runs so solvers (notably
                # the KAC heuristic) keep it anchored there.
                committed.metadata["preferred_compute_unit"] = record.compute_unit
            committed_requests.append(committed)
        # Candidates come from the *registry*, not the collected batch: in
        # normal flow every REQUESTED record is one this epoch registered
        # (all earlier ones were decided the epoch they arrived), but if a
        # previous epoch died mid-batch, its registered-but-undecided
        # requests are retried here instead of vanishing.
        candidate_new = [
            record.request
            for record in self.registry.all_records()
            if record.state is SliceState.REQUESTED
        ]
        requests = committed_requests + candidate_new
        if not requests:
            # Idle epoch: release every reservation (the last admitted slice
            # has expired; leaving the controllers enforcing its reservations
            # would hold RAN/transport/cloud resources forever), but keep the
            # warm-start state (_last_solve, the solver-side cut pool, the
            # problem-structure cache): if the same slices come back, the
            # solver layer resumes from where it left off instead of a cold
            # re-solve.
            self.last_problem = None
            self.last_decision = None
            self.controllers.clear()
            self.last_rehomed = tuple(rehomed)
            self._rehome_pending = False
            return OrchestrationDecision(
                allocations={},
                objective_value=0.0,
                stats=_idle_stats(),
            )

        forecasts = {request.name: self.forecast_for(request) for request in requests}
        options = self._problem_options(bool(committed_requests))
        topo_signature = topology_signature(self.topology)
        problem = self.problem_cache.build(
            topology=self.topology,
            path_set=self.path_set,
            requests=requests,
            forecasts=forecasts,
            options=options,
            topo_signature=topo_signature,
        )
        decision = self._solve(problem, requests, forecasts, topo_signature)
        self._update_registry(epoch, decision)
        self.controllers.apply(problem, decision)
        self.last_problem = problem
        self.last_decision = decision
        self.last_rehomed = tuple(rehomed)
        self._rehome_pending = False
        return decision

    # ------------------------------------------------------------------ #
    # Crash consistency and link-failure handling
    # ------------------------------------------------------------------ #
    def _checkpoint(self) -> dict:
        snapshot_state = getattr(self.solver, "snapshot_state", None)
        return {
            "registry": self.registry.snapshot(),
            "manager": self.slice_manager.snapshot(),
            "controllers": self.controllers.snapshot(),
            "solver": snapshot_state() if snapshot_state is not None else None,
            "last_solve": self._last_solve,
            "last_problem": self.last_problem,
            "last_decision": self.last_decision,
            "cache": self.problem_cache.snapshot(),
            "rehomed": self.last_rehomed,
        }

    def _restore_checkpoint(self, checkpoint: dict) -> None:
        self.registry.restore(checkpoint["registry"])
        self.slice_manager.restore(checkpoint["manager"])
        self.controllers.restore(checkpoint["controllers"])
        restore_state = getattr(self.solver, "restore_state", None)
        if restore_state is not None:
            restore_state(checkpoint["solver"])
        self._last_solve = checkpoint["last_solve"]
        self.last_problem = checkpoint["last_problem"]
        self.last_decision = checkpoint["last_decision"]
        self.problem_cache.restore(checkpoint["cache"])
        self.last_rehomed = checkpoint["rehomed"]

    def _apply_link_failures(self, epoch: int) -> None:
        """Damage the topology per the injector and the scheduled failures."""
        failures: list[tuple[tuple[str, str], float]] = []
        if self.fault_injector is not None:
            failures.extend(self.fault_injector.link_faults(epoch, self.topology))
        scheduled = self._scheduled_link_failures
        self._scheduled_link_failures = []
        for keys, factor in scheduled:
            failures.extend((key, factor) for key in keys)
        for key, factor in failures:
            degrade_link_capacities(self.topology, [key], factor)
        if failures:
            self._rehome_pending = True

    def _rehome_displaced(self, epoch: int) -> list[str]:
        """Re-home slices displaced by link damage through the renewal path.

        A slice is displaced when it holds a transport reservation on a link
        whose reserved total now exceeds the (damaged) capacity.  Every
        displaced slice is released (terminal EXPIRED, reservations
        reclaimed by this epoch's decision) and a renewal request -- same
        name, remaining lifetime, arriving now -- is queued, so it is
        collected this very epoch and competes for admission on the damaged
        network like any arrival.  Slices in their final epoch are left to
        expire naturally.
        """
        overloaded: list[tuple[str, str]] = []
        for key, slices in self.controllers.transport.reservations_mbps.items():
            if not slices:
                continue
            if sum(slices.values()) > self.topology.link(*key).capacity_mbps + 1e-9:
                overloaded.append(key)
        displaced: list[str] = sorted(
            {
                name
                for key in overloaded
                for name in self.controllers.transport.reservations_mbps[key]
            }
        )
        rehomed: list[str] = []
        for name in displaced:
            if name not in self.registry:
                continue
            record = self.registry.record(name)
            if not record.is_active(epoch):
                continue
            remaining = record.expires_at() - epoch
            if remaining <= 0:
                continue
            self.registry.release(name)
            if self.slice_manager.pending_request(name) is not None:
                # A renewal is already queued under this name (e.g. a tenant
                # pre-booked one); it will compete for admission instead.
                rehomed.append(name)
                continue
            renewal = replace(
                record.request,
                arrival_epoch=epoch,
                duration_epochs=remaining,
                committed=False,
                metadata=dict(record.request.metadata),
            )
            renewal.metadata["rehomed_at_epoch"] = epoch
            self.slice_manager.submit(renewal)
            rehomed.append(name)
        return rehomed

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _solve(
        self,
        problem: ACRRProblem,
        requests: list[SliceRequest],
        forecasts: dict[str, ForecastInput],
        topo_signature: tuple,
    ) -> OrchestrationDecision:
        """Solve the epoch's problem, reusing the previous decision when the
        problem (and the solver) did not change since the last epoch."""
        solve_key = (
            # The topology, path set and solver objects themselves (not ids):
            # the strong references pin their identity even if the public
            # attributes are later swapped for new objects.  The content
            # signature additionally catches in-place topology mutation.
            self.topology,
            topo_signature,
            self.path_set,
            self.solver,
            problem.structure_signature(),
            tuple((request.name, forecasts[request.name]) for request in requests),
            # Full metadata, not just the fields today's solvers read: any
            # metadata change must invalidate the reuse.
            tuple(tuple(sorted(request.metadata.items())) for request in requests),
            self.config.partition_admission,
        )
        if (
            self.config.reuse_unchanged_decisions
            and self._last_solve is not None
            and self._last_solve[0] == solve_key
        ):
            cached = self._last_solve[1]
            # Same allocations and objective, but honest diagnostics: this
            # epoch did no solver work.
            return OrchestrationDecision(
                allocations=cached.allocations,
                objective_value=cached.objective_value,
                stats=replace(
                    cached.stats,
                    runtime_s=0.0,
                    iterations=0,
                    cuts_optimality=0,
                    cuts_feasibility=0,
                    message="reused unchanged decision from previous epoch",
                ),
                deficits=cached.deficits,
            )
        decision = self._solve_maybe_partitioned(problem, forecasts)
        self._last_solve = (solve_key, decision)
        return decision

    # Weakest-tier ordering for merging partitioned decisions; mirrors
    # repro.faults.safeguard.TIER_ORDER without importing the faults layer.
    _TIER_RANK = {"primary": 0, "warm_replay": 1, "no_overbooking": 2, "reject_all": 3}

    def _solve_maybe_partitioned(
        self, problem: ACRRProblem, forecasts: dict[str, ForecastInput]
    ) -> OrchestrationDecision:
        """Solve the epoch problem, split by disjoint footprint when enabled.

        The split is exact (see :class:`OrchestratorConfig`): a capacity row
        that can absorb every tenant's SLA worst case simultaneously never
        binds, so tenants coupled only through such rows optimise
        independently.  Deficit-enabled problems are never split -- the
        per-domain deficit variables are global, and two sub-problems would
        each buy the same slack.
        """
        if (
            not self.config.partition_admission
            or problem.options.allow_deficit
            or len(problem.requests) <= 1
        ):
            return self.solver.solve(problem)
        groups = problem.tenant_partition()
        if len(groups) <= 1:
            return self.solver.solve(problem)

        started = time.perf_counter()
        sub_problems = [
            ACRRProblem(
                problem.topology,
                problem.path_set,
                [problem.requests[t] for t in group],
                {
                    problem.requests[t].name: forecasts[problem.requests[t].name]
                    for t in group
                },
                options=problem.options,
            )
            for group in groups
        ]
        workers = self.config.partition_workers
        executor = (
            ThreadPoolRunExecutor(max_workers=workers)
            if workers is not None and workers > 1
            else SerialExecutor()
        )
        decisions = executor.map(self.solver.solve, sub_problems)
        runtime = time.perf_counter() - started
        return self._merge_partitioned(problem, groups, decisions, runtime)

    def _merge_partitioned(
        self,
        problem: ACRRProblem,
        groups: list[tuple[int, ...]],
        decisions: list[OrchestrationDecision],
        runtime_s: float,
    ) -> OrchestrationDecision:
        """Merge per-footprint decisions back into one joint decision.

        Deterministic by construction: allocations are emitted in the joint
        problem's request order and scalars are folded in group-index order,
        so the merged decision is bit-identical for any worker count.
        """
        by_name = {
            name: allocation
            for decision in decisions
            for name, allocation in decision.allocations.items()
        }
        allocations = {
            request.name: by_name[request.name] for request in problem.requests
        }
        deficits: dict[str, float] = {}
        for decision in decisions:
            deficits.update(decision.deficits)
        stats_list = [decision.stats for decision in decisions]
        weakest = max(
            stats_list,
            key=lambda stats: self._TIER_RANK.get(stats.tier, len(self._TIER_RANK)),
        )
        reasons = [stats.fallback_reason for stats in stats_list if stats.fallback_reason]
        merged_stats = SolverStats(
            solver=stats_list[0].solver,
            iterations=sum(stats.iterations for stats in stats_list),
            runtime_s=runtime_s,
            optimal=all(stats.optimal for stats in stats_list),
            gap=max(stats.gap for stats in stats_list),
            cuts_optimality=sum(stats.cuts_optimality for stats in stats_list),
            cuts_feasibility=sum(stats.cuts_feasibility for stats in stats_list),
            cuts_warm=sum(stats.cuts_warm for stats in stats_list),
            message=(
                f"partitioned into {len(groups)} disjoint footprints; "
                + "; ".join(
                    f"[{index}] {stats.message}" if stats.message else f"[{index}] ok"
                    for index, stats in enumerate(stats_list)
                )
            ),
            tier=weakest.tier,
            retries=sum(stats.retries for stats in stats_list),
            fallback_reason="; ".join(dict.fromkeys(reasons)),
            time_truncated=any(stats.time_truncated for stats in stats_list),
        )
        # Re-evaluate the objective on the *joint* problem instead of summing
        # the group objectives: the sum is mathematically equal but not
        # bit-equal (different float accumulation order), and the merged
        # decision should be indistinguishable from a joint solve.
        x = np.zeros(problem.num_items)
        z = np.zeros(problem.num_items)
        for tenant_index, request in enumerate(problem.requests):
            allocation = allocations[request.name]
            if not allocation.accepted:
                continue
            for item in problem.items_of_tenant(tenant_index):
                path = allocation.paths.get(item.path.base_station)
                if path is not None and path.nodes == item.path.nodes:
                    x[item.index] = 1.0
                    z[item.index] = allocation.reservations_mbps[
                        item.path.base_station
                    ]
        return OrchestrationDecision(
            allocations=allocations,
            objective_value=problem.evaluate_objective(x, z),
            stats=merged_stats,
            deficits=deficits,
        )

    def _problem_options(self, has_committed: bool) -> ProblemOptions:
        allow_deficit = has_committed and self.config.allow_deficit_for_committed
        if allow_deficit == self._base_problem_options.allow_deficit:
            return self._base_problem_options
        return replace(self._base_problem_options, allow_deficit=allow_deficit)

    def _update_registry(self, epoch: int, decision: OrchestrationDecision) -> None:
        for name, allocation in decision.allocations.items():
            record = self.registry.record(name)
            if allocation.accepted:
                self.registry.mark_admitted(
                    name,
                    epoch=epoch,
                    compute_unit=allocation.compute_unit,
                    reservations_mbps=allocation.reservations_mbps,
                )
            elif record.state is SliceState.REQUESTED:
                self.registry.mark_rejected(name)
            elif record.state is SliceState.ADMITTED:
                # A committed slice can never be silently dropped: if the solver
                # could not fit it, the deficit variables should have absorbed
                # the overload instead.  Surface this loudly.
                raise RuntimeError(
                    f"solver dropped committed slice {name!r}; "
                    "run with allow_deficit_for_committed=True"
                )


def _idle_stats():
    from repro.core.solution import SolverStats

    return SolverStats(solver="idle", iterations=0, runtime_s=0.0, optimal=True)
