"""The slice manager: the tenant-facing entry point of the control plane.

Tenants submit slice requests (Phi_tau) at any time; the slice manager queues
them and, at the beginning of every decision epoch, hands the batch collected
during the previous epoch to the E2E orchestrator (Section 2.2.1).  The paper
models each request as a TOSCA network-service template; we keep a light
dictionary descriptor with the same information so the controllers have a
concrete artefact to consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.slices import SliceRequest


@dataclass(frozen=True)
class SliceDescriptor:
    """A TOSCA-like network-service descriptor derived from a slice request."""

    slice_name: str
    slice_type: str
    sla_mbps: float
    latency_tolerance_ms: float
    duration_epochs: int
    compute_model: dict[str, float]
    reward: float
    penalty_factor: float

    @classmethod
    def from_request(cls, request: SliceRequest) -> "SliceDescriptor":
        return cls(
            slice_name=request.name,
            slice_type=request.template.name,
            sla_mbps=request.sla_mbps,
            latency_tolerance_ms=request.latency_tolerance_ms,
            duration_epochs=request.duration_epochs,
            compute_model={
                "baseline_cpus": request.compute_baseline_cpus,
                "cpus_per_mbps": request.compute_cpus_per_mbps,
            },
            reward=request.reward,
            penalty_factor=request.penalty_factor,
        )

    def as_dict(self) -> dict:
        """Plain-dictionary form (what would be serialised to TOSCA/REST)."""
        return {
            "slice_name": self.slice_name,
            "slice_type": self.slice_type,
            "sla_mbps": self.sla_mbps,
            "latency_tolerance_ms": self.latency_tolerance_ms,
            "duration_epochs": self.duration_epochs,
            "compute_model": dict(self.compute_model),
            "reward": self.reward,
            "penalty_factor": self.penalty_factor,
        }


@dataclass
class SliceManager:
    """Queues tenant requests and releases them per decision epoch.

    A name may be re-submitted once its previous request has been released
    to the orchestrator -- that is how a tenant renews an expired or rejected
    slice (the registry decides whether the renewal is legal; see
    :meth:`repro.controlplane.state.SliceRegistry.renew`).  Two requests
    under the same name may never sit in the intake queue at once.
    """

    _pending: list[SliceRequest] = field(default_factory=list)

    def submit(self, request: SliceRequest) -> SliceDescriptor:
        """Accept a tenant's slice request into the intake queue."""
        if any(pending.name == request.name for pending in self._pending):
            raise ValueError(f"a slice named {request.name!r} was already submitted")
        self._pending.append(request)
        return SliceDescriptor.from_request(request)

    def submit_many(self, requests: list[SliceRequest]) -> list[SliceDescriptor]:
        return [self.submit(request) for request in requests]

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def collect_for_epoch(self, epoch: int) -> list[SliceRequest]:
        """Release the requests that the orchestrator should consider at ``epoch``.

        A request is released once its arrival epoch has been reached; requests
        arriving later stay queued.  Released requests leave the queue -- the
        orchestrator owns them from then on.
        """
        due = [request for request in self._pending if request.arrival_epoch <= epoch]
        self._pending = [
            request for request in self._pending if request.arrival_epoch > epoch
        ]
        return due
