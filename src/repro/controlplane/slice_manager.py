"""The slice manager: the tenant-facing entry point of the control plane.

Tenants submit slice requests (Phi_tau) at any time; the slice manager queues
them and, at the beginning of every decision epoch, hands the batch collected
during the previous epoch to the E2E orchestrator (Section 2.2.1).  The paper
models each request as a TOSCA network-service template; we keep a light
dictionary descriptor with the same information so the controllers have a
concrete artefact to consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.slices import SliceRequest


@dataclass(frozen=True)
class SliceDescriptor:
    """A TOSCA-like network-service descriptor derived from a slice request."""

    slice_name: str
    slice_type: str
    sla_mbps: float
    latency_tolerance_ms: float
    duration_epochs: int
    #: Excluded from __hash__ (dicts are unhashable) so descriptors -- and
    #: the admission tickets embedding them -- stay hashable; equality still
    #: compares the full compute model.
    compute_model: dict[str, float] = field(hash=False)
    reward: float
    penalty_factor: float

    @classmethod
    def from_request(cls, request: SliceRequest) -> "SliceDescriptor":
        return cls(
            slice_name=request.name,
            slice_type=request.template.name,
            sla_mbps=request.sla_mbps,
            latency_tolerance_ms=request.latency_tolerance_ms,
            duration_epochs=request.duration_epochs,
            compute_model={
                "baseline_cpus": request.compute_baseline_cpus,
                "cpus_per_mbps": request.compute_cpus_per_mbps,
            },
            reward=request.reward,
            penalty_factor=request.penalty_factor,
        )

    def as_dict(self) -> dict:
        """Plain-dictionary form (what would be serialised to TOSCA/REST)."""
        return {
            "slice_name": self.slice_name,
            "slice_type": self.slice_type,
            "sla_mbps": self.sla_mbps,
            "latency_tolerance_ms": self.latency_tolerance_ms,
            "duration_epochs": self.duration_epochs,
            "compute_model": dict(self.compute_model),
            "reward": self.reward,
            "penalty_factor": self.penalty_factor,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SliceDescriptor":
        """Inverse of :meth:`as_dict` (``from_dict(as_dict(d)) == d``)."""
        try:
            return cls(
                slice_name=str(payload["slice_name"]),
                slice_type=str(payload["slice_type"]),
                sla_mbps=float(payload["sla_mbps"]),
                latency_tolerance_ms=float(payload["latency_tolerance_ms"]),
                duration_epochs=int(payload["duration_epochs"]),
                compute_model={
                    str(k): float(v) for k, v in payload["compute_model"].items()
                },
                reward=float(payload["reward"]),
                penalty_factor=float(payload["penalty_factor"]),
            )
        except KeyError as missing:
            raise ValueError(
                f"slice descriptor payload is missing field {missing.args[0]!r}"
            ) from None


@dataclass
class SliceManager:
    """Queues tenant requests and releases them per decision epoch.

    A name may be re-submitted once its previous request has been released
    to the orchestrator -- that is how a tenant renews an expired or rejected
    slice (the registry decides whether the renewal is legal; see
    :meth:`repro.controlplane.state.SliceRegistry.renew`).  Two requests
    under the same name may never sit in the intake queue at once.
    """

    # Keyed by slice name (unique in the queue by contract), insertion
    # ordered: name lookup and withdrawal are O(1) so broker intake of N
    # requests stays O(N) under heavy multi-client traffic.
    _pending: dict[str, SliceRequest] = field(default_factory=dict)

    def submit(self, request: SliceRequest) -> SliceDescriptor:
        """Accept a tenant's slice request into the intake queue."""
        if request.name in self._pending:
            raise ValueError(f"a slice named {request.name!r} was already submitted")
        self._pending[request.name] = request
        return SliceDescriptor.from_request(request)

    def submit_many(self, requests: list[SliceRequest]) -> list[SliceDescriptor]:
        return [self.submit(request) for request in requests]

    @property
    def pending_count(self) -> int:
        """Number of requests still queued (a property: it is a pure getter)."""
        return len(self._pending)

    @property
    def pending_requests(self) -> tuple[SliceRequest, ...]:
        """Snapshot of the queued requests, in submission order."""
        return tuple(self._pending.values())

    def pending_request(self, name: str) -> SliceRequest | None:
        """The queued request named ``name``, or ``None`` if not queued."""
        return self._pending.get(name)

    def withdraw(self, name: str) -> SliceRequest:
        """Remove a still-queued request from the intake queue.

        Only requests that have not yet been released to the orchestrator can
        be withdrawn; raises ``KeyError`` when ``name`` is not queued.  Used
        by the northbound broker to cancel queued submissions and to roll
        back partially-enqueued batches.
        """
        try:
            return self._pending.pop(name)
        except KeyError:
            raise KeyError(f"no queued request named {name!r}") from None

    def snapshot(self) -> dict[str, SliceRequest]:
        """Capture the intake queue for epoch-level rollback.

        Requests are immutable, so a shallow copy of the (insertion-ordered)
        queue dict is a complete snapshot.
        """
        return dict(self._pending)

    def restore(self, snapshot: dict[str, SliceRequest]) -> None:
        """Reset the queue to a :meth:`snapshot` taken earlier."""
        self._pending = dict(snapshot)

    def collect_for_epoch(self, epoch: int) -> list[SliceRequest]:
        """Release the requests that the orchestrator should consider at ``epoch``.

        A request is released once its arrival epoch has been reached; requests
        arriving later stay queued.  Released requests leave the queue -- the
        orchestrator owns them from then on.
        """
        due = [
            request
            for request in self._pending.values()
            if request.arrival_epoch <= epoch
        ]
        self._pending = {
            name: request
            for name, request in self._pending.items()
            if request.arrival_epoch > epoch
        }
        return due
