"""A small in-memory time-series store.

The paper's implementation persists monitoring samples in InfluxDB; the
simulation only needs an ordered, queryable record of (epoch, value) points
per series, which this module provides without external dependencies.
Series are identified by a name plus a tag dictionary, mirroring the
measurement/tag model of the original store.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field

import numpy as np


def _series_key(name: str, tags: dict[str, str] | None) -> tuple:
    tags = tags or {}
    return (name, tuple(sorted(tags.items())))


@dataclass
class _Series:
    epochs: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, epoch: int, value: float) -> None:
        if self.epochs and epoch < self.epochs[-1]:
            raise ValueError(
                f"samples must be appended in epoch order (got {epoch} after {self.epochs[-1]})"
            )
        self.epochs.append(int(epoch))
        self.values.append(float(value))

    def prune_before(self, min_epoch: int) -> None:
        """Drop all samples with an epoch strictly below ``min_epoch``."""
        cutoff = bisect_left(self.epochs, min_epoch)
        if cutoff:
            del self.epochs[:cutoff]
            del self.values[:cutoff]


class TimeSeriesStore:
    """Append-only store of per-epoch samples, indexed by (name, tags).

    ``retention_epochs`` bounds how much history each series keeps: after a
    write at epoch ``t``, samples older than ``t - retention_epochs + 1`` are
    dropped from that series.  The forecasting block only ever consumes a
    trailing window (a few seasons of Holt-Winters history), so long-running
    campaigns can cap the store's memory without changing any forecast.
    Retention is per series and driven by that series' own latest epoch,
    mirroring the retention policies of the InfluxDB deployment the paper's
    implementation uses.
    """

    def __init__(self, retention_epochs: int | None = None) -> None:
        if retention_epochs is not None and retention_epochs <= 0:
            raise ValueError(
                f"retention_epochs must be a positive integer or None, got {retention_epochs!r}"
            )
        self.retention_epochs = retention_epochs
        self._series: dict[tuple, _Series] = {}

    # ------------------------------------------------------------------ #
    def write(
        self, name: str, epoch: int, value: float, tags: dict[str, str] | None = None
    ) -> None:
        """Append one sample to a series (created on first write)."""
        key = _series_key(name, tags)
        series = self._series.setdefault(key, _Series())
        series.append(epoch, value)
        if self.retention_epochs is not None:
            series.prune_before(int(epoch) - self.retention_epochs + 1)

    def write_many(
        self,
        name: str,
        epoch: int,
        values: list[float] | np.ndarray,
        tags: dict[str, str] | None = None,
    ) -> None:
        """Append several samples sharing the same epoch (monitoring samples)."""
        for value in values:
            self.write(name, epoch, float(value), tags)

    # ------------------------------------------------------------------ #
    def values(
        self,
        name: str,
        tags: dict[str, str] | None = None,
        start_epoch: int | None = None,
        end_epoch: int | None = None,
    ) -> np.ndarray:
        """All sample values of a series, optionally restricted to an epoch range."""
        series = self._series.get(_series_key(name, tags))
        if series is None:
            return np.array([])
        lo = 0 if start_epoch is None else bisect_left(series.epochs, start_epoch)
        hi = len(series.epochs) if end_epoch is None else bisect_right(series.epochs, end_epoch)
        return np.asarray(series.values[lo:hi])

    def per_epoch_aggregate(
        self,
        name: str,
        tags: dict[str, str] | None = None,
        aggregate: str = "max",
    ) -> dict[int, float]:
        """Aggregate samples per epoch ('max', 'mean' or 'sum').

        The orchestrator consumes the per-epoch *peak*, i.e. ``max``.
        """
        series = self._series.get(_series_key(name, tags))
        if series is None:
            return {}
        if aggregate not in ("max", "mean", "sum"):
            raise ValueError(f"unsupported aggregate {aggregate!r}")
        grouped: dict[int, list[float]] = {}
        for epoch, value in zip(series.epochs, series.values):
            grouped.setdefault(epoch, []).append(value)
        if aggregate == "max":
            return {epoch: max(values) for epoch, values in grouped.items()}
        if aggregate == "mean":
            return {epoch: float(np.mean(values)) for epoch, values in grouped.items()}
        return {epoch: float(np.sum(values)) for epoch, values in grouped.items()}

    def series_names(self) -> list[tuple[str, dict[str, str]]]:
        """All stored series as (name, tags) pairs."""
        return [(name, dict(tags)) for name, tags in self._series.keys()]

    def __len__(self) -> int:
        return len(self._series)

    def clear(self) -> None:
        self._series.clear()
