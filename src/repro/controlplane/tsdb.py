"""A small in-memory time-series store.

The paper's implementation persists monitoring samples in InfluxDB; the
simulation only needs an ordered, queryable record of (epoch, value) points
per series, which this module provides without external dependencies.
Series are identified by a name plus a tag dictionary, mirroring the
measurement/tag model of the original store.

Storage layout (see DESIGN.md, "Warm-started solver layer & monitoring
caches"): each series keeps its samples in amortised-O(1) numpy ring
buffers and maintains the per-epoch *peak* incrementally as samples arrive,
so the forecasting path never re-groups raw samples.  A per-series version
counter lets downstream caches (the monitoring service's merged peak
history) detect writes and prunes without subscribing to the store.
"""

from __future__ import annotations

import numpy as np


def _series_key(name: str, tags: dict[str, str] | None) -> tuple:
    tags = tags or {}
    return (name, tuple(sorted(tags.items())))


class _RingBuffer:
    """Append-only numpy buffer with O(1) amortised append and front-drop.

    The live window is ``self._data[self._start:self._end]``.  Appends grow
    the backing array geometrically; dropping from the front just advances
    ``_start``, and the buffer compacts (copies the live window to offset 0)
    once more than half of the backing array is dead space, so memory stays
    proportional to the retained window.
    """

    __slots__ = ("_data", "_start", "_end")

    def __init__(self, dtype, initial_capacity: int = 16):
        self._data = np.empty(initial_capacity, dtype=dtype)
        self._start = 0
        self._end = 0

    def __len__(self) -> int:
        return self._end - self._start

    def append(self, value) -> None:
        if self._end == len(self._data):
            self._compact_or_grow()
        self._data[self._end] = value
        self._end += 1

    def drop_front(self, count: int) -> None:
        self._start += count
        if self._start > len(self._data) // 2:
            self._compact_or_grow(grow=False)

    def view(self) -> np.ndarray:
        """The live window as a read-only view (no copy)."""
        return self._data[self._start : self._end]

    def _compact_or_grow(self, grow: bool = True) -> None:
        live = self._end - self._start
        capacity = len(self._data)
        if grow and self._start <= capacity // 2:
            capacity = max(2 * capacity, 16)
        data = np.empty(capacity, dtype=self._data.dtype)
        data[:live] = self._data[self._start : self._end]
        self._data = data
        self._start = 0
        self._end = live


class _Series:
    """One (name, tags) series: raw samples plus the incremental peak track.

    ``peak_epochs``/``peak_values`` hold one entry per distinct epoch, in
    epoch order; appending another sample for the latest epoch updates the
    trailing peak in place, so the per-epoch maximum is always current
    without ever re-scanning the raw samples.  ``version`` increments on
    every mutation (append or prune) and is what downstream caches key on.
    """

    __slots__ = ("epochs", "values", "peak_epochs", "peak_values", "version")

    def __init__(self) -> None:
        self.epochs = _RingBuffer(np.int64)
        self.values = _RingBuffer(np.float64)
        self.peak_epochs = _RingBuffer(np.int64)
        self.peak_values = _RingBuffer(np.float64)
        self.version = 0

    def append(self, epoch: int, value: float) -> None:
        epoch = int(epoch)
        value = float(value)
        if len(self.epochs) and epoch < self.epochs.view()[-1]:
            raise ValueError(
                f"samples must be appended in epoch order (got {epoch} after {self.epochs.view()[-1]})"
            )
        self.epochs.append(epoch)
        self.values.append(value)
        peaks = self.peak_epochs
        if len(peaks) and peaks.view()[-1] == epoch:
            tail = self.peak_values.view()
            if value > tail[-1]:
                tail[-1] = value
        else:
            self.peak_epochs.append(epoch)
            self.peak_values.append(value)
        self.version += 1

    def prune_before(self, min_epoch: int) -> None:
        """Drop all samples with an epoch strictly below ``min_epoch``."""
        cutoff = int(np.searchsorted(self.epochs.view(), min_epoch, side="left"))
        if not cutoff:
            return
        self.epochs.drop_front(cutoff)
        self.values.drop_front(cutoff)
        peak_cutoff = int(
            np.searchsorted(self.peak_epochs.view(), min_epoch, side="left")
        )
        if peak_cutoff:
            self.peak_epochs.drop_front(peak_cutoff)
            self.peak_values.drop_front(peak_cutoff)
        self.version += 1

    # ------------------------------------------------------------------ #
    def window(self, start_epoch: int | None, end_epoch: int | None) -> np.ndarray:
        epochs = self.epochs.view()
        lo = 0 if start_epoch is None else int(np.searchsorted(epochs, start_epoch, "left"))
        hi = (
            len(epochs)
            if end_epoch is None
            else int(np.searchsorted(epochs, end_epoch, "right"))
        )
        return np.array(self.values.view()[lo:hi])

    def peaks(self) -> tuple[np.ndarray, np.ndarray]:
        """(epochs, per-epoch maxima), both in epoch order, as views."""
        return self.peak_epochs.view(), self.peak_values.view()


class TimeSeriesStore:
    """Append-only store of per-epoch samples, indexed by (name, tags).

    ``retention_epochs`` bounds how much history each series keeps: after a
    write at epoch ``t``, samples older than ``t - retention_epochs + 1`` are
    dropped from that series.  The forecasting block only ever consumes a
    trailing window (a few seasons of Holt-Winters history), so long-running
    campaigns can cap the store's memory without changing any forecast.
    Retention is per series and driven by that series' own latest epoch,
    mirroring the retention policies of the InfluxDB deployment the paper's
    implementation uses.
    """

    def __init__(self, retention_epochs: int | None = None) -> None:
        if retention_epochs is not None and retention_epochs <= 0:
            raise ValueError(
                f"retention_epochs must be a positive integer or None, got {retention_epochs!r}"
            )
        self.retention_epochs = retention_epochs
        self._series: dict[tuple, _Series] = {}

    # ------------------------------------------------------------------ #
    def write(
        self, name: str, epoch: int, value: float, tags: dict[str, str] | None = None
    ) -> None:
        """Append one sample to a series (created on first write)."""
        key = _series_key(name, tags)
        series = self._series.setdefault(key, _Series())
        series.append(epoch, value)
        if self.retention_epochs is not None:
            series.prune_before(int(epoch) - self.retention_epochs + 1)

    def write_many(
        self,
        name: str,
        epoch: int,
        values: list[float] | np.ndarray,
        tags: dict[str, str] | None = None,
    ) -> None:
        """Append several samples sharing the same epoch (monitoring samples)."""
        key = _series_key(name, tags)
        series = self._series.setdefault(key, _Series())
        for value in values:
            series.append(epoch, float(value))
        if self.retention_epochs is not None:
            series.prune_before(int(epoch) - self.retention_epochs + 1)

    # ------------------------------------------------------------------ #
    def values(
        self,
        name: str,
        tags: dict[str, str] | None = None,
        start_epoch: int | None = None,
        end_epoch: int | None = None,
    ) -> np.ndarray:
        """All sample values of a series, optionally restricted to an epoch range."""
        series = self._series.get(_series_key(name, tags))
        if series is None:
            return np.array([])
        return series.window(start_epoch, end_epoch)

    def per_epoch_aggregate(
        self,
        name: str,
        tags: dict[str, str] | None = None,
        aggregate: str = "max",
    ) -> dict[int, float]:
        """Aggregate samples per epoch ('max', 'mean' or 'sum').

        The orchestrator consumes the per-epoch *peak*, i.e. ``max``, which
        is maintained incrementally and served without touching the raw
        samples; 'mean' and 'sum' group the raw samples on demand.
        """
        series = self._series.get(_series_key(name, tags))
        if series is None:
            return {}
        if aggregate not in ("max", "mean", "sum"):
            raise ValueError(f"unsupported aggregate {aggregate!r}")
        if aggregate == "max":
            epochs, peaks = series.peaks()
            return {int(epoch): float(peak) for epoch, peak in zip(epochs, peaks)}
        grouped: dict[int, list[float]] = {}
        for epoch, value in zip(series.epochs.view(), series.values.view()):
            grouped.setdefault(int(epoch), []).append(float(value))
        if aggregate == "mean":
            return {epoch: float(np.mean(values)) for epoch, values in grouped.items()}
        return {epoch: float(np.sum(values)) for epoch, values in grouped.items()}

    def peak_series(
        self, name: str, tags: dict[str, str] | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(epochs, per-epoch peaks) of one series, in epoch order.

        Array-valued variant of ``per_epoch_aggregate(..., 'max')`` served
        straight from the incremental peak track (the arrays are views;
        callers must not mutate them).
        """
        series = self._series.get(_series_key(name, tags))
        if series is None:
            return np.array([], dtype=np.int64), np.array([])
        return series.peaks()

    def series_version(self, name: str, tags: dict[str, str] | None = None) -> int:
        """Monotonic mutation counter of one series (0 when it does not exist).

        Downstream caches compare versions instead of data: any append or
        retention prune bumps the counter.
        """
        series = self._series.get(_series_key(name, tags))
        return 0 if series is None else series.version

    def series_names(self) -> list[tuple[str, dict[str, str]]]:
        """All stored series as (name, tags) pairs."""
        return [(name, dict(tags)) for name, tags in self._series.keys()]

    def __len__(self) -> int:
        return len(self._series)

    def clear(self) -> None:
        self._series.clear()
