"""Knapsack Admission Control (KAC): the fast heuristic of Section 4.2.

KAC replaces the exact Benders master problem with a multi-constrained 0-1
knapsack (Problem 6).  The constraints of that knapsack are not known up
front: they are generated lazily from the *feasibility* information of the
slave problem, exactly as in Algorithm 3:

1. start with no capacity knowledge and admit every profitable tenant;
2. evaluate the slave LP for the current admission vector; if it is
   infeasible, extract an extreme ray of the dual slave (here: a phase-1
   infeasibility certificate) and convert it into knapsack weights
   ``w^(k)`` and a knapsack capacity ``W^(k)`` (equations (27)-(28));
3. aggregate all generated constraints into a single surrogate constraint
   with the epsilon-weighting of equations (29)-(30) and re-run the greedy
   first-fit-decreasing knapsack solver (Algorithm 2);
4. repeat until the slave is feasible, then read the reservations ``z`` from
   the slave solution.

One practical refinement (documented in DESIGN.md): admission is decided at
the granularity of *(tenant, compute unit)* bundles -- a bundle contains the
lowest-delay admissible path from every base station to that compute unit --
so that every heuristic solution automatically satisfies the single-path,
same-CU and delay constraints (5)-(7).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.decomposition import SlaveProblem
from repro.core.knapsack import KnapsackItem, solve_knapsack_ffd
from repro.core.problem import ACRRProblem, InfeasibleProblemError
from repro.core.solution import (
    OrchestrationDecision,
    SolverStats,
    decision_from_vectors,
)

#: Guard rails for the epsilon weight recursion of equation (30).
_EPSILON_MIN = 1e-9
_EPSILON_MAX = 1e9


@dataclass(frozen=True)
class _Bundle:
    """All paths needed to admit one tenant through one compute unit."""

    tenant_index: int
    tenant_name: str
    compute_unit: str
    item_indices: tuple[int, ...]
    cost: float  # sum of the per-item objective-x coefficients (gamma)
    committed: bool

    @property
    def value(self) -> float:
        """Profit of admitting this bundle (positive means worth admitting)."""
        return -self.cost


class KACSolver:
    """The Knapsack Admission Control heuristic (Algorithms 2 and 3)."""

    def __init__(self, max_iterations: int = 50):
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        self.max_iterations = max_iterations

    # ------------------------------------------------------------------ #
    def solve(self, problem: ACRRProblem) -> OrchestrationDecision:
        start = time.perf_counter()
        slave = SlaveProblem(problem)
        cost_x = problem.objective_x()
        bundles = self._build_bundles(problem, cost_x)
        if not bundles:
            raise InfeasibleProblemError(
                "KAC found no admissible (tenant, compute unit) bundle"
            )

        n = problem.num_items
        aggregated_weights = np.zeros(n)
        aggregated_capacity = 0.0
        epsilon = 1.0
        feasibility_cuts = 0
        iterations = 0
        selected = self._initial_selection(bundles, problem)
        outcome = None

        for iteration in range(1, self.max_iterations + 1):
            iterations = iteration
            x = self._selection_to_vector(selected, n)
            outcome = slave.evaluate(x)
            if outcome.feasible:
                break
            # Infeasible slave: generate knapsack weights from the certificate.
            ray = outcome.ray
            max_component = float(np.max(np.abs(ray))) if ray.size else 0.0
            if max_component > 0:
                ray = ray / max_component
            weights, capacity = slave.knapsack_weights(ray)
            feasibility_cuts += 1
            epsilon = self._next_epsilon(epsilon, weights, capacity)
            aggregated_weights = aggregated_weights + epsilon * weights
            aggregated_capacity = aggregated_capacity + epsilon * capacity
            selected = self._knapsack_selection(
                bundles, problem, aggregated_weights, aggregated_capacity
            )
        else:
            outcome = None

        if outcome is None or not outcome.feasible:
            # The epsilon-aggregated constraint did not converge to a feasible
            # admission set; fall back to dropping the least valuable
            # non-committed bundle until the slave accepts the selection.
            selected, outcome = self._repair(slave, selected, n, bundles)

        x = self._selection_to_vector(selected, n)
        runtime = time.perf_counter() - start
        stats = SolverStats(
            solver="kac",
            iterations=iterations,
            runtime_s=runtime,
            optimal=False,
            cuts_feasibility=feasibility_cuts,
            message="heuristic solution",
        )
        return decision_from_vectors(problem, x, outcome.z, stats)

    # ------------------------------------------------------------------ #
    # Bundle construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _build_bundles(problem: ACRRProblem, cost_x: np.ndarray) -> list[_Bundle]:
        bundles: list[_Bundle] = []
        base_stations = problem.base_station_names
        for tenant_index, request in enumerate(problem.requests):
            items = problem.items_of_tenant(tenant_index)
            by_cu_bs: dict[tuple[str, str], list] = {}
            for item in items:
                by_cu_bs.setdefault(
                    (item.path.compute_unit, item.path.base_station), []
                ).append(item)
            for cu in problem.compute_unit_names:
                chosen: list[int] = []
                complete = True
                for bs in base_stations:
                    candidates = by_cu_bs.get((cu, bs), [])
                    if not candidates:
                        complete = False
                        break
                    best = min(candidates, key=lambda item: item.path.delay_us)
                    chosen.append(best.index)
                if not complete:
                    continue
                cost = float(sum(cost_x[i] for i in chosen))
                bundles.append(
                    _Bundle(
                        tenant_index=tenant_index,
                        tenant_name=request.name,
                        compute_unit=cu,
                        item_indices=tuple(chosen),
                        cost=cost,
                        committed=request.committed,
                    )
                )
        return bundles

    @staticmethod
    def _best_bundle_per_tenant(bundles: list[_Bundle], problem: ACRRProblem) -> dict[int, _Bundle]:
        """Pick one candidate bundle per tenant for the initial selection.

        Committed tenants stick to their previously chosen compute unit when
        the orchestrator has recorded one (``preferred_compute_unit`` in the
        request metadata) -- keeping committed slices where they already run
        avoids service disruption and keeps the heuristic's starting point
        feasible.  Everyone else takes the highest-value bundle (ties broken
        by the order compute units appear in the topology).
        """
        best: dict[int, _Bundle] = {}
        for bundle in bundles:
            request = problem.requests[bundle.tenant_index]
            preferred_cu = request.metadata.get("preferred_compute_unit")
            current = best.get(bundle.tenant_index)
            if bundle.committed and preferred_cu is not None:
                if bundle.compute_unit == preferred_cu:
                    best[bundle.tenant_index] = bundle
                elif current is None:
                    best[bundle.tenant_index] = bundle
                continue
            if current is None or bundle.value > current.value:
                best[bundle.tenant_index] = bundle
        return best

    def _initial_selection(
        self, bundles: list[_Bundle], problem: ACRRProblem
    ) -> list[_Bundle]:
        """Iteration 1 of Algorithm 3: no capacity knowledge, admit greedily."""
        best_by_tenant = self._best_bundle_per_tenant(bundles, problem)
        return [
            bundle
            for bundle in best_by_tenant.values()
            if bundle.committed or bundle.value > 0.0
        ]

    @staticmethod
    def _selection_to_vector(selected: list[_Bundle], num_items: int) -> np.ndarray:
        x = np.zeros(num_items)
        for bundle in selected:
            for index in bundle.item_indices:
                x[index] = 1.0
        return x

    # ------------------------------------------------------------------ #
    # Knapsack iteration
    # ------------------------------------------------------------------ #
    @staticmethod
    def _next_epsilon(
        epsilon_prev: float, weights: np.ndarray, capacity: float
    ) -> float:
        """Equation (30) with clamping to keep the recursion numerically sane."""
        raw = abs(epsilon_prev * capacity - float(np.sum(epsilon_prev * weights)))
        return float(np.clip(raw, _EPSILON_MIN, _EPSILON_MAX))

    def _knapsack_selection(
        self,
        bundles: list[_Bundle],
        problem: ACRRProblem,
        aggregated_weights: np.ndarray,
        aggregated_capacity: float,
    ) -> list[_Bundle]:
        # Committed tenants must be admitted (constraint (13)), but only one
        # of their candidate bundles (one per compute unit) may be forced into
        # the knapsack -- the one their slice already runs on.
        forced = {
            bundle
            for bundle in self._best_bundle_per_tenant(bundles, problem).values()
            if bundle.committed
        }
        items = [
            KnapsackItem(
                key=bundle,
                value=bundle.value,
                weight=float(sum(aggregated_weights[i] for i in bundle.item_indices)),
                group=bundle.tenant_index,
                mandatory=bundle in forced,
            )
            for bundle in bundles
            if bundle in forced or not bundle.committed
        ]
        chosen = solve_knapsack_ffd(items, aggregated_capacity)
        return [item.key for item in chosen]

    # ------------------------------------------------------------------ #
    # Feasibility repair
    # ------------------------------------------------------------------ #
    def _repair(
        self,
        slave: SlaveProblem,
        selected: list[_Bundle],
        num_items: int,
        bundles: list[_Bundle],
    ):
        """Make the selection feasible: drop optional bundles, re-anchor committed ones.

        Optional (non-committed) bundles are dropped in increasing value
        order.  If only committed bundles remain and the selection is still
        infeasible, the repair tries to move committed slices to an
        alternative compute unit (e.g. from the saturated edge cloud to the
        core cloud), accepting any move that strictly reduces the measured
        infeasibility.  Only when no move helps does it give up.
        """
        working = list(selected)
        while True:
            x = self._selection_to_vector(working, num_items)
            outcome = slave.evaluate(x)
            if outcome.feasible:
                return working, outcome
            removable = [b for b in working if not b.committed]
            if removable:
                worst = min(removable, key=lambda bundle: bundle.value)
                working.remove(worst)
                continue
            improved = self._reanchor_committed(slave, working, num_items, bundles, outcome.infeasibility)
            if improved is None:
                raise InfeasibleProblemError(
                    "KAC cannot find a feasible admission set: the committed "
                    "slices alone exceed the system capacity "
                    "(enable allow_deficit and use the MILP/Benders solvers)"
                )
            working = improved

    def _reanchor_committed(
        self,
        slave: SlaveProblem,
        working: list[_Bundle],
        num_items: int,
        bundles: list[_Bundle],
        current_infeasibility: float,
    ) -> list[_Bundle] | None:
        """Try to move one committed bundle to another CU; None if nothing helps."""
        for bundle in sorted(working, key=lambda b: b.value):
            position = working.index(bundle)
            alternatives = [
                candidate
                for candidate in bundles
                if candidate.tenant_index == bundle.tenant_index
                and candidate.compute_unit != bundle.compute_unit
            ]
            for alternative in alternatives:
                candidate_selection = list(working)
                candidate_selection[position] = alternative
                x = self._selection_to_vector(candidate_selection, num_items)
                outcome = slave.evaluate(x)
                if outcome.feasible or outcome.infeasibility < current_infeasibility - 1e-9:
                    return candidate_selection
        return None
