"""The paper's primary contribution: the AC-RR yield-management problem.

This package contains the slice/SLA model (Table 1), the admission-control
and resource-reservation (AC-RR) optimisation problem of Section 3, and the
algorithms of Section 4: the optimal Benders decomposition, the KAC
heuristic, a direct MILP solver used as a reference, and the no-overbooking
baseline the paper compares against.
"""

from repro.core.slices import (
    SliceTemplate,
    SliceRequest,
    EMBB_TEMPLATE,
    MMTC_TEMPLATE,
    URLLC_TEMPLATE,
    TEMPLATES,
)
from repro.core.forecast_inputs import ForecastInput
from repro.core.risk import risk_cost, deficit_probability_proxy, uncertainty_scale
from repro.core.problem import ACRRProblem, ProblemOptions
from repro.core.solution import OrchestrationDecision, SolverStats
from repro.core.milp_solver import DirectMILPSolver
from repro.core.benders import BendersSolver
from repro.core.kac import KACSolver
from repro.core.baseline import NoOverbookingSolver
from repro.core.knapsack import KnapsackItem, solve_knapsack_ffd

__all__ = [
    "SliceTemplate",
    "SliceRequest",
    "EMBB_TEMPLATE",
    "MMTC_TEMPLATE",
    "URLLC_TEMPLATE",
    "TEMPLATES",
    "ForecastInput",
    "risk_cost",
    "deficit_probability_proxy",
    "uncertainty_scale",
    "ACRRProblem",
    "ProblemOptions",
    "OrchestrationDecision",
    "SolverStats",
    "DirectMILPSolver",
    "BendersSolver",
    "KACSolver",
    "NoOverbookingSolver",
    "KnapsackItem",
    "solve_knapsack_ffd",
]
