"""Shared machinery for the decomposition-based solvers (Benders and KAC).

Both algorithms of Section 4 work on the same *slave* linear program
(Problem 3): for a fixed admission/path vector ``x``, choose the reservations
``z`` (and the linearisation variables ``y``) that minimise the risk part of
the objective subject to the capacity and coupling constraints.  This module
builds that LP once, in the parametric form

    min  d' u          u = (y, z) >= 0
    s.t. G u <= h0 + H x,

so that solving it for a new ``x`` only changes the right-hand side.  The
dual multipliers of a feasible solve yield Benders *optimality cuts*; the
phase-1 certificate of an infeasible solve yields *feasibility cuts*, which
are also exactly the knapsack weights (27)-(28) used by the KAC heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.lpsolver import LPSolution, Phase1Problem, solve_lp
from repro.core.problem import ACRRProblem, ResourceBlock

#: Numerical tolerance below which a phase-1 optimum counts as "feasible".
FEASIBILITY_TOLERANCE = 1e-6


class SlaveNumericalError(RuntimeError):
    """The slave LP solver failed on an essentially-feasible instance.

    Deterministic numerical breakdown, not a transient fault: the phase-1
    certificate proves the instance is feasible (within
    :data:`FEASIBILITY_TOLERANCE`) yet the LP solver refused it.  Subclasses
    ``RuntimeError`` so the safeguard chain's fall-through tier
    (:mod:`repro.faults.safeguard`) catches it and degrades instead of
    retrying -- retrying a deterministic solve reproduces the failure.
    """


@dataclass(frozen=True)
class SlaveSolveOutcome:
    """Result of evaluating the slave LP at a fixed admission vector."""

    feasible: bool
    objective: float
    y: np.ndarray
    z: np.ndarray
    duals: np.ndarray
    infeasibility: float
    ray: np.ndarray


@dataclass(frozen=True)
class SlaveBlock:
    """One tenant's relaxed slice of the slave LP (multi-cut block).

    Holds plain arrays only, so instances pickle cleanly into process-pool
    workers.  ``rows`` indexes into the full slave system (capacity rows the
    tenant's items touch, then the items' coupling rows); ``g_matrix`` is
    those rows restricted to the block's own ``u = (y_b, z_b)`` columns.
    Dropping the other tenants' non-negative terms from a shared ``<=`` row
    while keeping the full right-hand side relaxes the row, so the block
    optimum underestimates the tenant's share of the joint slave cost:

        q(x) >= sum_b q_b(x)   for every admission vector x,

    which makes per-block optimality cuts ``theta_b >= -(h0_b + H_b x)' mu``
    valid lower bounds on the per-block surrogates whatever iteration the
    multipliers came from.  ``h_matrix`` keeps the full x width, so block
    cuts may involve other tenants' admission variables (shared capacity
    rows carry their baseline terms).
    """

    index: int
    tenant_index: int
    item_indices: tuple[int, ...]
    rows: tuple[int, ...]
    d: np.ndarray
    g_matrix: sparse.csr_matrix
    h0: np.ndarray
    h_matrix: sparse.csr_matrix
    u_lower: np.ndarray
    u_upper: np.ndarray
    u_bound: np.ndarray
    theta_lower: float


@dataclass(frozen=True)
class BlockSolveOutcome:
    """Result of pricing one :class:`SlaveBlock` at a fixed admission vector."""

    block_index: int
    feasible: bool
    objective: float
    duals: np.ndarray
    infeasibility: float
    ray: np.ndarray


def evaluate_block(block: SlaveBlock, x: np.ndarray) -> BlockSolveOutcome:
    """Price one block at ``x``.  Module-level so process pools can map it."""
    b = block.h0 + block.h_matrix.dot(np.asarray(x, dtype=float))
    solution: LPSolution = solve_lp(
        block.d, block.g_matrix, b, block.u_lower, block.u_upper
    )
    if solution.success:
        return BlockSolveOutcome(
            block_index=block.index,
            feasible=True,
            objective=solution.objective,
            duals=solution.duals_upper,
            infeasibility=0.0,
            ray=np.zeros(len(b)),
        )
    phase1 = Phase1Problem(block.g_matrix, block.u_lower, block.u_upper)
    infeasibility, ray = phase1.certificate(b)
    if infeasibility <= FEASIBILITY_TOLERANCE:
        raise SlaveNumericalError(
            f"block {block.index} LP solver failure despite a feasible "
            f"phase-1 problem: {solution.status}"
        )
    return BlockSolveOutcome(
        block_index=block.index,
        feasible=False,
        objective=float("inf"),
        duals=np.zeros(len(b)),
        infeasibility=infeasibility,
        ray=ray,
    )


def _evaluate_block_task(task: "tuple[SlaveBlock, np.ndarray]") -> BlockSolveOutcome:
    return evaluate_block(task[0], task[1])


class SlaveProblem:
    """The parametric slave LP shared by the Benders and KAC solvers."""

    def __init__(self, problem: ACRRProblem):
        self.problem = problem
        n = problem.num_items
        self.num_items = n

        capacity = problem.capacity_block()
        coupling = problem.coupling_block()

        # Constraint matrix over u = [y, z].
        g_capacity = sparse.hstack([capacity.a_y, capacity.a_z], format="csr")
        g_coupling = sparse.hstack([coupling.a_y, coupling.a_z], format="csr")
        self.g_matrix: sparse.csr_matrix = sparse.vstack(
            [g_capacity, g_coupling], format="csr"
        )
        # Right-hand side h(x) = h0 + H x.
        self.h0: np.ndarray = np.concatenate([capacity.upper, coupling.upper])
        self.h_matrix: sparse.csr_matrix = sparse.vstack(
            [-capacity.a_x, -coupling.a_x], format="csr"
        )
        self.row_labels: list[str] = list(capacity.labels) + list(coupling.labels)
        self.num_capacity_rows = capacity.num_rows

        # Slave objective: only the y-part of Psi is decided by the slave.
        self.d: np.ndarray = np.concatenate([problem.objective_y(), np.zeros(n)])
        self.u_lower = np.zeros(2 * n)
        self.u_upper = np.full(2 * n, np.inf)
        # Phase-1 certificate problem, extended once on the first infeasible
        # evaluate; later certificates only swap the right-hand side.
        self._phase1: Phase1Problem | None = None
        # Per-tenant blocks for multi-cut disaggregation, built lazily.
        self._blocks: list[SlaveBlock] | None = None

    # ------------------------------------------------------------------ #
    def rhs(self, x: np.ndarray) -> np.ndarray:
        """h(x) = h0 + H x for a given admission vector."""
        x = np.asarray(x, dtype=float)
        return self.h0 + self.h_matrix.dot(x)

    def objective_lower_bound(self) -> float:
        """A valid lower bound on the slave optimum for any admission vector.

        The linearisation variable y never exceeds the SLA bitrate, and its
        objective coefficients are non-positive, so the slave objective is
        bounded below by sum_i c_y[i] * Lambda_i.  Used to bound the master's
        surrogate variable theta before any optimality cut exists.
        """
        sla = np.array([item.sla_mbps for item in self.problem.items])
        c_y = self.problem.objective_y()
        return float(np.sum(np.minimum(c_y * sla, 0.0)))

    def evaluate(self, x: np.ndarray) -> SlaveSolveOutcome:
        """Solve the slave LP at ``x``; fall back to the phase-1 certificate."""
        b = self.rhs(x)
        solution: LPSolution = solve_lp(
            self.d, self.g_matrix, b, self.u_lower, self.u_upper
        )
        n = self.num_items
        if solution.success:
            return SlaveSolveOutcome(
                feasible=True,
                objective=solution.objective,
                y=solution.primal[:n],
                z=solution.primal[n:],
                duals=solution.duals_upper,
                infeasibility=0.0,
                ray=np.zeros(len(b)),
            )
        if self._phase1 is None:
            self._phase1 = Phase1Problem(self.g_matrix, self.u_lower, self.u_upper)
        infeasibility, ray = self._phase1.certificate(b)
        if infeasibility <= FEASIBILITY_TOLERANCE:
            # The LP failed for numerical reasons but is essentially feasible,
            # so neither outcome would be honest: the phase-1 point carries no
            # dual prices for an optimality cut, and a feasibility cut would
            # wrongly exclude a feasible x.  Raise the typed numerical error
            # so the safeguard chain degrades to a conservative tier instead
            # of retrying a deterministic failure.
            raise SlaveNumericalError(
                "slave LP solver failure despite a feasible phase-1 problem: "
                f"{solution.status}"
            )
        return SlaveSolveOutcome(
            feasible=False,
            objective=float("inf"),
            y=np.zeros(n),
            z=np.zeros(n),
            duals=np.zeros(len(b)),
            infeasibility=infeasibility,
            ray=ray,
        )

    # ------------------------------------------------------------------ #
    # Multi-cut blocks
    # ------------------------------------------------------------------ #
    def blocks(self) -> list[SlaveBlock]:
        """Per-tenant blocks in deterministic (tenant) order, built lazily."""
        if self._blocks is None:
            self._blocks = [
                self._build_block(block) for block in self.problem.resource_blocks()
            ]
        return self._blocks

    def _build_block(self, block: ResourceBlock) -> SlaveBlock:
        n = self.num_items
        items = list(block.item_indices)
        rows = list(block.capacity_rows) + [
            self.num_capacity_rows + 5 * i + j for i in items for j in range(5)
        ]
        cols = items + [n + i for i in items]
        g_block = self.g_matrix[rows, :].tocsc()[:, cols].tocsr()
        sla = np.array(
            [self.problem.items[i].sla_mbps for i in items], dtype=float
        )
        c_y = self.problem.objective_y()[items]
        return SlaveBlock(
            index=block.index,
            tenant_index=block.tenant_index,
            item_indices=tuple(items),
            rows=tuple(rows),
            d=self.d[cols],
            g_matrix=g_block,
            h0=self.h0[rows],
            h_matrix=self.h_matrix[rows, :].tocsr(),
            u_lower=np.zeros(2 * len(items)),
            u_upper=np.full(2 * len(items), np.inf),
            u_bound=np.concatenate([sla, sla]),
            theta_lower=float(np.sum(np.minimum(c_y * sla, 0.0))),
        )

    def evaluate_blocks(self, x: np.ndarray, executor=None) -> list[BlockSolveOutcome]:
        """Price every block at ``x``, optionally fanning out over an executor.

        Results come back in block order whatever the executor, and each
        block LP is an independent deterministic solve, so the outcome list
        is bit-identical for any worker count (the executor contract in
        :mod:`repro.utils.executors`).
        """
        blocks = self.blocks()
        x = np.asarray(x, dtype=float)
        if executor is None or len(blocks) <= 1:
            return [evaluate_block(block, x) for block in blocks]
        return executor.map(
            _evaluate_block_task, [(block, x) for block in blocks]
        )

    def cut_from_block_multipliers(
        self, block: SlaveBlock, mu: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """Like :meth:`cut_from_multipliers` but over one block's rows.

        The returned coefficients span the full admission vector (shared
        capacity rows carry other tenants' baseline terms); the cut reads
        ``theta_b + (H_b' mu)' x >= -h0_b' mu``.
        """
        mu = np.asarray(mu, dtype=float)
        coeff = np.asarray(block.h_matrix.T.dot(mu)).ravel()
        rhs = -float(np.dot(block.h0, mu))
        return coeff, rhs

    # ------------------------------------------------------------------ #
    # Cut generation
    # ------------------------------------------------------------------ #
    def cut_from_multipliers(self, mu: np.ndarray) -> tuple[np.ndarray, float]:
        """Translate dual multipliers into cut coefficients.

        For multipliers ``mu >= 0`` of the slave rows, both cut families have
        the common linear form over x:

            (H' mu)' x >= -h0' mu          (feasibility cut)
            theta + (H' mu)' x >= -h0' mu  (optimality cut)

        Returns ``(coefficients over x, right-hand side)`` of that inequality.
        """
        mu = np.asarray(mu, dtype=float)
        coeff = np.asarray(self.h_matrix.T.dot(mu)).ravel()
        rhs = -float(np.dot(self.h0, mu))
        return coeff, rhs

    def knapsack_weights(self, ray: np.ndarray) -> tuple[np.ndarray, float]:
        """KAC weights (27)-(28): per-item weights and the knapsack capacity.

        A feasibility cut ``(H' mu)' x >= -h0' mu`` is rewritten as
        ``sum_i w_i x_i <= W`` with ``w_i = -(H' mu)_i`` and ``W = h0' mu``,
        which is the multi-constrained knapsack form of Problem 6.
        """
        coeff, rhs = self.cut_from_multipliers(ray)
        return -coeff, -rhs
