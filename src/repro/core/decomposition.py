"""Shared machinery for the decomposition-based solvers (Benders and KAC).

Both algorithms of Section 4 work on the same *slave* linear program
(Problem 3): for a fixed admission/path vector ``x``, choose the reservations
``z`` (and the linearisation variables ``y``) that minimise the risk part of
the objective subject to the capacity and coupling constraints.  This module
builds that LP once, in the parametric form

    min  d' u          u = (y, z) >= 0
    s.t. G u <= h0 + H x,

so that solving it for a new ``x`` only changes the right-hand side.  The
dual multipliers of a feasible solve yield Benders *optimality cuts*; the
phase-1 certificate of an infeasible solve yields *feasibility cuts*, which
are also exactly the knapsack weights (27)-(28) used by the KAC heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.lpsolver import LPSolution, Phase1Problem, solve_lp
from repro.core.problem import ACRRProblem

#: Numerical tolerance below which a phase-1 optimum counts as "feasible".
FEASIBILITY_TOLERANCE = 1e-6


@dataclass(frozen=True)
class SlaveSolveOutcome:
    """Result of evaluating the slave LP at a fixed admission vector."""

    feasible: bool
    objective: float
    y: np.ndarray
    z: np.ndarray
    duals: np.ndarray
    infeasibility: float
    ray: np.ndarray


class SlaveProblem:
    """The parametric slave LP shared by the Benders and KAC solvers."""

    def __init__(self, problem: ACRRProblem):
        self.problem = problem
        n = problem.num_items
        self.num_items = n

        capacity = problem.capacity_block()
        coupling = problem.coupling_block()

        # Constraint matrix over u = [y, z].
        g_capacity = sparse.hstack([capacity.a_y, capacity.a_z], format="csr")
        g_coupling = sparse.hstack([coupling.a_y, coupling.a_z], format="csr")
        self.g_matrix: sparse.csr_matrix = sparse.vstack(
            [g_capacity, g_coupling], format="csr"
        )
        # Right-hand side h(x) = h0 + H x.
        self.h0: np.ndarray = np.concatenate([capacity.upper, coupling.upper])
        self.h_matrix: sparse.csr_matrix = sparse.vstack(
            [-capacity.a_x, -coupling.a_x], format="csr"
        )
        self.row_labels: list[str] = list(capacity.labels) + list(coupling.labels)
        self.num_capacity_rows = capacity.num_rows

        # Slave objective: only the y-part of Psi is decided by the slave.
        self.d: np.ndarray = np.concatenate([problem.objective_y(), np.zeros(n)])
        self.u_lower = np.zeros(2 * n)
        self.u_upper = np.full(2 * n, np.inf)
        # Phase-1 certificate problem, extended once on the first infeasible
        # evaluate; later certificates only swap the right-hand side.
        self._phase1: Phase1Problem | None = None

    # ------------------------------------------------------------------ #
    def rhs(self, x: np.ndarray) -> np.ndarray:
        """h(x) = h0 + H x for a given admission vector."""
        x = np.asarray(x, dtype=float)
        return self.h0 + self.h_matrix.dot(x)

    def objective_lower_bound(self) -> float:
        """A valid lower bound on the slave optimum for any admission vector.

        The linearisation variable y never exceeds the SLA bitrate, and its
        objective coefficients are non-positive, so the slave objective is
        bounded below by sum_i c_y[i] * Lambda_i.  Used to bound the master's
        surrogate variable theta before any optimality cut exists.
        """
        sla = np.array([item.sla_mbps for item in self.problem.items])
        c_y = self.problem.objective_y()
        return float(np.sum(np.minimum(c_y * sla, 0.0)))

    def evaluate(self, x: np.ndarray) -> SlaveSolveOutcome:
        """Solve the slave LP at ``x``; fall back to the phase-1 certificate."""
        b = self.rhs(x)
        solution: LPSolution = solve_lp(
            self.d, self.g_matrix, b, self.u_lower, self.u_upper
        )
        n = self.num_items
        if solution.success:
            return SlaveSolveOutcome(
                feasible=True,
                objective=solution.objective,
                y=solution.primal[:n],
                z=solution.primal[n:],
                duals=solution.duals_upper,
                infeasibility=0.0,
                ray=np.zeros(len(b)),
            )
        if self._phase1 is None:
            self._phase1 = Phase1Problem(self.g_matrix, self.u_lower, self.u_upper)
        infeasibility, ray = self._phase1.certificate(b)
        if infeasibility <= FEASIBILITY_TOLERANCE:
            # The LP failed for numerical reasons but is essentially feasible;
            # retry the certificate solution as a (conservative) outcome.
            raise RuntimeError(
                "slave LP solver failure despite a feasible phase-1 problem: "
                f"{solution.status}"
            )
        return SlaveSolveOutcome(
            feasible=False,
            objective=float("inf"),
            y=np.zeros(n),
            z=np.zeros(n),
            duals=np.zeros(len(b)),
            infeasibility=infeasibility,
            ray=ray,
        )

    # ------------------------------------------------------------------ #
    # Cut generation
    # ------------------------------------------------------------------ #
    def cut_from_multipliers(self, mu: np.ndarray) -> tuple[np.ndarray, float]:
        """Translate dual multipliers into cut coefficients.

        For multipliers ``mu >= 0`` of the slave rows, both cut families have
        the common linear form over x:

            (H' mu)' x >= -h0' mu          (feasibility cut)
            theta + (H' mu)' x >= -h0' mu  (optimality cut)

        Returns ``(coefficients over x, right-hand side)`` of that inequality.
        """
        mu = np.asarray(mu, dtype=float)
        coeff = np.asarray(self.h_matrix.T.dot(mu)).ravel()
        rhs = -float(np.dot(self.h0, mu))
        return coeff, rhs

    def knapsack_weights(self, ray: np.ndarray) -> tuple[np.ndarray, float]:
        """KAC weights (27)-(28): per-item weights and the knapsack capacity.

        A feasibility cut ``(H' mu)' x >= -h0' mu`` is rewritten as
        ``sum_i w_i x_i <= W`` with ``w_i = -(H' mu)_i`` and ``W = h0' mu``,
        which is the multi-constrained knapsack form of Problem 6.
        """
        coeff, rhs = self.cut_from_multipliers(ray)
        return -coeff, -rhs
