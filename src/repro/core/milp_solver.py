"""Direct (monolithic) MILP solution of the AC-RR problem.

Problem 2 of the paper is a mixed-integer linear program; this solver hands
the whole thing to HiGHS in one shot.  It serves two purposes:

* it is the reference optimum against which the Benders decomposition and the
  KAC heuristic are validated in the test-suite, and
* it is the most convenient solver for the no-overbooking baseline and for
  instances with the big-M deficit relaxation of Section 3.4 (used by the
  orchestrator once slices have been committed in earlier epochs).
"""

from __future__ import annotations

import time

import numpy as np
from scipy import optimize, sparse

from repro.core.lpsolver import solve_milp
from repro.core.problem import ACRRProblem, InfeasibleProblemError
from repro.core.solution import (
    OrchestrationDecision,
    SolverStats,
    decision_from_vectors,
)

_DEFICIT_DOMAINS = ("radio", "transport", "compute")


class DirectMILPSolver:
    """Solve the AC-RR MILP (Problem 2) monolithically with HiGHS."""

    def __init__(
        self,
        time_limit_s: float | None = 120.0,
        mip_rel_gap: float = 1e-6,
    ):
        self.time_limit_s = time_limit_s
        self.mip_rel_gap = mip_rel_gap

    # ------------------------------------------------------------------ #
    def solve(self, problem: ACRRProblem) -> OrchestrationDecision:
        """Return the optimal orchestration decision for ``problem``."""
        start = time.perf_counter()
        n = problem.num_items
        use_deficit = problem.options.allow_deficit
        num_deficit = len(_DEFICIT_DOMAINS) if use_deficit else 0
        num_vars = 3 * n + num_deficit

        cost = np.concatenate(
            [
                problem.objective_x(),
                np.zeros(n),
                problem.objective_y(),
                np.full(num_deficit, problem.options.deficit_cost),
            ]
        )

        constraints = []
        capacity = problem.capacity_block()
        cap_matrix = sparse.hstack(
            [capacity.a_x, capacity.a_z, capacity.a_y], format="csr"
        )
        if use_deficit:
            cap_matrix = sparse.hstack(
                [cap_matrix, -self._deficit_columns(problem)], format="csr"
            )
        constraints.append(
            optimize.LinearConstraint(cap_matrix, capacity.lower, capacity.upper)
        )

        selection = problem.selection_block()
        if selection.num_rows:
            sel_matrix = sparse.hstack(
                [
                    selection.a_x,
                    sparse.csr_matrix((selection.num_rows, 2 * n + num_deficit)),
                ],
                format="csr",
            )
            constraints.append(
                optimize.LinearConstraint(sel_matrix, selection.lower, selection.upper)
            )

        coupling = problem.coupling_block()
        coup_matrix = sparse.hstack(
            [coupling.a_x, coupling.a_z, coupling.a_y], format="csr"
        )
        if use_deficit:
            coup_matrix = sparse.hstack(
                [coup_matrix, sparse.csr_matrix((coupling.num_rows, num_deficit))],
                format="csr",
            )
        constraints.append(
            optimize.LinearConstraint(coup_matrix, coupling.lower, coupling.upper)
        )

        sla = np.array([item.sla_mbps for item in problem.items])
        lower = np.zeros(num_vars)
        upper = np.concatenate(
            [np.ones(n), sla, sla, np.full(num_deficit, np.inf)]
        )
        integrality = np.concatenate(
            [np.ones(n), np.zeros(2 * n + num_deficit)]
        )

        result = solve_milp(
            cost=cost,
            constraints=constraints,
            integrality=integrality,
            lower=lower,
            upper=upper,
            time_limit_s=self.time_limit_s,
            mip_rel_gap=self.mip_rel_gap,
        )
        runtime = time.perf_counter() - start
        if not result.success:
            raise InfeasibleProblemError(
                f"direct MILP solve failed: {result.status}"
            )

        x = np.round(result.values[:n])
        z = result.values[n : 2 * n]
        deficits: dict[str, float] = {}
        if use_deficit:
            for domain, value in zip(_DEFICIT_DOMAINS, result.values[3 * n :]):
                deficits[domain] = float(value)
        stats = SolverStats(
            solver="direct-milp",
            iterations=1,
            runtime_s=runtime,
            optimal=result.mip_gap <= max(self.mip_rel_gap, 1e-5),
            gap=result.mip_gap,
            message=result.status,
        )
        return decision_from_vectors(problem, x, z, stats, deficits)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _deficit_columns(problem: ACRRProblem) -> sparse.csr_matrix:
        """One column per deficit domain, hitting that domain's capacity rows."""
        domains = problem.deficit_domains()
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        for row, domain in enumerate(domains):
            col = _DEFICIT_DOMAINS.index(domain)
            rows.append(row)
            cols.append(col)
            vals.append(1.0)
        return sparse.csr_matrix(
            (vals, (rows, cols)), shape=(len(domains), len(_DEFICIT_DOMAINS))
        )
