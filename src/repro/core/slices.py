"""Network slice templates, requests and SLAs.

Table 1 of the paper defines three end-to-end slice templates following the
3GPP NSSAI slice types:

=========  ======  ========  ==========  ===============  ==================
Type       R       Delta     Lambda      sigma            s = {a, b} (CPUs)
=========  ======  ========  ==========  ===============  ==================
(x)eMBB    1       30 ms     50 Mb/s     variable         {0, 0}
mMTC       1 + b   30 ms     10 Mb/s     0                {0, 2}
uRLLC      2 + b   5 ms      25 Mb/s     variable         {0, 0.2}
=========  ======  ========  ==========  ===============  ==================

``R`` is the admission reward, ``Delta`` the end-to-end latency tolerance,
``Lambda`` the SLA bitrate at each radio site, and ``s = {a, b}`` the linear
service model that maps carried bitrate into CPU cores (``cpus = a + b *
mbps``).  A slice request :class:`SliceRequest` instantiates a template with
a duration, a penalty factor ``m`` (the paper's K = m * R / Lambda) and an
arrival epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.utils.validation import (
    ensure_in_range,
    ensure_non_negative,
    ensure_positive,
)


@dataclass(frozen=True)
class SliceTemplate:
    """An end-to-end network-slice template (one row of Table 1)."""

    name: str
    reward: float
    latency_tolerance_ms: float
    sla_mbps: float
    compute_baseline_cpus: float
    compute_cpus_per_mbps: float
    default_relative_std: float = 0.25

    def __post_init__(self) -> None:
        ensure_positive(self.reward, "reward")
        ensure_positive(self.latency_tolerance_ms, "latency_tolerance_ms")
        ensure_positive(self.sla_mbps, "sla_mbps")
        ensure_non_negative(self.compute_baseline_cpus, "compute_baseline_cpus")
        ensure_non_negative(self.compute_cpus_per_mbps, "compute_cpus_per_mbps")
        ensure_in_range(self.default_relative_std, 0.0, 1.0, "default_relative_std")

    def compute_cpus(self, carried_mbps: float) -> float:
        """CPU cores consumed when carrying ``carried_mbps`` (the s_tau map)."""
        ensure_non_negative(carried_mbps, "carried_mbps")
        return self.compute_baseline_cpus + self.compute_cpus_per_mbps * carried_mbps

    @property
    def max_compute_cpus(self) -> float:
        """CPU cores needed at the full SLA bitrate."""
        return self.compute_cpus(self.sla_mbps)


def _template_reward(base: float, compute_cpus_per_mbps: float) -> float:
    """Table 1 expresses mMTC/uRLLC rewards as (1 + b) and (2 + b)."""
    return base + compute_cpus_per_mbps


EMBB_TEMPLATE = SliceTemplate(
    name="eMBB",
    reward=1.0,
    latency_tolerance_ms=30.0,
    sla_mbps=50.0,
    compute_baseline_cpus=0.0,
    compute_cpus_per_mbps=0.0,
)

MMTC_TEMPLATE = SliceTemplate(
    name="mMTC",
    reward=_template_reward(1.0, 2.0),
    latency_tolerance_ms=30.0,
    sla_mbps=10.0,
    compute_baseline_cpus=0.0,
    compute_cpus_per_mbps=2.0,
    default_relative_std=0.0,
)

URLLC_TEMPLATE = SliceTemplate(
    name="uRLLC",
    reward=_template_reward(2.0, 0.2),
    latency_tolerance_ms=5.0,
    sla_mbps=25.0,
    compute_baseline_cpus=0.0,
    compute_cpus_per_mbps=0.2,
)

TEMPLATES: dict[str, SliceTemplate] = {
    "eMBB": EMBB_TEMPLATE,
    "mMTC": MMTC_TEMPLATE,
    "uRLLC": URLLC_TEMPLATE,
}


@dataclass(frozen=True)
class SliceRequest:
    """A tenant's slice request Phi_tau = {s, Delta, Lambda, L}.

    Attributes
    ----------
    name:
        Unique tenant / slice identifier.
    template:
        The slice template describing latency, SLA bitrate, compute model and
        reward.
    duration_epochs:
        Slice lifetime ``L_tau`` measured in decision epochs.
    penalty_factor:
        The paper's ``m``: the per-unit SLA-violation penalty is
        ``K = m * R / Lambda`` so that failing to serve 10 % of the SLA costs
        ``10 % * m`` of the reward.
    arrival_epoch:
        Decision epoch at which the request was issued (0 for requests known
        up-front, as in the Fig. 5 / Fig. 6 scenarios).
    committed:
        True once the slice has been admitted in a previous epoch; committed
        slices must remain admitted until they expire (constraint (13)).
    """

    name: str
    template: SliceTemplate
    duration_epochs: int = 24
    penalty_factor: float = 1.0
    arrival_epoch: int = 0
    committed: bool = False
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.duration_epochs <= 0:
            raise ValueError("duration_epochs must be positive")
        ensure_non_negative(self.penalty_factor, "penalty_factor")
        if self.arrival_epoch < 0:
            raise ValueError("arrival_epoch must be non-negative")

    # -- SLA shortcuts ---------------------------------------------------- #
    @property
    def sla_mbps(self) -> float:
        """The SLA bitrate Lambda_tau requested at every radio site."""
        return self.template.sla_mbps

    @property
    def latency_tolerance_ms(self) -> float:
        return self.template.latency_tolerance_ms

    @property
    def reward(self) -> float:
        """Reward R_tau earned per decision epoch while the slice is served."""
        return self.template.reward

    @property
    def penalty_rate_per_mbps(self) -> float:
        """K_tau = m * R / Lambda: cost per Mb/s of unserved SLA traffic."""
        return self.penalty_factor * self.reward / self.sla_mbps

    def compute_cpus(self, carried_mbps: float) -> float:
        """CPU cores the slice's network service needs at ``carried_mbps``."""
        return self.template.compute_cpus(carried_mbps)

    @property
    def compute_baseline_cpus(self) -> float:
        return self.template.compute_baseline_cpus

    @property
    def compute_cpus_per_mbps(self) -> float:
        return self.template.compute_cpus_per_mbps

    def expires_at(self) -> int:
        """First epoch at which the slice is no longer active."""
        return self.arrival_epoch + self.duration_epochs

    def is_active(self, epoch: int) -> bool:
        """True while the slice, if admitted, must be provisioned."""
        return self.arrival_epoch <= epoch < self.expires_at()

    def as_committed(self) -> "SliceRequest":
        """Return a copy marked as already admitted (constraint (13)).

        The metadata dict is copied too: callers annotate the committed copy
        (e.g. the orchestrator pins ``preferred_compute_unit``), and a
        ``dataclasses.replace`` alone would alias the original's dict --
        mutating state that crash-consistent epochs must be able to roll
        back.
        """
        return replace(self, committed=True, metadata=dict(self.metadata))


def make_requests(
    template: SliceTemplate,
    count: int,
    prefix: str | None = None,
    duration_epochs: int = 24,
    penalty_factor: float = 1.0,
    arrival_epoch: int = 0,
) -> list[SliceRequest]:
    """Create ``count`` identical slice requests (the homogeneous scenarios)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    prefix = prefix if prefix is not None else template.name
    return [
        SliceRequest(
            name=f"{prefix}-{i}",
            template=template,
            duration_epochs=duration_epochs,
            penalty_factor=penalty_factor,
            arrival_epoch=arrival_epoch,
        )
        for i in range(count)
    ]
