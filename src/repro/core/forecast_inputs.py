"""Per-tenant forecast inputs consumed by the AC-RR problem.

The Forecasting block (Section 2.2.2) provides, for each tenant, an estimate
``lambda_hat`` of the peak load expected during the next decision epoch and a
normalised uncertainty ``sigma_hat`` in (0, 1].  The AC-RR problem only needs
those two numbers (per tenant), so this small value object decouples the
optimisation layer from the forecasting implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import ensure_in_range, ensure_non_negative

#: Smallest admissible forecast uncertainty; the paper requires sigma_hat > 0.
MIN_SIGMA_HAT = 1e-3
#: Fraction of the SLA that lambda_hat is clamped to, to keep the risk-cost
#: denominator (Lambda - lambda_hat) strictly positive.
MAX_LAMBDA_FRACTION = 0.999


@dataclass(frozen=True)
class ForecastInput:
    """Forecasted peak load and its uncertainty for one tenant."""

    lambda_hat_mbps: float
    sigma_hat: float

    def __post_init__(self) -> None:
        ensure_non_negative(self.lambda_hat_mbps, "lambda_hat_mbps")
        ensure_in_range(self.sigma_hat, 0.0, 1.0, "sigma_hat")

    @classmethod
    def pessimistic(cls, sla_mbps: float) -> "ForecastInput":
        """Forecast used for tenants with no monitoring history yet.

        Assuming the tenant will use its full SLA with maximal uncertainty
        means the orchestrator initially reserves (almost) the full SLA: new
        slices are effectively not overbooked until their load pattern has
        been learnt, which reproduces the behaviour described in Section 5.
        """
        return cls(
            lambda_hat_mbps=sla_mbps * MAX_LAMBDA_FRACTION,
            sigma_hat=1.0,
        )

    def clamped(self, sla_mbps: float) -> "ForecastInput":
        """Clamp the forecast into the range the risk model requires.

        The paper imposes ``lambda_hat <= z <= Lambda``; for the risk cost
        ``(Lambda - z) / (Lambda - lambda_hat)`` to stay well defined the
        forecast must stay strictly below the SLA, and the uncertainty must be
        strictly positive.
        """
        lam = min(self.lambda_hat_mbps, sla_mbps * MAX_LAMBDA_FRACTION)
        lam = max(lam, 0.0)
        sigma = min(max(self.sigma_hat, MIN_SIGMA_HAT), 1.0)
        return ForecastInput(lambda_hat_mbps=lam, sigma_hat=sigma)
