"""The risk-cost function of Section 3.1.

The probability of SLA violation ``Pr[z < lambda]`` is intractable in
general, so the paper substitutes the proxy

    rho(z, sigma_hat, L) = P * xi,
    P  = (Lambda - z) / (Lambda - lambda_hat)      in [0, 1],
    xi = sigma_hat * L                             in (0, L],

where ``P`` measures how aggressively the reservation under-provisions the
SLA relative to the forecast and ``xi`` scales the risk by the forecast
uncertainty and the slice duration.  The expected instantaneous cost of a
slice is then ``K * rho - R``.
"""

from __future__ import annotations

from repro.utils.validation import ensure_positive


def deficit_probability_proxy(
    reservation_mbps: float, lambda_hat_mbps: float, sla_mbps: float
) -> float:
    """The P term: risk of resource deficit due to under-provisioning.

    Equals 1 when the reservation is only the forecast (maximum overbooking)
    and 0 when the full SLA is reserved (no overbooking).  Values outside the
    admissible reservation range are clipped to [0, 1].
    """
    ensure_positive(sla_mbps, "sla_mbps")
    if lambda_hat_mbps >= sla_mbps:
        # No overbooking headroom: any reservation below the SLA is maximal risk.
        return 0.0 if reservation_mbps >= sla_mbps else 1.0
    raw = (sla_mbps - reservation_mbps) / (sla_mbps - lambda_hat_mbps)
    return min(1.0, max(0.0, raw))


def uncertainty_scale(sigma_hat: float, duration_epochs: float) -> float:
    """The xi term: forecast uncertainty scaled by the slice duration."""
    if not 0.0 < sigma_hat <= 1.0:
        raise ValueError(f"sigma_hat must be in (0, 1], got {sigma_hat}")
    ensure_positive(duration_epochs, "duration_epochs")
    return sigma_hat * duration_epochs


def risk_cost(
    reservation_mbps: float,
    lambda_hat_mbps: float,
    sla_mbps: float,
    sigma_hat: float,
    duration_epochs: float,
) -> float:
    """rho(z, sigma_hat, L): the estimated SLA-violation risk of a reservation."""
    p = deficit_probability_proxy(reservation_mbps, lambda_hat_mbps, sla_mbps)
    xi = uncertainty_scale(sigma_hat, duration_epochs)
    return p * xi


def expected_slice_cost(
    reservation_mbps: float,
    lambda_hat_mbps: float,
    sla_mbps: float,
    sigma_hat: float,
    duration_epochs: float,
    reward: float,
    penalty_rate: float,
) -> float:
    """K * rho - R: the slice's contribution to the objective Psi if admitted."""
    rho = risk_cost(
        reservation_mbps, lambda_hat_mbps, sla_mbps, sigma_hat, duration_epochs
    )
    return penalty_rate * rho - reward
