"""The no-overbooking baseline policy of the paper's evaluation.

Section 4.3.2: "we solve the same AC-RR problem but we replace constraint (9)
with ``x Lambda <= z``.  As a result, accepted slices are allocated the amount
of resources agreed in their SLA."  With both (8) and the replacement in
place, every admitted slice reserves exactly its SLA bitrate, the risk term
vanishes and the problem reduces to maximising the admitted reward under full
SLA reservations.  The paper solves this baseline with the optimal method, so
we do too (via the direct HiGHS MILP).
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace

from repro.core.milp_solver import DirectMILPSolver
from repro.core.problem import ACRRProblem
from repro.core.solution import OrchestrationDecision


class NoOverbookingSolver:
    """Optimal admission control with full-SLA reservations (no overbooking)."""

    def __init__(self, time_limit_s: float | None = 120.0):
        self._milp = DirectMILPSolver(time_limit_s=time_limit_s)

    def solve(self, problem: ACRRProblem) -> OrchestrationDecision:
        """Solve the no-overbooking variant of ``problem``.

        The input problem may be configured either way; it is converted to the
        no-overbooking mode (``z = Lambda x``) before solving, so callers can
        hand the exact same instance to this baseline and to the overbooking
        solvers.
        """
        baseline_problem = (
            problem if not problem.options.overbooking else problem.without_overbooking()
        )
        decision = self._milp.solve(baseline_problem)
        decision.stats = dataclass_replace(decision.stats, solver="no-overbooking")
        return decision
