"""Construction of the AC-RR (admission control & resource reservation) problem.

This module turns a topology, a set of slice requests and the per-tenant
forecasts into the mixed-integer linear program of Section 3 (Problem 2):

* one binary variable ``x_{tau,p}`` per (tenant, candidate path) pair,
  deciding whether tenant ``tau`` is served through path ``p``;
* one continuous variable ``z_{tau,p}`` with the bitrate *reserved* for the
  tenant on that path (the overbooking lever: ``lambda_hat <= z <= Lambda``);
* one auxiliary variable ``y_{tau,p} = z_{tau,p} * x_{tau,p}`` introduced by
  the linearisation (constraints (10)-(12)).

The objective is the linearised expected cost

    Psi(x, y) = sum_i [ (Lambda_i xi_i K_i / (Lambda_i - lambda_hat_i)) - R_i ] x_i
                - [ xi_i K_i / (Lambda_i - lambda_hat_i) ] y_i

subject to the capacity constraints (2)-(4), the path-selection constraints
(5)-(7) and the coupling constraints (8)-(12).  Three modelling choices are
worth calling out (all documented in DESIGN.md):

* **Delay constraint (7)** is enforced by *filtering* the candidate paths of
  each tenant to those with ``D_p <= Delta_tau``; together with the
  at-most-one-path constraint (5) this is exactly equivalent to the explicit
  linear constraint and keeps the problem smaller.
* **Per-path reward/penalty.**  The paper's objective sums the reward over
  every (tenant, path) pair, but its evaluation counts the reward *once per
  admitted tenant* (an admitted tenant holds exactly one path per base
  station).  We therefore spread the tenant reward and penalty uniformly over
  the base stations (``R_p = R / B``), which makes the MILP objective equal to
  the per-tenant accounting used in the evaluation.
* **Constraint (6)** ("an admitted slice gets a slice of every BS, all
  anchored at the same CU") is implemented as per-CU equality chains between
  consecutive base stations, which is equivalent to the paper's all-pairs
  formulation with O(B) instead of O(B^2) rows.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace

import numpy as np
from scipy import sparse

from repro.core.forecast_inputs import ForecastInput
from repro.core.risk import deficit_probability_proxy
from repro.core.slices import SliceRequest
from repro.topology.network import NetworkTopology
from repro.topology.paths import Path, PathSet


@dataclass(frozen=True)
class ProblemOptions:
    """Knobs controlling how the AC-RR MILP is built.

    Attributes
    ----------
    overbooking:
        When False the problem becomes the *no-overbooking* baseline of the
        evaluation: reservations are pinned to the full SLA (``z = Lambda x``)
        and the risk term disappears from the objective.
    allow_deficit:
        Adds the per-domain deficit variables of Section 3.4 (big-M
        relaxation), which keep the problem feasible when previously admitted
        slices no longer fit.
    deficit_cost:
        The big-M cost of one unit of resource deficit.
    max_paths_per_tenant_pair:
        Optional cap on the number of candidate paths considered per
        (tenant, BS, CU) triple after delay filtering; keeps large instances
        tractable.
    epochs_per_day:
        Number of decision epochs per seasonal cycle (day).  The risk scaling
        factor of the paper is ``xi = sigma_hat * L`` with the slice duration
        ``L`` measured in seasonal cycles, so a one-day slice has ``xi =
        sigma_hat`` and longer commitments are proportionally riskier.
    """

    overbooking: bool = True
    allow_deficit: bool = False
    deficit_cost: float = 1.0e4
    max_paths_per_tenant_pair: int | None = None
    epochs_per_day: int = 24

    def without_overbooking(self) -> "ProblemOptions":
        return replace(self, overbooking=False)


@dataclass(frozen=True)
class ProblemItem:
    """One (tenant, candidate path) pair, i.e. one column of the MILP."""

    index: int
    tenant_index: int
    tenant: SliceRequest
    path: Path
    sla_mbps: float
    lambda_hat_mbps: float
    sigma_hat: float
    xi: float
    reward_per_path: float
    penalty_rate_per_path: float
    compute_baseline_cpus: float
    compute_cpus_per_mbps: float
    radio_mhz_per_mbps: float
    transport_overhead: float

    @property
    def risk_slope(self) -> float:
        """xi * K / (Lambda - lambda_hat): marginal risk per Mb/s of under-provisioning."""
        headroom = self.sla_mbps - self.lambda_hat_mbps
        return self.xi * self.penalty_rate_per_path / headroom


class InfeasibleProblemError(RuntimeError):
    """Raised when the AC-RR instance has no feasible solution."""


def _request_structure_key(request: SliceRequest) -> tuple:
    """The fields of a request that shape the MILP structure.

    Metadata is excluded on purpose: it only steers heuristics (e.g. the
    KAC compute-unit preference), never the constraint matrices.
    """
    return (
        request.name,
        request.template,
        request.duration_epochs,
        request.penalty_factor,
        request.arrival_epoch,
        request.committed,
    )


def _structure_signature(requests: list[SliceRequest], options: "ProblemOptions") -> tuple:
    """Everything that shapes the items and constraint sparsity."""
    return (
        tuple(_request_structure_key(request) for request in requests),
        options,
    )


def _normalized_forecasts(
    requests: list[SliceRequest], forecasts: dict[str, ForecastInput]
) -> dict[str, ForecastInput]:
    """Per-request forecasts with the pessimistic fallback and clamping."""
    return {
        request.name: forecasts.get(
            request.name, ForecastInput.pessimistic(request.sla_mbps)
        ).clamped(request.sla_mbps)
        for request in requests
    }


def topology_signature(topology: NetworkTopology) -> tuple:
    """Content signature of everything the AC-RR problem reads off a topology.

    The structure/decision caches key topologies by identity for speed, but
    topologies are mutable (``add_base_station`` etc.); this cheap snapshot
    of the element names and capacities catches in-place mutation between
    epochs so a stale skeleton or decision is never reused.
    """
    capacities = topology.capacities()
    return (
        tuple(sorted(capacities.radio_mhz.items())),
        tuple(sorted(capacities.transport_mbps.items())),
        tuple(sorted(capacities.compute_cpus.items())),
    )


@dataclass
class _ConstraintBlock:
    """A block of sparse linear constraints ``lb <= A_x x + A_z z + A_y y <= ub``."""

    a_x: sparse.csr_matrix
    a_z: sparse.csr_matrix
    a_y: sparse.csr_matrix
    lower: np.ndarray
    upper: np.ndarray
    labels: list[str] = field(default_factory=list)

    @property
    def num_rows(self) -> int:
        return self.a_x.shape[0]


@dataclass(frozen=True)
class ResourceBlock:
    """One tenant's slice of the slave LP, for multi-cut disaggregation.

    ``item_indices`` are the tenant's columns (ascending), ``capacity_rows``
    the capacity rows those items touch (ascending).  Blocks share capacity
    rows: each block sees every shared row restricted to its own columns
    with the *full* right-hand side, which is a relaxation (the dropped
    terms are non-negative), so per-block costs always underestimate the
    joint slave cost -- the property the multi-cut master relies on.
    """

    index: int
    tenant_index: int
    item_indices: tuple[int, ...]
    capacity_rows: tuple[int, ...]


def _csr(rows: list[int], cols: list[int], values: list[float], shape: tuple[int, int]) -> sparse.csr_matrix:
    return sparse.csr_matrix(
        (np.asarray(values, dtype=float), (np.asarray(rows, dtype=int), np.asarray(cols, dtype=int))),
        shape=shape,
    )


class ACRRProblem:
    """One instance of the AC-RR problem for a single decision epoch."""

    def __init__(
        self,
        topology: NetworkTopology,
        path_set: PathSet,
        requests: list[SliceRequest],
        forecasts: dict[str, ForecastInput],
        options: ProblemOptions | None = None,
    ):
        if not requests:
            raise ValueError("the AC-RR problem needs at least one slice request")
        names = [request.name for request in requests]
        if len(set(names)) != len(names):
            raise ValueError("slice request names must be unique")
        self.topology = topology
        self.path_set = path_set
        self.requests = list(requests)
        self.options = options or ProblemOptions()
        self._forecasts = _normalized_forecasts(self.requests, forecasts)
        self._base_station_names = topology.base_station_names
        self._compute_unit_names = topology.compute_unit_names
        self._link_keys = [link.key for link in topology.links]
        self._capacities = topology.capacities()
        self.items: list[ProblemItem] = []
        self._build_items()
        self._index_items()
        self._block_cache: dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # Item construction
    # ------------------------------------------------------------------ #
    def _admissible_paths(self, request: SliceRequest) -> list[Path]:
        """Candidate paths of one tenant after delay filtering (constraint (7))."""
        admissible: list[Path] = []
        for (bs, cu), paths in self.path_set.items():
            eligible = [p for p in paths if p.delay_ms <= request.latency_tolerance_ms]
            cap = self.options.max_paths_per_tenant_pair
            if cap is not None:
                eligible = eligible[:cap]
            admissible.extend(eligible)
        return admissible

    def _forecast_item_fields(
        self, request: SliceRequest, forecast: ForecastInput
    ) -> dict[str, float]:
        """The :class:`ProblemItem` fields that depend on the forecast.

        Shared by the cold build and :meth:`with_forecasts` so the two can
        never derive the item risk inputs differently.
        """
        duration_days = request.duration_epochs / self.options.epochs_per_day
        return {
            "lambda_hat_mbps": forecast.lambda_hat_mbps,
            "sigma_hat": forecast.sigma_hat,
            "xi": forecast.sigma_hat * duration_days,
        }

    def _build_items(self) -> None:
        index = 0
        for tenant_index, request in enumerate(self.requests):
            forecast = self._forecasts[request.name]
            num_bs = max(1, len(self._base_station_names))
            reward_per_path = request.reward / num_bs
            penalty_per_path = request.penalty_rate_per_mbps / num_bs
            forecast_fields = self._forecast_item_fields(request, forecast)
            for path in self._admissible_paths(request):
                bs = self.topology.base_station(path.base_station)
                overhead = max((link.overhead for link in path.links), default=1.0)
                self.items.append(
                    ProblemItem(
                        index=index,
                        tenant_index=tenant_index,
                        tenant=request,
                        path=path,
                        sla_mbps=request.sla_mbps,
                        **forecast_fields,
                        reward_per_path=reward_per_path,
                        penalty_rate_per_path=penalty_per_path,
                        compute_baseline_cpus=request.compute_baseline_cpus,
                        compute_cpus_per_mbps=request.compute_cpus_per_mbps,
                        radio_mhz_per_mbps=bs.mhz_for_bitrate(1.0),
                        transport_overhead=overhead,
                    )
                )
                index += 1
        if not self.items:
            raise InfeasibleProblemError(
                "no admissible (tenant, path) pair: every candidate path violates "
                "the latency tolerances of every request"
            )

    def _index_items(self) -> None:
        self._items_by_cu: dict[str, list[int]] = {cu: [] for cu in self._compute_unit_names}
        self._items_by_bs: dict[str, list[int]] = {bs: [] for bs in self._base_station_names}
        self._items_by_link: dict[tuple[str, str], list[int]] = {
            key: [] for key in self._link_keys
        }
        self._items_by_tenant_bs: dict[tuple[int, str], list[int]] = {}
        self._items_by_tenant_cu_bs: dict[tuple[int, str, str], list[int]] = {}
        self._items_by_tenant: dict[int, list[int]] = {
            t: [] for t in range(len(self.requests))
        }
        for item in self.items:
            self._items_by_cu[item.path.compute_unit].append(item.index)
            self._items_by_bs[item.path.base_station].append(item.index)
            for link in item.path.links:
                self._items_by_link[link.key].append(item.index)
            self._items_by_tenant_bs.setdefault(
                (item.tenant_index, item.path.base_station), []
            ).append(item.index)
            self._items_by_tenant_cu_bs.setdefault(
                (item.tenant_index, item.path.compute_unit, item.path.base_station), []
            ).append(item.index)
            self._items_by_tenant[item.tenant_index].append(item.index)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_items(self) -> int:
        return len(self.items)

    @property
    def num_tenants(self) -> int:
        return len(self.requests)

    @property
    def base_station_names(self) -> list[str]:
        return list(self._base_station_names)

    @property
    def compute_unit_names(self) -> list[str]:
        return list(self._compute_unit_names)

    def forecast(self, tenant_name: str) -> ForecastInput:
        return self._forecasts[tenant_name]

    def items_of_tenant(self, tenant_index: int) -> list[ProblemItem]:
        return [self.items[i] for i in self._items_by_tenant[tenant_index]]

    def tenant_index(self, name: str) -> int:
        for index, request in enumerate(self.requests):
            if request.name == name:
                return index
        raise KeyError(f"unknown tenant {name!r}")

    def without_overbooking(self) -> "ACRRProblem":
        """A copy of this instance configured as the no-overbooking baseline."""
        return ACRRProblem(
            topology=self.topology,
            path_set=self.path_set,
            requests=self.requests,
            forecasts={name: fc for name, fc in self._forecasts.items()},
            options=self.options.without_overbooking(),
        )

    # ------------------------------------------------------------------ #
    # Structure reuse (see DESIGN.md, "Control-plane structure cache")
    # ------------------------------------------------------------------ #
    def structure_signature(self) -> tuple:
        """Hashable key of everything that shapes the items and constraint
        sparsity: the request set (names, templates, durations, penalties,
        arrival epochs, committed flags) and the problem options.  Forecasts
        are deliberately excluded -- two problems with equal signatures built
        against the same topology and path set share their skeleton.  The
        tuple is memoized per instance."""
        return self._cached(
            "signature", lambda: _structure_signature(self.requests, self.options)
        )

    def warm_start_signature(self) -> tuple:
        """Like :meth:`structure_signature`, minus the arrival epochs.

        Arrival epochs never enter the MILP matrices -- they only matter for
        release timing -- so two instances that differ *only* in arrivals
        (e.g. a renewed slice) pose byte-identical solver systems.  The
        cross-epoch warm-start layer keys its cut pool on this signature so
        renewals inherit the cuts of their previous life; see
        :func:`repro.core.benders.warm_start_key`.  Memoized per instance.
        """
        return self._cached(
            "warm_signature",
            lambda: (
                tuple(
                    (
                        request.name,
                        request.template,
                        request.duration_epochs,
                        request.penalty_factor,
                        request.committed,
                    )
                    for request in self.requests
                ),
                self.options,
            ),
        )

    def with_forecasts(
        self,
        requests: list[SliceRequest],
        forecasts: dict[str, ForecastInput],
    ) -> "ACRRProblem":
        """Clone this problem's skeleton with new forecast inputs.

        ``requests`` must be structurally identical to this instance's (same
        :func:`structure_signature`); the freshly supplied objects are swapped
        in so request metadata (e.g. the preferred compute unit recorded by
        the orchestrator) stays current.  Items are re-derived by rewriting
        only the forecast-dependent fields; the item indices and the
        forecast-independent capacity/selection constraint blocks are shared
        with this instance, so cached and cold builds yield identical
        matrices.
        """
        expected = [_request_structure_key(r) for r in self.requests]
        provided = [_request_structure_key(r) for r in requests]
        if expected != provided:
            raise ValueError(
                "with_forecasts requires a structurally identical request set"
            )
        # Shallow copy: every structural attribute (topology, path set,
        # capacities, item indices, ...) is shared automatically, including
        # any attribute added to __init__ in the future.
        clone = copy.copy(self)
        clone.requests = list(requests)
        clone._forecasts = _normalized_forecasts(clone.requests, forecasts)
        clone.items = []
        for item in self.items:
            request = requests[item.tenant_index]
            forecast = clone._forecasts[request.name]
            clone.items.append(
                replace(
                    item,
                    tenant=request,
                    **clone._forecast_item_fields(request, forecast),
                )
            )
        # Capacity and selection constraints (and the structure signature)
        # do not depend on forecasts; the coupling block and the objective
        # vectors do, so those rebuild lazily on the clone.
        clone._block_cache = {
            key: value
            for key, value in self._block_cache.items()
            if key
            in (
                "capacity",
                "selection",
                "signature",
                "warm_signature",
                "contendable",
                "resource_blocks",
                "tenant_partition",
            )
        }
        return clone

    def _cached(self, key: str, build):
        value = self._block_cache.get(key)
        if value is None:
            value = build()
            self._block_cache[key] = value
        return value

    # ------------------------------------------------------------------ #
    # Objective
    # ------------------------------------------------------------------ #
    def objective_x(self) -> np.ndarray:
        """Coefficients of x in the (minimised) linearised objective Psi.

        The returned array is cached on the instance; treat it as read-only.
        """
        return self._cached("objective_x", self._build_objective_x)

    def _build_objective_x(self) -> np.ndarray:
        coeffs = np.zeros(self.num_items)
        for item in self.items:
            if self.options.overbooking:
                coeffs[item.index] = (
                    item.sla_mbps * item.risk_slope - item.reward_per_path
                )
            else:
                coeffs[item.index] = -item.reward_per_path
        return coeffs

    def objective_y(self) -> np.ndarray:
        """Coefficients of y in the (minimised) linearised objective Psi.

        The returned array is cached on the instance; treat it as read-only.
        """
        return self._cached("objective_y", self._build_objective_y)

    def _build_objective_y(self) -> np.ndarray:
        coeffs = np.zeros(self.num_items)
        if not self.options.overbooking:
            return coeffs
        for item in self.items:
            coeffs[item.index] = -item.risk_slope
        return coeffs

    def evaluate_objective(self, x: np.ndarray, z: np.ndarray) -> float:
        """Evaluate the original (non-linearised) objective Psi(x, z)."""
        x = np.asarray(x, dtype=float)
        z = np.asarray(z, dtype=float)
        total = 0.0
        for item in self.items:
            if x[item.index] < 0.5:
                continue
            if self.options.overbooking:
                rho = item.xi * deficit_probability_proxy(
                    reservation_mbps=z[item.index],
                    lambda_hat_mbps=item.lambda_hat_mbps,
                    sla_mbps=item.sla_mbps,
                )
                total += item.penalty_rate_per_path * rho - item.reward_per_path
            else:
                total += -item.reward_per_path
        return total

    # ------------------------------------------------------------------ #
    # Constraint blocks
    # ------------------------------------------------------------------ #
    def capacity_block(self) -> _ConstraintBlock:
        """Capacity constraints (2)-(4): one row per CU, link and BS."""
        return self._cached("capacity", self._build_capacity_block)

    def _build_capacity_block(self) -> _ConstraintBlock:
        n = self.num_items
        rows_x: list[int] = []
        cols_x: list[int] = []
        vals_x: list[float] = []
        rows_z: list[int] = []
        cols_z: list[int] = []
        vals_z: list[float] = []
        upper: list[float] = []
        labels: list[str] = []
        row = 0
        for cu in self._compute_unit_names:
            for i in self._items_by_cu[cu]:
                item = self.items[i]
                if item.compute_baseline_cpus:
                    rows_x.append(row)
                    cols_x.append(i)
                    vals_x.append(item.compute_baseline_cpus)
                if item.compute_cpus_per_mbps:
                    rows_z.append(row)
                    cols_z.append(i)
                    vals_z.append(item.compute_cpus_per_mbps)
            upper.append(self._capacities.compute_cpus[cu])
            labels.append(f"compute:{cu}")
            row += 1
        for key in self._link_keys:
            for i in self._items_by_link[key]:
                item = self.items[i]
                rows_z.append(row)
                cols_z.append(i)
                vals_z.append(item.transport_overhead)
            upper.append(self._capacities.transport_mbps[key])
            labels.append(f"transport:{key[0]}--{key[1]}")
            row += 1
        for bs in self._base_station_names:
            for i in self._items_by_bs[bs]:
                item = self.items[i]
                rows_z.append(row)
                cols_z.append(i)
                vals_z.append(item.radio_mhz_per_mbps)
            upper.append(self._capacities.radio_mhz[bs])
            labels.append(f"radio:{bs}")
            row += 1
        num_rows = row
        return _ConstraintBlock(
            a_x=_csr(rows_x, cols_x, vals_x, (num_rows, n)),
            a_z=_csr(rows_z, cols_z, vals_z, (num_rows, n)),
            a_y=_csr([], [], [], (num_rows, n)),
            lower=np.full(num_rows, -np.inf),
            upper=np.asarray(upper, dtype=float),
            labels=labels,
        )

    def deficit_domains(self) -> list[str]:
        """Domain of each capacity row ('compute', 'transport' or 'radio').

        Used to attach the per-domain deficit variables of Section 3.4 to the
        right capacity rows.
        """
        domains: list[str] = []
        domains.extend("compute" for _ in self._compute_unit_names)
        domains.extend("transport" for _ in self._link_keys)
        domains.extend("radio" for _ in self._base_station_names)
        return domains

    def selection_block(self) -> _ConstraintBlock:
        """Path-selection constraints (5), (6) and (13), on x only."""
        return self._cached("selection", self._build_selection_block)

    def _build_selection_block(self) -> _ConstraintBlock:
        n = self.num_items
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        lower: list[float] = []
        upper: list[float] = []
        labels: list[str] = []
        row = 0

        # (5) + (13): at most one path per (tenant, BS); exactly one for
        # committed tenants (they must stay admitted).
        for tenant_index, request in enumerate(self.requests):
            for bs in self._base_station_names:
                indices = self._items_by_tenant_bs.get((tenant_index, bs), [])
                if not indices:
                    if request.committed:
                        raise InfeasibleProblemError(
                            f"committed slice {request.name!r} has no admissible path "
                            f"from base station {bs!r}"
                        )
                    continue
                for i in indices:
                    rows.append(row)
                    cols.append(i)
                    vals.append(1.0)
                lower.append(1.0 if request.committed else 0.0)
                upper.append(1.0)
                labels.append(f"select:{request.name}:{bs}")
                row += 1

        # (6): per (tenant, CU), the number of selected paths must be equal at
        # every base station (chain of equalities over consecutive BSs).
        for tenant_index, request in enumerate(self.requests):
            for cu in self._compute_unit_names:
                per_bs = [
                    self._items_by_tenant_cu_bs.get((tenant_index, cu, bs), [])
                    for bs in self._base_station_names
                ]
                for first, second, bs_first, bs_second in zip(
                    per_bs, per_bs[1:], self._base_station_names, self._base_station_names[1:]
                ):
                    if not first and not second:
                        continue
                    for i in first:
                        rows.append(row)
                        cols.append(i)
                        vals.append(1.0)
                    for i in second:
                        rows.append(row)
                        cols.append(i)
                        vals.append(-1.0)
                    lower.append(0.0)
                    upper.append(0.0)
                    labels.append(f"same-cu:{request.name}:{cu}:{bs_first}~{bs_second}")
                    row += 1

        return _ConstraintBlock(
            a_x=_csr(rows, cols, vals, (row, n)),
            a_z=_csr([], [], [], (row, n)),
            a_y=_csr([], [], [], (row, n)),
            lower=np.asarray(lower, dtype=float),
            upper=np.asarray(upper, dtype=float),
            labels=labels,
        )

    def coupling_block(self) -> _ConstraintBlock:
        """Coupling constraints (8)-(12) linking x, z and y."""
        return self._cached("coupling", self._build_coupling_block)

    def _build_coupling_block(self) -> _ConstraintBlock:
        n = self.num_items
        rows_x: list[int] = []
        cols_x: list[int] = []
        vals_x: list[float] = []
        rows_z: list[int] = []
        cols_z: list[int] = []
        vals_z: list[float] = []
        rows_y: list[int] = []
        cols_y: list[int] = []
        vals_y: list[float] = []
        upper: list[float] = []
        labels: list[str] = []
        row = 0

        def add(
            x_coeff: float | None,
            z_coeff: float | None,
            y_coeff: float | None,
            item_index: int,
            ub: float,
            label: str,
        ) -> None:
            nonlocal row
            if x_coeff:
                rows_x.append(row)
                cols_x.append(item_index)
                vals_x.append(x_coeff)
            if z_coeff:
                rows_z.append(row)
                cols_z.append(item_index)
                vals_z.append(z_coeff)
            if y_coeff:
                rows_y.append(row)
                cols_y.append(item_index)
                vals_y.append(y_coeff)
            upper.append(ub)
            labels.append(label)
            row += 1

        for item in self.items:
            i = item.index
            lam = item.sla_mbps
            floor = item.lambda_hat_mbps if self.options.overbooking else item.sla_mbps
            # (8)  z <= Lambda x
            add(-lam, 1.0, None, i, 0.0, f"z-le-sla:{i}")
            # (9)  lambda_hat x <= z   (or Lambda x <= z without overbooking)
            add(floor, -1.0, None, i, 0.0, f"z-ge-floor:{i}")
            # (10) y <= Lambda x
            add(-lam, None, 1.0, i, 0.0, f"y-le-slax:{i}")
            # (11) y <= z
            add(None, -1.0, 1.0, i, 0.0, f"y-le-z:{i}")
            # (12) z + Lambda x - y <= Lambda
            add(lam, 1.0, -1.0, i, lam, f"y-ge-bilinear:{i}")

        num_rows = row
        return _ConstraintBlock(
            a_x=_csr(rows_x, cols_x, vals_x, (num_rows, n)),
            a_z=_csr(rows_z, cols_z, vals_z, (num_rows, n)),
            a_y=_csr(rows_y, cols_y, vals_y, (num_rows, n)),
            lower=np.full(num_rows, -np.inf),
            upper=np.asarray(upper, dtype=float),
            labels=labels,
        )

    # ------------------------------------------------------------------ #
    # Reservation bounds helper
    # ------------------------------------------------------------------ #
    def reservation_bounds(self, accepted: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Lower/upper bounds on z for a *fixed* admission vector.

        Admitted items must reserve between the forecast and the SLA (or
        exactly the SLA without overbooking); rejected items reserve nothing.
        """
        accepted = np.asarray(accepted, dtype=float)
        lower = np.zeros(self.num_items)
        upper = np.zeros(self.num_items)
        for item in self.items:
            if accepted[item.index] > 0.5:
                floor = (
                    item.lambda_hat_mbps if self.options.overbooking else item.sla_mbps
                )
                lower[item.index] = floor
                upper[item.index] = item.sla_mbps
        return lower, upper

    # ------------------------------------------------------------------ #
    # Block structure (multi-cut disaggregation, batch partitioning)
    # ------------------------------------------------------------------ #
    def contendable_capacity_rows(self) -> np.ndarray:
        """Boolean mask over capacity rows that could possibly bind.

        A row whose worst-case load -- every candidate item admitted and
        reserving its full SLA -- still fits the capacity can never be
        active in any feasible solution, so it exerts no coupling between
        tenants.  The mask depends only on structure and SLAs (not on
        forecasts), so it is cached across :meth:`with_forecasts` clones.
        """
        return self._cached("contendable", self._build_contendable_rows)

    def _build_contendable_rows(self) -> np.ndarray:
        capacity = self.capacity_block()
        sla = np.array([item.sla_mbps for item in self.items], dtype=float)
        worst = capacity.a_x @ np.ones(self.num_items) + capacity.a_z @ sla
        slack = 1e-9 * np.maximum(1.0, np.abs(capacity.upper))
        return np.asarray(worst > capacity.upper + slack)

    def resource_blocks(self) -> list[ResourceBlock]:
        """Per-tenant slave blocks, in tenant order (deterministic).

        Each block owns the tenant's items and records the capacity rows
        they touch; the coupling rows of an item belong to its block by
        construction.  Used by the multi-cut Benders slave
        (:mod:`repro.core.decomposition`) to price blocks independently.
        """
        return self._cached("resource_blocks", self._build_resource_blocks)

    def _build_resource_blocks(self) -> list[ResourceBlock]:
        capacity = self.capacity_block()
        touched = (
            capacity.a_x.astype(bool) + capacity.a_z.astype(bool)
        ).tocsc()
        blocks: list[ResourceBlock] = []
        for tenant in range(self.num_tenants):
            item_indices = tuple(self._items_by_tenant[tenant])
            rows: set[int] = set()
            for i in item_indices:
                start, stop = touched.indptr[i], touched.indptr[i + 1]
                rows.update(int(r) for r in touched.indices[start:stop])
            blocks.append(
                ResourceBlock(
                    index=tenant,
                    tenant_index=tenant,
                    item_indices=item_indices,
                    capacity_rows=tuple(sorted(rows)),
                )
            )
        return blocks

    def tenant_partition(self) -> list[tuple[int, ...]]:
        """Partition tenants into groups no *contendable* capacity row couples.

        Two tenants end up in the same group iff they are connected through
        capacity rows that could actually bind (see
        :meth:`contendable_capacity_rows`).  Groups are exact: solving each
        group's sub-problem independently and concatenating the decisions
        yields a joint optimum, because every cross-group row has enough
        capacity for the worst case on both sides.  Deterministic: groups
        ordered by smallest tenant index, tenants ascending within a group.
        """
        return self._cached("tenant_partition", self._build_tenant_partition)

    def _build_tenant_partition(self) -> list[tuple[int, ...]]:
        parent = list(range(self.num_tenants))

        def find(a: int) -> int:
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)

        capacity = self.capacity_block()
        touched = (
            capacity.a_x.astype(bool) + capacity.a_z.astype(bool)
        ).tocsr()
        for row in np.flatnonzero(self.contendable_capacity_rows()):
            start, stop = touched.indptr[row], touched.indptr[row + 1]
            tenants = sorted(
                {self.items[int(c)].tenant_index for c in touched.indices[start:stop]}
            )
            for other in tenants[1:]:
                union(tenants[0], other)

        groups: dict[int, list[int]] = {}
        for tenant in range(self.num_tenants):
            groups.setdefault(find(tenant), []).append(tenant)
        return [tuple(groups[root]) for root in sorted(groups)]


class ProblemStructureCache:
    """Epoch-over-epoch reuse of the :class:`ACRRProblem` skeleton.

    The orchestrator rebuilds the AC-RR problem every decision epoch, but in
    steady state only the forecasts change: the active request set, the path
    set and the options stay put for many consecutive epochs.  This cache
    compares the structural signature of the incoming build request against
    the previously built problem (topology and path set by identity, requests
    and options by value) and, on a hit, clones the skeleton via
    :meth:`ACRRProblem.with_forecasts` instead of re-running path filtering,
    item construction and constraint-block assembly from scratch.
    """

    def __init__(self) -> None:
        self._problem: ACRRProblem | None = None
        self._topology_signature: tuple | None = None
        self.hits = 0
        self.misses = 0

    def build(
        self,
        topology: NetworkTopology,
        path_set: PathSet,
        requests: list[SliceRequest],
        forecasts: dict[str, ForecastInput],
        options: ProblemOptions | None = None,
        topo_signature: tuple | None = None,
    ) -> ACRRProblem:
        """Build (or rebind) the AC-RR problem for one epoch.

        ``topo_signature`` lets the caller pass an already-computed
        :func:`topology_signature` so it is not derived twice per epoch.
        """
        options = options or ProblemOptions()
        signature = _structure_signature(requests, options)
        if topo_signature is None:
            topo_signature = topology_signature(topology)
        cached = self._problem
        if (
            cached is not None
            and cached.topology is topology
            and cached.path_set is path_set
            and self._topology_signature == topo_signature
            and cached.structure_signature() == signature
        ):
            self.hits += 1
            problem = cached.with_forecasts(requests, forecasts)
        else:
            self.misses += 1
            problem = ACRRProblem(
                topology=topology,
                path_set=path_set,
                requests=requests,
                forecasts=forecasts,
                options=options,
            )
        self._problem = problem
        self._topology_signature = topo_signature
        return problem

    def invalidate(self) -> None:
        self._problem = None
        self._topology_signature = None

    def snapshot(self) -> tuple:
        """Capture the cache for epoch-level rollback (problems are never
        mutated once built, so references suffice)."""
        return (self._problem, self._topology_signature, self.hits, self.misses)

    def restore(self, snapshot: tuple) -> None:
        self._problem, self._topology_signature, self.hits, self.misses = snapshot
