"""Orchestration decisions: the output of the AC-RR solvers.

An :class:`OrchestrationDecision` records, for one decision epoch, which
tenants were admitted, which compute unit anchors each admitted slice, which
path serves it from every base station, and the bitrate reserved on each of
those paths.  It also derives the per-domain reservations that the domain
controllers enforce (PRB shares, transport-link bandwidth, CPU cores), which
is what Fig. 8(b)-(d) plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import ACRRProblem
from repro.core.slices import SliceRequest
from repro.topology.paths import Path


@dataclass(frozen=True)
class SolverStats:
    """Diagnostics describing how a solver produced a decision."""

    solver: str
    iterations: int = 0
    runtime_s: float = 0.0
    optimal: bool = True
    gap: float = 0.0
    cuts_optimality: int = 0
    cuts_feasibility: int = 0
    #: Stored warm-start cuts backing this solve (seeded into the master,
    #: or vouching for a replayed identical instance); 0 on cold solves.
    cuts_warm: int = 0
    message: str = ""
    #: Safeguard-chain tier that produced this decision ("primary" when the
    #: normal solver succeeded; see repro.faults.safeguard for the others).
    tier: str = "primary"
    #: Transient-failure retries the safeguard chain spent before success.
    retries: int = 0
    #: Why the chain fell past the primary tier ("" on a clean solve).
    fallback_reason: str = ""
    #: True when the solver stopped on its wall-clock budget before closing
    #: the optimality gap: the decision is the best incumbent, not a
    #: certificate (the warm pool already withholds its replay token).
    time_truncated: bool = False


@dataclass(frozen=True)
class TenantAllocation:
    """Admission outcome of one tenant in one epoch."""

    request: SliceRequest
    accepted: bool
    compute_unit: str | None
    # One path and one bitrate reservation per base station (Mb/s).
    paths: dict[str, Path] = field(default_factory=dict)
    reservations_mbps: dict[str, float] = field(default_factory=dict)

    @property
    def total_reserved_mbps(self) -> float:
        return float(sum(self.reservations_mbps.values()))

    @property
    def reserved_cpus(self) -> float:
        """CPU cores reserved at the anchoring compute unit for this tenant."""
        if not self.accepted:
            return 0.0
        total = 0.0
        for mbps in self.reservations_mbps.values():
            total += self.request.compute_baseline_cpus
            total += self.request.compute_cpus_per_mbps * mbps
        return total


@dataclass
class OrchestrationDecision:
    """Admission + reservation decision for one decision epoch."""

    allocations: dict[str, TenantAllocation]
    objective_value: float
    stats: SolverStats
    deficits: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Admission summary
    # ------------------------------------------------------------------ #
    @property
    def accepted_tenants(self) -> list[str]:
        return [name for name, alloc in self.allocations.items() if alloc.accepted]

    @property
    def rejected_tenants(self) -> list[str]:
        return [name for name, alloc in self.allocations.items() if not alloc.accepted]

    @property
    def num_accepted(self) -> int:
        return len(self.accepted_tenants)

    def is_accepted(self, tenant_name: str) -> bool:
        allocation = self.allocations.get(tenant_name)
        return bool(allocation and allocation.accepted)

    def allocation(self, tenant_name: str) -> TenantAllocation:
        return self.allocations[tenant_name]

    @property
    def expected_reward(self) -> float:
        """Total admission reward of the accepted tenants (per epoch)."""
        return float(
            sum(a.request.reward for a in self.allocations.values() if a.accepted)
        )

    @property
    def expected_net_reward(self) -> float:
        """Negative of the optimisation objective: reward minus estimated risk."""
        return -self.objective_value

    @property
    def total_deficit(self) -> float:
        return float(sum(self.deficits.values()))

    # ------------------------------------------------------------------ #
    # Per-domain reservations (what the controllers enforce)
    # ------------------------------------------------------------------ #
    def radio_reservations_mhz(self, problem: ACRRProblem) -> dict[str, dict[str, float]]:
        """Per base station, per tenant: reserved spectrum in MHz."""
        reservations: dict[str, dict[str, float]] = {
            bs: {} for bs in problem.base_station_names
        }
        for name, alloc in self.allocations.items():
            if not alloc.accepted:
                continue
            for bs, mbps in alloc.reservations_mbps.items():
                bs_obj = problem.topology.base_station(bs)
                reservations[bs][name] = bs_obj.mhz_for_bitrate(mbps)
        return reservations

    def transport_reservations_mbps(
        self, problem: ACRRProblem
    ) -> dict[tuple[str, str], dict[str, float]]:
        """Per transport link, per tenant: reserved bandwidth in Mb/s."""
        reservations: dict[tuple[str, str], dict[str, float]] = {
            link.key: {} for link in problem.topology.links
        }
        for name, alloc in self.allocations.items():
            if not alloc.accepted:
                continue
            for bs, path in alloc.paths.items():
                mbps = alloc.reservations_mbps.get(bs, 0.0)
                for link in path.links:
                    reservations[link.key][name] = (
                        reservations[link.key].get(name, 0.0) + mbps * link.overhead
                    )
        return reservations

    def compute_reservations_cpus(self, problem: ACRRProblem) -> dict[str, dict[str, float]]:
        """Per compute unit, per tenant: reserved CPU cores."""
        reservations: dict[str, dict[str, float]] = {
            cu: {} for cu in problem.compute_unit_names
        }
        for name, alloc in self.allocations.items():
            if not alloc.accepted or alloc.compute_unit is None:
                continue
            reservations[alloc.compute_unit][name] = alloc.reserved_cpus
        return reservations

    def summary(self) -> dict[str, float]:
        return {
            "accepted": float(self.num_accepted),
            "rejected": float(len(self.rejected_tenants)),
            "expected_reward": self.expected_reward,
            "objective": self.objective_value,
            "total_deficit": self.total_deficit,
        }


def decision_from_vectors(
    problem: ACRRProblem,
    x: np.ndarray,
    z: np.ndarray,
    stats: SolverStats,
    deficits: dict[str, float] | None = None,
) -> OrchestrationDecision:
    """Assemble an :class:`OrchestrationDecision` from raw solver vectors.

    A tenant counts as accepted when it holds a path (x = 1) at *every* base
    station that can reach its anchoring compute unit, which is what
    constraints (5)-(6) enforce; the helper simply reads the vectors back.
    """
    x = np.asarray(x, dtype=float)
    z = np.asarray(z, dtype=float)
    allocations: dict[str, TenantAllocation] = {}
    for tenant_index, request in enumerate(problem.requests):
        paths: dict[str, Path] = {}
        reservations: dict[str, float] = {}
        compute_unit: str | None = None
        for item in problem.items_of_tenant(tenant_index):
            if x[item.index] > 0.5:
                paths[item.path.base_station] = item.path
                reservations[item.path.base_station] = float(z[item.index])
                compute_unit = item.path.compute_unit
        accepted = bool(paths)
        allocations[request.name] = TenantAllocation(
            request=request,
            accepted=accepted,
            compute_unit=compute_unit if accepted else None,
            paths=paths,
            reservations_mbps=reservations,
        )
    objective = problem.evaluate_objective(x, z)
    return OrchestrationDecision(
        allocations=allocations,
        objective_value=objective,
        stats=stats,
        deficits=dict(deficits or {}),
    )
