"""Thin wrappers around the HiGHS LP/MILP backends shipped with SciPy.

The paper solves its optimisation problems with IBM CPLEX; we substitute the
open-source HiGHS solvers exposed through :func:`scipy.optimize.linprog` and
:func:`scipy.optimize.milp` (see DESIGN.md).  This module centralises the
calls so the rest of the code never touches solver-specific details, and adds
the two pieces CPLEX gives for free that HiGHS does not:

* dual values (Lagrange multipliers) of inequality constraints, needed for
  Benders optimality cuts, and
* Farkas-style infeasibility certificates, obtained from a phase-1 LP, needed
  for Benders feasibility cuts and for the KAC heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize, sparse


@dataclass(frozen=True)
class LPSolution:
    """Result of a continuous LP solve."""

    success: bool
    status: str
    objective: float
    primal: np.ndarray
    duals_upper: np.ndarray
    infeasible: bool


@dataclass(frozen=True)
class MILPSolution:
    """Result of a mixed-integer solve."""

    success: bool
    status: str
    objective: float
    values: np.ndarray
    mip_gap: float
    #: True when a warm-start hint was supplied, validated and turned into
    #: an objective cutoff for the branch-and-bound (see :func:`solve_milp`).
    hint_applied: bool = False


#: Tolerances used to validate a warm-start hint before trusting it.
_HINT_FEASIBILITY_TOL = 1e-7
_HINT_INTEGRALITY_TOL = 1e-7


def validate_milp_hint(
    hint: np.ndarray,
    constraints: list[optimize.LinearConstraint],
    integrality: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
) -> bool:
    """Check that a candidate vector is (near-)feasible and integral.

    The hint must respect the variable bounds, take integer values on the
    integral variables and satisfy every linear constraint within a small
    tolerance; anything else is rejected (a stale hint must never constrain
    the solve).
    """
    hint = np.asarray(hint, dtype=float)
    if hint.shape != np.asarray(lower).shape:
        return False
    if np.any(hint < lower - _HINT_FEASIBILITY_TOL) or np.any(
        hint > upper + _HINT_FEASIBILITY_TOL
    ):
        return False
    integral = np.asarray(integrality) > 0.5
    if np.any(np.abs(hint[integral] - np.round(hint[integral])) > _HINT_INTEGRALITY_TOL):
        return False
    for constraint in constraints:
        row_values = np.asarray(constraint.A.dot(hint)).ravel()
        lb = np.broadcast_to(np.asarray(constraint.lb, dtype=float), row_values.shape)
        ub = np.broadcast_to(np.asarray(constraint.ub, dtype=float), row_values.shape)
        scale = np.maximum(1.0, np.abs(row_values))
        if np.any(row_values < lb - _HINT_FEASIBILITY_TOL * scale) or np.any(
            row_values > ub + _HINT_FEASIBILITY_TOL * scale
        ):
            return False
    return True


def solve_lp(
    cost: np.ndarray,
    a_ub: sparse.csr_matrix,
    b_ub: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
) -> LPSolution:
    """Solve ``min c'u  s.t.  A u <= b,  lower <= u <= upper``.

    Returns the dual multipliers of the inequality rows as *non-negative*
    numbers ``mu`` such that the dual objective is ``-b' mu`` (the sign
    convention used by the Benders derivation in the paper).
    """
    bounds = np.column_stack([lower, upper])
    result = optimize.linprog(
        c=np.asarray(cost, dtype=float),
        A_ub=a_ub,
        b_ub=np.asarray(b_ub, dtype=float),
        bounds=bounds,
        method="highs",
    )
    infeasible = result.status == 2
    duals = np.zeros(a_ub.shape[0])
    if result.status == 0 and result.ineqlin is not None:
        # HiGHS marginals are <= 0 for <= constraints in a minimisation.
        duals = -np.asarray(result.ineqlin.marginals, dtype=float)
        duals = np.clip(duals, 0.0, None)
    return LPSolution(
        success=result.status == 0,
        status=result.message,
        objective=float(result.fun) if result.status == 0 else float("nan"),
        primal=np.asarray(result.x, dtype=float) if result.x is not None else np.zeros(len(cost)),
        duals_upper=duals,
        infeasible=infeasible,
    )


class Phase1Problem:
    """Parametric phase-1 feasibility LP with a precomputed extended matrix.

    The phase-1 system ``min 1's  s.t.  A u - s <= b, s >= 0, lower <= u <=
    upper`` only depends on the right-hand side ``b`` between solves, so the
    extended matrix ``[A | -I]``, the cost vector and the extended bounds are
    assembled once here and reused for every certificate (see DESIGN.md,
    "Incremental solver layer").  The Benders and KAC slave problems hit this
    on every infeasible evaluate, which previously re-hstacked the matrix
    each time.
    """

    def __init__(
        self,
        a_ub: sparse.csr_matrix,
        lower: np.ndarray,
        upper: np.ndarray,
    ):
        num_rows, num_vars = a_ub.shape
        self.a_ext = sparse.hstack(
            [a_ub, -sparse.identity(num_rows, format="csr")], format="csr"
        )
        self.cost = np.concatenate([np.zeros(num_vars), np.ones(num_rows)])
        self.lower_ext = np.concatenate([lower, np.zeros(num_rows)])
        self.upper_ext = np.concatenate([upper, np.full(num_rows, np.inf)])

    def certificate(self, b_ub: np.ndarray) -> tuple[float, np.ndarray]:
        """Measure infeasibility of ``A u <= b_ub`` and return a Farkas ray.

        The optimal value is 0 exactly when the original system is feasible.
        When it is positive, the dual multipliers of the relaxed rows form a
        certificate ``mu >= 0`` with ``b' mu < 0`` on any violated
        combination; used as the "extreme ray" of the dual slave problem in
        Algorithm 1 / Algorithm 3.
        """
        solution = solve_lp(
            self.cost, self.a_ext, b_ub, self.lower_ext, self.upper_ext
        )
        if not solution.success:
            raise RuntimeError(
                f"phase-1 feasibility LP failed unexpectedly: {solution.status}"
            )
        return solution.objective, solution.duals_upper


def solve_milp(
    cost: np.ndarray,
    constraints: list[optimize.LinearConstraint],
    integrality: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    time_limit_s: float | None = None,
    mip_rel_gap: float = 1e-6,
    hint: np.ndarray | None = None,
) -> MILPSolution:
    """Solve a mixed-integer linear program with HiGHS.

    ``hint`` is an optional warm-start candidate (a full variable vector,
    e.g. the previous epoch's optimum).  SciPy's :func:`scipy.optimize.milp`
    has no native MIP-start interface, so a *validated* hint is turned into
    the next best thing: an objective-cutoff constraint ``c' v <= c' hint``
    that is guaranteed to keep the optimum (the hint is feasible, so the
    optimum can only be at least as good) while letting branch-and-bound
    prune every node whose relaxation is worse than the incumbent the hint
    represents.  Invalid hints are ignored.
    """
    cost = np.asarray(cost, dtype=float)
    hint_applied = False
    if hint is not None and validate_milp_hint(hint, constraints, integrality, lower, upper):
        hint_value = float(np.dot(cost, np.asarray(hint, dtype=float)))
        # Slack keeps the hint itself (and any exact optimum) strictly inside
        # the cutoff despite floating-point noise in A v recomputation.
        slack = 1e-9 * max(1.0, abs(hint_value))
        constraints = list(constraints) + [
            optimize.LinearConstraint(
                sparse.csr_matrix(cost.reshape(1, -1)), -np.inf, hint_value + slack
            )
        ]
        hint_applied = True
    options: dict[str, float] = {"mip_rel_gap": mip_rel_gap}
    if time_limit_s is not None:
        options["time_limit"] = float(time_limit_s)
    result = optimize.milp(
        c=cost,
        constraints=constraints,
        integrality=np.asarray(integrality),
        bounds=optimize.Bounds(lb=lower, ub=upper),
        options=options,
    )
    values = (
        np.asarray(result.x, dtype=float)
        if result.x is not None
        else np.zeros(len(cost))
    )
    gap = float(result.mip_gap) if getattr(result, "mip_gap", None) is not None else 0.0
    return MILPSolution(
        success=result.status == 0,
        status=result.message,
        objective=float(result.fun) if result.fun is not None else float("nan"),
        values=values,
        mip_gap=gap,
        hint_applied=hint_applied,
    )
