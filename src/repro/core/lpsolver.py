"""Thin wrappers around the HiGHS LP/MILP backends shipped with SciPy.

The paper solves its optimisation problems with IBM CPLEX; we substitute the
open-source HiGHS solvers exposed through :func:`scipy.optimize.linprog` and
:func:`scipy.optimize.milp` (see DESIGN.md).  This module centralises the
calls so the rest of the code never touches solver-specific details, and adds
the two pieces CPLEX gives for free that HiGHS does not:

* dual values (Lagrange multipliers) of inequality constraints, needed for
  Benders optimality cuts, and
* Farkas-style infeasibility certificates, obtained from a phase-1 LP, needed
  for Benders feasibility cuts and for the KAC heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize, sparse


@dataclass(frozen=True)
class LPSolution:
    """Result of a continuous LP solve."""

    success: bool
    status: str
    objective: float
    primal: np.ndarray
    duals_upper: np.ndarray
    infeasible: bool


@dataclass(frozen=True)
class MILPSolution:
    """Result of a mixed-integer solve."""

    success: bool
    status: str
    objective: float
    values: np.ndarray
    mip_gap: float


def solve_lp(
    cost: np.ndarray,
    a_ub: sparse.csr_matrix,
    b_ub: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
) -> LPSolution:
    """Solve ``min c'u  s.t.  A u <= b,  lower <= u <= upper``.

    Returns the dual multipliers of the inequality rows as *non-negative*
    numbers ``mu`` such that the dual objective is ``-b' mu`` (the sign
    convention used by the Benders derivation in the paper).
    """
    bounds = np.column_stack([lower, upper])
    result = optimize.linprog(
        c=np.asarray(cost, dtype=float),
        A_ub=a_ub,
        b_ub=np.asarray(b_ub, dtype=float),
        bounds=bounds,
        method="highs",
    )
    infeasible = result.status == 2
    duals = np.zeros(a_ub.shape[0])
    if result.status == 0 and result.ineqlin is not None:
        # HiGHS marginals are <= 0 for <= constraints in a minimisation.
        duals = -np.asarray(result.ineqlin.marginals, dtype=float)
        duals = np.clip(duals, 0.0, None)
    return LPSolution(
        success=result.status == 0,
        status=result.message,
        objective=float(result.fun) if result.status == 0 else float("nan"),
        primal=np.asarray(result.x, dtype=float) if result.x is not None else np.zeros(len(cost)),
        duals_upper=duals,
        infeasible=infeasible,
    )


class Phase1Problem:
    """Parametric phase-1 feasibility LP with a precomputed extended matrix.

    The phase-1 system ``min 1's  s.t.  A u - s <= b, s >= 0, lower <= u <=
    upper`` only depends on the right-hand side ``b`` between solves, so the
    extended matrix ``[A | -I]``, the cost vector and the extended bounds are
    assembled once here and reused for every certificate (see DESIGN.md,
    "Incremental solver layer").  The Benders and KAC slave problems hit this
    on every infeasible evaluate, which previously re-hstacked the matrix
    each time.
    """

    def __init__(
        self,
        a_ub: sparse.csr_matrix,
        lower: np.ndarray,
        upper: np.ndarray,
    ):
        num_rows, num_vars = a_ub.shape
        self.a_ext = sparse.hstack(
            [a_ub, -sparse.identity(num_rows, format="csr")], format="csr"
        )
        self.cost = np.concatenate([np.zeros(num_vars), np.ones(num_rows)])
        self.lower_ext = np.concatenate([lower, np.zeros(num_rows)])
        self.upper_ext = np.concatenate([upper, np.full(num_rows, np.inf)])

    def certificate(self, b_ub: np.ndarray) -> tuple[float, np.ndarray]:
        """Measure infeasibility of ``A u <= b_ub`` and return a Farkas ray.

        The optimal value is 0 exactly when the original system is feasible.
        When it is positive, the dual multipliers of the relaxed rows form a
        certificate ``mu >= 0`` with ``b' mu < 0`` on any violated
        combination; used as the "extreme ray" of the dual slave problem in
        Algorithm 1 / Algorithm 3.
        """
        solution = solve_lp(
            self.cost, self.a_ext, b_ub, self.lower_ext, self.upper_ext
        )
        if not solution.success:
            raise RuntimeError(
                f"phase-1 feasibility LP failed unexpectedly: {solution.status}"
            )
        return solution.objective, solution.duals_upper


def solve_milp(
    cost: np.ndarray,
    constraints: list[optimize.LinearConstraint],
    integrality: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    time_limit_s: float | None = None,
    mip_rel_gap: float = 1e-6,
) -> MILPSolution:
    """Solve a mixed-integer linear program with HiGHS."""
    options: dict[str, float] = {"mip_rel_gap": mip_rel_gap}
    if time_limit_s is not None:
        options["time_limit"] = float(time_limit_s)
    result = optimize.milp(
        c=np.asarray(cost, dtype=float),
        constraints=constraints,
        integrality=np.asarray(integrality),
        bounds=optimize.Bounds(lb=lower, ub=upper),
        options=options,
    )
    values = (
        np.asarray(result.x, dtype=float)
        if result.x is not None
        else np.zeros(len(cost))
    )
    gap = float(result.mip_gap) if getattr(result, "mip_gap", None) is not None else 0.0
    return MILPSolution(
        success=result.status == 0,
        status=result.message,
        objective=float(result.fun) if result.fun is not None else float("nan"),
        values=values,
        mip_gap=gap,
    )
