"""Benders decomposition solver for the AC-RR problem (Algorithm 1).

The MILP of Problem 2 couples binary admission/path variables ``x`` with the
continuous reservation variables ``z`` (and the linearisation variables
``y``).  Following Section 4.1, we split it into:

* a **master problem** (Problem 5) over ``x`` and a surrogate cost ``theta``,
  containing the path-selection constraints (5)-(7) and the cuts accumulated
  so far, and
* a **slave problem** (Problem 3) over ``(y, z)`` for a fixed ``x``,
  containing the capacity and coupling constraints.

Feasible slave solves contribute *optimality cuts* (21) built from the dual
multipliers; infeasible slave solves contribute *feasibility cuts* (22) built
from a phase-1 infeasibility certificate (the "extreme rays" of the dual
slave).  The loop terminates when the master lower bound and the incumbent
upper bound meet, which Theorem 2 guarantees happens after finitely many
iterations.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import optimize, sparse

from repro.core.decomposition import SlaveProblem
from repro.core.lpsolver import solve_milp
from repro.core.problem import ACRRProblem, InfeasibleProblemError
from repro.core.solution import (
    OrchestrationDecision,
    SolverStats,
    decision_from_vectors,
)


class _MasterState:
    """Incremental Benders master: static skeleton plus a growing cut matrix.

    The master MILP of Problem 5 changes between iterations only by the cuts
    appended at the bottom, so the per-problem structure -- the objective over
    ``(x, theta)``, the bounds/integrality vectors and the hstacked
    path-selection block -- is assembled exactly once, and the accumulated
    cuts live in one growing CSR matrix (one ``vstack`` of a single row per
    iteration) instead of one :class:`scipy.optimize.LinearConstraint` per
    cut per solve.
    """

    def __init__(self, problem: ACRRProblem, cost_x: np.ndarray, theta_lower: float):
        n = problem.num_items
        self.num_items = n
        self.cost = np.concatenate([cost_x, [1.0]])
        self.lower = np.concatenate([np.zeros(n), [theta_lower]])
        self.upper = np.concatenate([np.ones(n), [np.inf]])
        self.integrality = np.concatenate([np.ones(n), [0.0]])

        selection = problem.selection_block()
        self.selection_constraint: optimize.LinearConstraint | None = None
        if selection.num_rows:
            sel_matrix = sparse.hstack(
                [selection.a_x, sparse.csr_matrix((selection.num_rows, 1))],
                format="csr",
            )
            self.selection_constraint = optimize.LinearConstraint(
                sel_matrix, selection.lower, selection.upper
            )

        # Floor-footprint capacity surrogates.  Every admitted item must
        # reserve at least its floor (constraint (9): z >= lambda_hat x, or
        # the full SLA without overbooking) and the capacity coefficients are
        # non-negative, so the minimal capacity usage of an admission vector
        # x is A_x x + A_z (floor . x).  Projecting the capacity rows onto x
        # this way is therefore *exact*: a master candidate satisfies the
        # surrogate iff its slave LP is feasible.  Without it, the master
        # explores the (exponentially symmetric) space of overloaded path
        # combinations one weak phase-1 feasibility cut at a time -- the
        # differential harness caught instances with binding transport
        # capacity where the incumbent never appeared within hundreds of
        # iterations.
        capacity = problem.capacity_block()
        floor = np.array(
            [
                item.lambda_hat_mbps if problem.options.overbooking else item.sla_mbps
                for item in problem.items
            ]
        )
        footprint = capacity.a_x + capacity.a_z.multiply(floor[np.newaxis, :])
        self.capacity_surrogate = optimize.LinearConstraint(
            sparse.hstack(
                [footprint, sparse.csr_matrix((capacity.num_rows, 1))], format="csr"
            ),
            capacity.lower,
            capacity.upper,
        )

        self._cut_matrix: sparse.csr_matrix | None = None
        self._cut_rhs: list[float] = []

    @property
    def num_cuts(self) -> int:
        return len(self._cut_rhs)

    def add_cut(self, coefficients: np.ndarray, rhs: float, is_optimality: bool) -> None:
        """Append one cut ``coeff' x (+ theta) >= rhs`` to the pool."""
        theta_coeff = 1.0 if is_optimality else 0.0
        row = sparse.csr_matrix(
            np.concatenate([coefficients, [theta_coeff]]).reshape(1, -1)
        )
        if self._cut_matrix is None:
            self._cut_matrix = row
        else:
            self._cut_matrix = sparse.vstack([self._cut_matrix, row], format="csr")
        self._cut_rhs.append(rhs)

    def constraints(self) -> list[optimize.LinearConstraint]:
        constraints: list[optimize.LinearConstraint] = [self.capacity_surrogate]
        if self.selection_constraint is not None:
            constraints.append(self.selection_constraint)
        if self._cut_matrix is not None:
            constraints.append(
                optimize.LinearConstraint(
                    self._cut_matrix,
                    lb=np.asarray(self._cut_rhs),
                    ub=np.inf,
                )
            )
        return constraints


class BendersSolver:
    """Optimal AC-RR solver based on Benders decomposition."""

    def __init__(
        self,
        tolerance: float = 1e-4,
        relative_tolerance: float = 0.01,
        max_iterations: int = 200,
        master_time_limit_s: float | None = 60.0,
        time_limit_s: float | None = 120.0,
    ):
        """Configure the decomposition.

        ``tolerance`` and ``relative_tolerance`` define the stopping rule
        ``UB - LB <= max(tolerance, relative_tolerance * |UB|)``: the classic
        Benders tail converges very slowly (the paper reports hours on CPLEX
        for the full networks), so by default the solver stops once the
        incumbent is provably within 1 % of the optimum.  ``time_limit_s``
        bounds the total wall-clock time; the incumbent found so far is
        returned (and flagged as non-optimal) when it is exceeded.
        """
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if relative_tolerance < 0:
            raise ValueError("relative_tolerance must be non-negative")
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        self.tolerance = tolerance
        self.relative_tolerance = relative_tolerance
        self.max_iterations = max_iterations
        self.master_time_limit_s = master_time_limit_s
        self.time_limit_s = time_limit_s

    # ------------------------------------------------------------------ #
    def solve(self, problem: ACRRProblem) -> OrchestrationDecision:
        """Run Algorithm 1 and return the resulting orchestration decision."""
        start = time.perf_counter()
        slave = SlaveProblem(problem)
        cost_x = problem.objective_x()
        theta_lower = slave.objective_lower_bound()

        master_state = _MasterState(problem, cost_x, theta_lower)
        upper_bound = float("inf")
        lower_bound = -float("inf")
        best_x: np.ndarray | None = None
        best_z: np.ndarray | None = None
        optimality_cuts = 0
        feasibility_cuts = 0
        iterations = 0

        for iteration in range(1, self.max_iterations + 1):
            iterations = iteration
            master = self._solve_master(master_state)
            if master is None:
                raise InfeasibleProblemError(
                    "Benders master problem became infeasible; the committed "
                    "slices cannot be accommodated (enable allow_deficit)"
                )
            x_candidate, theta, master_objective = master
            lower_bound = master_objective

            outcome = slave.evaluate(x_candidate)
            if outcome.feasible:
                candidate_upper = float(np.dot(cost_x, x_candidate)) + outcome.objective
                if candidate_upper < upper_bound - 1e-12:
                    upper_bound = candidate_upper
                    best_x = x_candidate
                    best_z = outcome.z
                coeff, rhs = slave.cut_from_multipliers(outcome.duals)
                master_state.add_cut(coeff, rhs, is_optimality=True)
                optimality_cuts += 1
            else:
                coeff, rhs = slave.cut_from_multipliers(outcome.ray)
                master_state.add_cut(coeff, rhs, is_optimality=False)
                feasibility_cuts += 1

            if np.isfinite(upper_bound):
                gap_target = max(
                    self.tolerance, self.relative_tolerance * abs(upper_bound)
                )
                if upper_bound - lower_bound <= gap_target:
                    break
            if (
                self.time_limit_s is not None
                and time.perf_counter() - start > self.time_limit_s
                and best_x is not None
            ):
                break

        if best_x is None:
            raise InfeasibleProblemError(
                "Benders decomposition found no feasible admission vector within "
                f"{self.max_iterations} iterations"
            )

        runtime = time.perf_counter() - start
        gap = max(0.0, upper_bound - lower_bound)
        stats = SolverStats(
            solver="benders",
            iterations=iterations,
            runtime_s=runtime,
            optimal=gap <= max(self.tolerance, self.relative_tolerance * abs(upper_bound)),
            gap=gap,
            cuts_optimality=optimality_cuts,
            cuts_feasibility=feasibility_cuts,
            message=f"UB={upper_bound:.6f} LB={lower_bound:.6f}",
        )
        return decision_from_vectors(problem, best_x, best_z, stats)

    # ------------------------------------------------------------------ #
    def _solve_master(
        self, master: _MasterState
    ) -> tuple[np.ndarray, float, float] | None:
        """Solve the current master MILP; returns (x, theta, objective)."""
        result = solve_milp(
            cost=master.cost,
            constraints=master.constraints(),
            integrality=master.integrality,
            lower=master.lower,
            upper=master.upper,
            time_limit_s=self.master_time_limit_s,
        )
        if not result.success:
            return None
        n = master.num_items
        x = np.round(result.values[:n])
        theta = float(result.values[n])
        return x, theta, float(result.objective)
