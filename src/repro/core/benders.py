"""Benders decomposition solver for the AC-RR problem (Algorithm 1).

The MILP of Problem 2 couples binary admission/path variables ``x`` with the
continuous reservation variables ``z`` (and the linearisation variables
``y``).  Following Section 4.1, we split it into:

* a **master problem** (Problem 5) over ``x`` and a surrogate cost ``theta``,
  containing the path-selection constraints (5)-(7) and the cuts accumulated
  so far, and
* a **slave problem** (Problem 3) over ``(y, z)`` for a fixed ``x``,
  containing the capacity and coupling constraints.

Feasible slave solves contribute *optimality cuts* (21) built from the dual
multipliers; infeasible slave solves contribute *feasibility cuts* (22) built
from a phase-1 infeasibility certificate (the "extreme rays" of the dual
slave).  The loop terminates when the master lower bound and the incumbent
upper bound meet, which Theorem 2 guarantees happens after finitely many
iterations.

Cross-epoch warm start (see DESIGN.md, "Warm-started solver layer"): the
orchestrator re-solves a nearly identical instance every decision epoch, so
the solver persists the dual multipliers behind every cut in a
:class:`CutPool` keyed by problem structure.  On the next structurally
matching solve the stored multipliers are *re-validated* against the new
instance -- the slave constraint matrix ``G`` is forecast-independent, so a
stored ``mu >= 0`` yields a provably valid inequality for the new master
once its right-hand side is re-derived from the new ``(h0, H)`` and relaxed
by the (computable) dual-infeasibility slack against the new objective.
Stale cuts whose slack grew too large are dropped; the surviving ones
re-seed the master, which typically converges in a fraction of the cold
iteration count while returning bit-identical decisions (enforced by the
differential warm-start sweep).
"""

from __future__ import annotations

import hashlib
import struct
import time
from dataclasses import dataclass, field

import numpy as np
from scipy import optimize, sparse

from repro.core.decomposition import SlaveProblem
from repro.core.lpsolver import solve_milp, validate_milp_hint
from repro.core.problem import (
    ACRRProblem,
    InfeasibleProblemError,
    topology_signature,
)
from repro.core.solution import (
    OrchestrationDecision,
    SolverStats,
    decision_from_vectors,
)


class _MasterState:
    """Incremental Benders master: static skeleton plus a growing cut matrix.

    The master MILP of Problem 5 changes between iterations only by the cuts
    appended at the bottom, so the per-problem structure -- the objective
    over ``(x, theta_0..theta_{B-1})``, the bounds/integrality vectors and
    the hstacked path-selection block -- is assembled exactly once.  Cut rows
    are accumulated in a pending list and stacked lazily: ``cut_rows()`` /
    ``constraints()`` fold the pending batch into the cached CSR matrix with
    a single ``vstack`` per master solve, so a solve that adds k cuts costs
    O(k) row builds plus one stack instead of the O(k^2) repeated
    re-stacking a per-``add_cut`` ``vstack`` would pay.

    ``theta_lowers`` carries one lower bound per surrogate: the classic
    single-cut master has exactly one surrogate, the multi-cut master one
    per slave block, with the *sum* of the surrogates standing in for the
    slave cost in the objective.
    """

    def __init__(
        self,
        problem: ACRRProblem,
        cost_x: np.ndarray,
        theta_lowers: np.ndarray,
    ):
        n = problem.num_items
        theta_lowers = np.atleast_1d(np.asarray(theta_lowers, dtype=float))
        num_thetas = len(theta_lowers)
        self.num_items = n
        self.num_thetas = num_thetas
        self.theta_lowers = theta_lowers
        self.cost = np.concatenate([cost_x, np.ones(num_thetas)])
        self.lower = np.concatenate([np.zeros(n), theta_lowers])
        self.upper = np.concatenate([np.ones(n), np.full(num_thetas, np.inf)])
        self.integrality = np.concatenate([np.ones(n), np.zeros(num_thetas)])

        selection = problem.selection_block()
        self.selection_constraint: optimize.LinearConstraint | None = None
        if selection.num_rows:
            sel_matrix = sparse.hstack(
                [selection.a_x, sparse.csr_matrix((selection.num_rows, num_thetas))],
                format="csr",
            )
            self.selection_constraint = optimize.LinearConstraint(
                sel_matrix, selection.lower, selection.upper
            )

        # Floor-footprint capacity surrogates.  Every admitted item must
        # reserve at least its floor (constraint (9): z >= lambda_hat x, or
        # the full SLA without overbooking) and the capacity coefficients are
        # non-negative, so the minimal capacity usage of an admission vector
        # x is A_x x + A_z (floor . x).  Projecting the capacity rows onto x
        # this way is therefore *exact*: a master candidate satisfies the
        # surrogate iff its slave LP is feasible.  Without it, the master
        # explores the (exponentially symmetric) space of overloaded path
        # combinations one weak phase-1 feasibility cut at a time -- the
        # differential harness caught instances with binding transport
        # capacity where the incumbent never appeared within hundreds of
        # iterations.
        capacity = problem.capacity_block()
        floor = np.array(
            [
                item.lambda_hat_mbps if problem.options.overbooking else item.sla_mbps
                for item in problem.items
            ]
        )
        footprint = capacity.a_x + capacity.a_z.multiply(floor[np.newaxis, :])
        self.capacity_surrogate = optimize.LinearConstraint(
            sparse.hstack(
                [footprint, sparse.csr_matrix((capacity.num_rows, num_thetas))],
                format="csr",
            ),
            capacity.lower,
            capacity.upper,
        )

        self._cut_matrix: sparse.csr_matrix | None = None
        self._pending_rows: list[sparse.csr_matrix] = []
        self._cut_rhs: list[float] = []

    @property
    def num_cuts(self) -> int:
        return len(self._cut_rhs)

    def add_cut(
        self,
        coefficients: np.ndarray,
        rhs: float,
        is_optimality: bool,
        theta_indices: tuple[int, ...] | None = None,
    ) -> None:
        """Append one cut ``coeff' x (+ sum of thetas) >= rhs`` to the pool.

        ``theta_indices`` selects which surrogates an optimality cut bounds:
        ``None`` means all of them (the aggregate cut; the classic single-cut
        master has exactly one), a single index means a per-block cut.
        Feasibility cuts never involve the surrogates.  The row is only
        *queued* here; stacking happens lazily in :meth:`cut_rows`.
        """
        theta_part = np.zeros(self.num_thetas)
        if is_optimality:
            if theta_indices is None:
                theta_part[:] = 1.0
            else:
                theta_part[list(theta_indices)] = 1.0
        row = sparse.csr_matrix(
            np.concatenate([coefficients, theta_part]).reshape(1, -1)
        )
        self._pending_rows.append(row)
        self._cut_rhs.append(rhs)

    def cut_rows(self) -> tuple[sparse.csr_matrix | None, np.ndarray]:
        """The accumulated cut matrix over (x, thetas) and its RHS vector."""
        if self._pending_rows:
            stack = self._pending_rows
            if self._cut_matrix is not None:
                stack = [self._cut_matrix, *stack]
            self._cut_matrix = sparse.vstack(stack, format="csr")
            self._pending_rows = []
        return self._cut_matrix, np.asarray(self._cut_rhs)

    def constraints(self) -> list[optimize.LinearConstraint]:
        constraints: list[optimize.LinearConstraint] = [self.capacity_surrogate]
        if self.selection_constraint is not None:
            constraints.append(self.selection_constraint)
        cut_matrix, cut_rhs = self.cut_rows()
        if cut_matrix is not None:
            constraints.append(
                optimize.LinearConstraint(cut_matrix, lb=cut_rhs, ub=np.inf)
            )
        return constraints


def warm_start_key(problem: ACRRProblem) -> tuple:
    """Pool key: everything that shapes the slave system's sparsity.

    Built from :meth:`ACRRProblem.warm_start_signature` (the request set
    minus arrival epochs, which never enter the MILP matrices -- so a
    *renewed* slice warm-starts from the cuts of its previous life) plus the
    topology content signature.  Correctness never rests on this key: every
    stored multiplier is re-validated against the new instance before it
    seeds a cut (see :meth:`CutPool.seed_master`), and stored incumbents are
    replayed only on a byte-level instance-token match, so a key collision
    can only cost work, not accuracy.
    """
    return (
        problem.warm_start_signature(),
        topology_signature(problem.topology),
    )


@dataclass
class _PoolEntry:
    """Stored warm-start state of one problem structure."""

    num_rows: int
    #: Dual multipliers of past cuts as ``(mu, is_optimality, block_id)``
    #: triples; ``block_id`` is ``None`` for aggregate (full-system) cuts
    #: and a slave block index for multi-cut block cuts, whose multipliers
    #: span only that block's rows and re-validate against the block system.
    multipliers: list[tuple[np.ndarray, bool, int | None]] = field(
        default_factory=list
    )
    #: Admission vector of the last incumbent under this structure.
    best_x: np.ndarray | None = None
    #: Byte-level fingerprint of the exact instance ``best_x`` came from:
    #: equal tokens mean a cold solve would deterministically reproduce it.
    instance_token: bytes | None = None
    #: Stats of the solve that produced ``best_x`` (replayed verbatim --
    #: minus runtime -- when an identical instance is re-solved).
    best_stats: SolverStats | None = None


class CutPool:
    """Cross-epoch persistence of Benders cuts, keyed by problem structure.

    The pool stores the *dual multipliers* ``mu`` behind each cut rather
    than the cut coefficients themselves: coefficients ``(H' mu, -h0' mu)``
    are cheap to re-derive and doing so automatically adapts each cut to the
    new epoch's right-hand side.  Validity of a re-derived cut for the new
    instance is then proven, not assumed:

    * a feasibility cut needs ``G' mu >= 0``;
    * an optimality cut needs dual feasibility ``G' mu >= -d``;

    and where either condition fails by a margin, the cut is *repaired*
    instead of trusted: every feasible slave point satisfies the implied
    bounds ``0 <= (y, z) <= sla`` (constraints (8)/(10)), so relaxing the
    right-hand side by ``sum_j max(0, violation_j) * sla_j`` restores a
    mathematically valid inequality.  Cuts whose repair slack exceeds
    ``max_relative_slack`` of the cut's own scale carry no information
    anymore and are dropped as stale.
    """

    def __init__(
        self,
        max_cuts_per_structure: int = 256,
        max_structures: int = 32,
        max_relative_slack: float = 0.1,
    ):
        if max_cuts_per_structure <= 0:
            raise ValueError("max_cuts_per_structure must be positive")
        if max_structures <= 0:
            raise ValueError("max_structures must be positive")
        if max_relative_slack < 0:
            raise ValueError("max_relative_slack must be non-negative")
        self.max_cuts_per_structure = max_cuts_per_structure
        self.max_structures = max_structures
        self.max_relative_slack = max_relative_slack
        self._entries: dict[tuple, _PoolEntry] = {}
        #: Diagnostics: cuts seeded / dropped-as-stale over the pool's life.
        self.seeded_total = 0
        self.dropped_total = 0

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, key: tuple) -> _PoolEntry | None:
        entry = self._entries.get(key)
        if entry is not None:
            # LRU touch: re-insert so eviction drops the coldest structure.
            self._entries.pop(key)
            self._entries[key] = entry
        return entry

    def seed_master(
        self, key: tuple, master: "_MasterState", slave: SlaveProblem
    ) -> tuple[int, np.ndarray | None, bytes | None]:
        """Re-validate the stored cuts of ``key`` and add the survivors.

        Returns ``(number of cuts seeded, stored incumbent admission vector
        or None, instance token of that incumbent)``.  Cuts are seeded in
        their original order so repeated solves of an identical instance
        build identical master problems.
        """
        entry = self.entry(key)
        if entry is None:
            return 0, None, None
        num_rows = slave.g_matrix.shape[0]
        if entry.num_rows != num_rows or not entry.multipliers:
            if entry.num_rows == num_rows:
                return 0, entry.best_x, entry.instance_token
            return 0, None, None

        # Implied bounds of any feasible slave point: 0 <= (y, z) <= sla.
        sla = np.array([item.sla_mbps for item in slave.problem.items])
        u_bound = np.concatenate([sla, sla])

        # Block cuts re-validate against their block's own system; they are
        # only seedable into a master that actually carries that block's
        # surrogate (a multi-cut master over the same block structure).
        blocks = None
        if any(block_id is not None for _, _, block_id in entry.multipliers):
            candidate = slave.blocks()
            if master.num_thetas == len(candidate):
                blocks = candidate

        # Batch the re-validation linear algebra per system (the aggregate
        # system and each referenced block), then emit cuts in their
        # original storage order so repeated solves of an identical
        # instance build identical master problems.
        groups: dict[int | None, list[int]] = {}
        for position, (_, _, block_id) in enumerate(entry.multipliers):
            groups.setdefault(block_id, []).append(position)

        prepared: dict[int, tuple[np.ndarray, np.ndarray, float] | None] = {}
        for block_id, positions in groups.items():
            if block_id is None:
                system_d, system_g = slave.d, slave.g_matrix
                system_h, system_h0, bound = slave.h_matrix, slave.h0, u_bound
                expected_rows = num_rows
            elif blocks is not None and 0 <= block_id < len(blocks):
                block = blocks[block_id]
                system_d, system_g = block.d, block.g_matrix
                system_h, system_h0, bound = block.h_matrix, block.h0, block.u_bound
                expected_rows = len(block.rows)
            else:
                for position in positions:
                    prepared[position] = None
                continue
            usable = [
                p for p in positions if len(entry.multipliers[p][0]) == expected_rows
            ]
            for position in set(positions) - set(usable):
                prepared[position] = None
            if not usable:
                continue
            mu_matrix = np.stack([entry.multipliers[p][0] for p in usable])
            # (k x cols) dual slack basis: row i is G' mu_i.
            gt_mu = np.asarray((system_g.T.dot(mu_matrix.T)).T)
            coeffs = np.asarray((system_h.T.dot(mu_matrix.T)).T)
            rhs = -mu_matrix.dot(system_h0)
            for row, position in enumerate(usable):
                _, is_optimality, _ = entry.multipliers[position]
                violation = np.maximum(
                    0.0,
                    -(gt_mu[row] + system_d) if is_optimality else -gt_mu[row],
                )
                repair = float(np.dot(violation, bound))
                prepared[position] = (coeffs[row], float(rhs[row]) - repair, repair)

        seeded = 0
        for position, (_, is_optimality, block_id) in enumerate(entry.multipliers):
            ready = prepared.get(position)
            if ready is None:
                self.dropped_total += 1
                continue
            coeff, rhs_value, repair = ready
            cut_scale = max(
                1.0, abs(rhs_value + repair), float(np.max(np.abs(coeff)))
            )
            if repair > self.max_relative_slack * cut_scale:
                self.dropped_total += 1
                continue
            theta_indices = None if block_id is None else (block_id,)
            master.add_cut(coeff, rhs_value, is_optimality, theta_indices)
            seeded += 1
        self.seeded_total += seeded
        return seeded, entry.best_x, entry.instance_token

    def record(
        self,
        key: tuple,
        num_rows: int,
        new_multipliers: "list[tuple]",
        best_x: np.ndarray | None,
        instance_token: bytes | None = None,
        stats: SolverStats | None = None,
    ) -> None:
        """Append one solve's freshly generated multipliers and incumbent.

        Multipliers are ``(mu, is_optimality)`` pairs (aggregate cuts) or
        ``(mu, is_optimality, block_id)`` triples; pairs normalise to an
        aggregate ``block_id`` of ``None``.
        """
        entry = self._entries.get(key)
        if entry is None or entry.num_rows != num_rows:
            entry = _PoolEntry(num_rows=num_rows)
            self._entries.pop(key, None)
            self._entries[key] = entry
            while len(self._entries) > self.max_structures:
                self._entries.pop(next(iter(self._entries)))
        entry.multipliers.extend(
            (np.array(item[0]), item[1], item[2] if len(item) > 2 else None)
            for item in new_multipliers
        )
        if len(entry.multipliers) > self.max_cuts_per_structure:
            del entry.multipliers[: len(entry.multipliers) - self.max_cuts_per_structure]
        if best_x is not None:
            entry.best_x = np.array(best_x)
            entry.instance_token = instance_token
            entry.best_stats = stats

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------------ #
    # Crash-consistent epochs (snapshot / restore)
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """Capture the pool for epoch-level rollback.

        Multiplier arrays and incumbents are never mutated in place once
        recorded (``record`` stores fresh copies), so a structural copy --
        new entry objects with copied multiplier lists -- is a complete,
        mutation-independent snapshot.
        """
        return {
            "entries": {
                key: _PoolEntry(
                    num_rows=entry.num_rows,
                    multipliers=list(entry.multipliers),
                    best_x=entry.best_x,
                    instance_token=entry.instance_token,
                    best_stats=entry.best_stats,
                )
                for key, entry in self._entries.items()
            },
            "seeded_total": self.seeded_total,
            "dropped_total": self.dropped_total,
        }

    def restore_state(self, snapshot: dict) -> None:
        """Reset the pool to a :meth:`snapshot_state` taken earlier.

        Entries are re-copied so the same snapshot can be restored more
        than once; the pool object itself (and its limits) is preserved.
        """
        self._entries = {
            key: _PoolEntry(
                num_rows=entry.num_rows,
                multipliers=list(entry.multipliers),
                best_x=entry.best_x,
                instance_token=entry.instance_token,
                best_stats=entry.best_stats,
            )
            for key, entry in snapshot["entries"].items()
        }
        self.seeded_total = snapshot["seeded_total"]
        self.dropped_total = snapshot["dropped_total"]


#: Relative width of the "essentially exact" certificate tier of the warm
#: fast path -- the same comparison tolerance the differential harness uses
#: to call two optima equal.  A certificate this tight cannot hide a
#: materially different cold incumbent.
_EXACT_CERTIFICATE_REL = 1e-6


class BendersSolver:
    """Optimal AC-RR solver based on Benders decomposition."""

    def __init__(
        self,
        tolerance: float = 1e-4,
        relative_tolerance: float = 0.01,
        max_iterations: int = 200,
        master_time_limit_s: float | None = 60.0,
        time_limit_s: float | None = 120.0,
        warm_start: bool = True,
        cut_pool: CutPool | None = None,
        multi_cut: bool = False,
        executor=None,
    ):
        """Configure the decomposition.

        ``tolerance`` and ``relative_tolerance`` define the stopping rule
        ``UB - LB <= max(tolerance, relative_tolerance * |UB|)``: the classic
        Benders tail converges very slowly (the paper reports hours on CPLEX
        for the full networks), so by default the solver stops once the
        incumbent is provably within 1 % of the optimum.  ``time_limit_s``
        bounds the total wall-clock time; the incumbent found so far is
        returned (and flagged as non-optimal) when it is exceeded.

        ``warm_start`` keeps a :class:`CutPool` on the solver instance so
        consecutive solves of structurally matching instances (the
        orchestrator's steady-state epochs) re-seed each other's cuts; pass
        an explicit ``cut_pool`` to share one pool between solver instances.
        Warm starts only ever add *valid* inequalities and an incumbent
        bound, so decisions are identical to cold solves (asserted by the
        differential warm-start sweep); disable for raw-latency baselines.

        ``multi_cut`` disaggregates the slave by per-tenant resource block
        (see :meth:`SlaveProblem.blocks`): every master round prices each
        block independently and adds one optimality cut per block on its own
        surrogate ``theta_b`` *in addition to* the classic aggregate cut, so
        the master lower bound tightens much faster while keeping the exact
        certificate the aggregate cut carries.  Block LPs are independent
        deterministic solves fanned out over ``executor`` (an object with
        the :mod:`repro.utils.executors` ``map`` contract; ``None`` prices
        blocks serially) in deterministic block order, so decisions are
        bit-identical for any worker count.
        """
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if relative_tolerance < 0:
            raise ValueError("relative_tolerance must be non-negative")
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        self.tolerance = tolerance
        self.relative_tolerance = relative_tolerance
        self.max_iterations = max_iterations
        self.master_time_limit_s = master_time_limit_s
        self.time_limit_s = time_limit_s
        self.multi_cut = multi_cut
        self.executor = executor
        if cut_pool is not None:
            self.cut_pool: CutPool | None = cut_pool
        else:
            self.cut_pool = CutPool() if warm_start else None

    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict | None:
        """Cross-epoch state (the cut pool) for epoch-level rollback."""
        if self.cut_pool is None:
            return None
        return self.cut_pool.snapshot_state()

    def restore_state(self, snapshot: dict | None) -> None:
        if self.cut_pool is not None and snapshot is not None:
            self.cut_pool.restore_state(snapshot)

    # ------------------------------------------------------------------ #
    def solve(self, problem: ACRRProblem) -> OrchestrationDecision:
        """Run Algorithm 1 and return the resulting orchestration decision."""
        start = time.perf_counter()
        slave = SlaveProblem(problem)
        cost_x = problem.objective_x()
        theta_lowers = self._theta_lowers(slave)

        pool_key: tuple | None = None
        instance_token: bytes | None = None
        if self.cut_pool is not None:
            pool_key = warm_start_key(problem)
            instance_token = self._instance_token(slave, cost_x, theta_lowers)
            fast = self._warm_fast_path(
                problem, slave, cost_x, theta_lowers, pool_key, instance_token, start
            )
            if fast is not None:
                return fast

        # Cold path.  Deliberately untouched by warm-start state: when the
        # fast path misses, the trajectory below is bit-identical to a
        # ``warm_start=False`` solver, cuts, candidates, incumbent and all.
        master_state = _MasterState(problem, cost_x, theta_lowers)
        blocks = slave.blocks() if self.multi_cut else []
        upper_bound = float("inf")
        lower_bound = -float("inf")
        best_x: np.ndarray | None = None
        best_z: np.ndarray | None = None
        optimality_cuts = 0
        feasibility_cuts = 0
        iterations = 0
        time_truncated = False
        new_multipliers: list[tuple[np.ndarray, bool, int | None]] = []

        for iteration in range(1, self.max_iterations + 1):
            iterations = iteration
            master = self._solve_master(master_state)
            if master is None:
                raise InfeasibleProblemError(
                    "Benders master problem became infeasible; the committed "
                    "slices cannot be accommodated (enable allow_deficit)"
                )
            x_candidate, _thetas, master_objective = master
            lower_bound = master_objective

            outcome = slave.evaluate(x_candidate)
            if outcome.feasible:
                candidate_upper = float(np.dot(cost_x, x_candidate)) + outcome.objective
                if candidate_upper < upper_bound - 1e-12:
                    upper_bound = candidate_upper
                    best_x = x_candidate
                    best_z = outcome.z
                coeff, rhs = slave.cut_from_multipliers(outcome.duals)
                master_state.add_cut(coeff, rhs, is_optimality=True)
                new_multipliers.append((outcome.duals, True, None))
                optimality_cuts += 1
            else:
                coeff, rhs = slave.cut_from_multipliers(outcome.ray)
                master_state.add_cut(coeff, rhs, is_optimality=False)
                new_multipliers.append((outcome.ray, False, None))
                feasibility_cuts += 1

            if self.multi_cut:
                # Per-block strengthening cuts on the same candidate.  Each
                # block prices the tenant's relaxed sub-LP, so its cut is a
                # valid lower bound on theta_b (q(x) >= sum_b q_b(x), see
                # SlaveBlock); the aggregate cut above keeps the certificate
                # exact where blocks compete for shared capacity.  Block
                # solves are independent; results come back in block order
                # whatever the executor, so the cut sequence -- and with it
                # the decision -- is bit-identical for any worker count.
                block_outcomes = slave.evaluate_blocks(
                    x_candidate, executor=self.executor
                )
                for block, block_outcome in zip(blocks, block_outcomes):
                    if block_outcome.feasible:
                        if not outcome.feasible:
                            # Block bounds are only recorded alongside a
                            # successful aggregate solve; an infeasible
                            # aggregate keeps the round's focus on the
                            # feasibility cut.
                            continue
                        coeff, rhs = slave.cut_from_block_multipliers(
                            block, block_outcome.duals
                        )
                        master_state.add_cut(
                            coeff, rhs, is_optimality=True,
                            theta_indices=(block.index,),
                        )
                        new_multipliers.append(
                            (block_outcome.duals, True, block.index)
                        )
                        optimality_cuts += 1
                    else:
                        # A block-infeasible candidate is infeasible for the
                        # joint slave too; the block ray excludes it.
                        coeff, rhs = slave.cut_from_block_multipliers(
                            block, block_outcome.ray
                        )
                        master_state.add_cut(coeff, rhs, is_optimality=False)
                        new_multipliers.append(
                            (block_outcome.ray, False, block.index)
                        )
                        feasibility_cuts += 1

            if np.isfinite(upper_bound):
                gap_target = max(
                    self.tolerance, self.relative_tolerance * abs(upper_bound)
                )
                if upper_bound - lower_bound <= gap_target:
                    break
            if (
                self.time_limit_s is not None
                and time.perf_counter() - start > self.time_limit_s
                and best_x is not None
            ):
                time_truncated = True
                break

        if best_x is None:
            raise InfeasibleProblemError(
                "Benders decomposition found no feasible admission vector within "
                f"{self.max_iterations} iterations"
            )

        runtime = time.perf_counter() - start
        gap = max(0.0, upper_bound - lower_bound)
        message = f"UB={upper_bound:.6f} LB={lower_bound:.6f}"
        if time_truncated:
            message += " (time limit reached; incumbent not certified)"
        stats = SolverStats(
            solver="benders",
            iterations=iterations,
            runtime_s=runtime,
            optimal=not time_truncated
            and gap
            <= max(self.tolerance, self.relative_tolerance * abs(upper_bound)),
            gap=gap,
            cuts_optimality=optimality_cuts,
            cuts_feasibility=feasibility_cuts,
            message=message,
            time_truncated=time_truncated,
        )
        if self.cut_pool is not None and pool_key is not None:
            self.cut_pool.record(
                pool_key,
                slave.g_matrix.shape[0],
                new_multipliers,
                best_x,
                # A wall-clock-truncated incumbent is machine-dependent, not
                # the deterministic cold result of this instance: withhold
                # the token so the replay tier can never canonise it.
                instance_token=None if time_truncated else instance_token,
                stats=stats,
            )
        return decision_from_vectors(problem, best_x, best_z, stats)

    # ------------------------------------------------------------------ #
    # Warm start
    # ------------------------------------------------------------------ #
    def _theta_lowers(self, slave: SlaveProblem) -> np.ndarray:
        """Per-surrogate lower bounds: one per block, or one aggregate."""
        if self.multi_cut:
            return np.array(
                [block.theta_lower for block in slave.blocks()], dtype=float
            )
        return np.array([slave.objective_lower_bound()], dtype=float)

    def _instance_token(
        self, slave: SlaveProblem, cost_x: np.ndarray, theta_lowers: np.ndarray
    ) -> bytes:
        """Byte-level fingerprint of everything a cold solve of this
        instance reads: the admission objective, the slave system (matrix
        values cover the forecast-dependent floors), the surrogate bounds,
        the cut-generation mode and this solver's stopping parameters.
        Equal tokens mean a cold solve would replay the exact same
        deterministic trajectory (the multi-cut flag and block count are
        folded in because they change the cut sequence, hence the
        trajectory)."""
        theta_lowers = np.atleast_1d(np.asarray(theta_lowers, dtype=float))
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(cost_x).tobytes())
        digest.update(np.ascontiguousarray(slave.d).tobytes())
        digest.update(np.ascontiguousarray(slave.h0).tobytes())
        digest.update(np.ascontiguousarray(slave.h_matrix.data).tobytes())
        digest.update(np.ascontiguousarray(slave.g_matrix.data).tobytes())
        digest.update(np.ascontiguousarray(theta_lowers).tobytes())
        digest.update(
            struct.pack(
                "ddiddd",
                self.tolerance,
                self.relative_tolerance,
                self.max_iterations,
                float(np.sum(theta_lowers)),
                -1.0 if self.time_limit_s is None else float(self.time_limit_s),
                -1.0
                if self.master_time_limit_s is None
                else float(self.master_time_limit_s),
            )
        )
        digest.update(struct.pack("ii", int(self.multi_cut), len(theta_lowers)))
        return digest.digest()

    def _warm_fast_path(
        self,
        problem: ACRRProblem,
        slave: SlaveProblem,
        cost_x: np.ndarray,
        theta_lowers: np.ndarray,
        pool_key: tuple,
        instance_token: bytes,
        start: float,
    ) -> OrchestrationDecision | None:
        """One-iteration re-certification of the previous epoch's optimum.

        The pool's stored cuts are re-validated and seeded into a fresh
        master; one master solve then yields a *valid lower bound* for the
        new instance (the seeded cuts are proven valid inequalities) and one
        slave evaluation prices the previous admission vector on the new
        right-hand side.  When ``UB(previous x) - LB <= gap_target`` -- the
        exact stopping rule the cold loop uses -- the previous decision is
        certified gap-target-optimal for the new instance and returned after
        a single master/slave round.

        Anything less -- an infeasible slave, an open gap, a structurally
        unknown instance -- returns None and the caller runs the standard
        cold loop from a virgin master, so a fast-path miss is bit-identical
        to a solver with warm starts disabled.  The fast path never trades
        accuracy for speed: a hit carries the same optimality certificate a
        cold termination carries.

        Two tiers:

        * **replay** -- the new instance is byte-identical to the one the
          stored optimum came from (token match): a cold solve would replay
          the exact same deterministic trajectory, so the stored decision is
          returned after a single slave evaluation (bit-identity is rigorous
          here, no certificate needed);
        * **re-certification** -- the instance is perturbed: seed the
          re-validated cuts, solve the seeded master once for a valid lower
          bound, price the previous optimum with one slave evaluation, and
          accept only if the cold stopping rule closes *and* the master
          corroborates the previous optimum (re-proposes it, proves it
          attains the master optimum, or the certificate is essentially
          exact) -- a guard against "certified ties" inside a loose relative
          stopping band, where cold could settle on a different, equally
          certified vertex.
        """
        replay = self._replay_identical_instance(
            problem, slave, pool_key, instance_token, start
        )
        if replay is not None:
            return replay

        seeded_master = _MasterState(problem, cost_x, theta_lowers)
        seeded, previous_x, _token = self.cut_pool.seed_master(
            pool_key, seeded_master, slave
        )
        if not seeded or previous_x is None:
            return None
        hint = self._master_hint(seeded_master, previous_x)
        master = self._solve_master(seeded_master, hint=hint)
        if master is None:
            return None
        x_proposed, _thetas, master_objective = master
        outcome = slave.evaluate(previous_x)
        if not outcome.feasible:
            return None
        upper_bound = float(np.dot(cost_x, previous_x)) + outcome.objective
        gap = upper_bound - master_objective
        gap_target = max(self.tolerance, self.relative_tolerance * abs(upper_bound))
        if not np.isfinite(gap) or gap > gap_target:
            return None
        if not np.array_equal(x_proposed, previous_x):
            corroborated = gap <= max(
                self.tolerance, _EXACT_CERTIFICATE_REL * abs(upper_bound)
            )
            if not corroborated and hint is not None:
                attainment_tol = 1e-9 * max(1.0, abs(master_objective))
                corroborated = float(
                    np.dot(seeded_master.cost, hint)
                ) <= master_objective + attainment_tol and validate_milp_hint(
                    hint,
                    seeded_master.constraints(),
                    seeded_master.integrality,
                    seeded_master.lower,
                    seeded_master.upper,
                )
            if not corroborated:
                return None
        x_candidate = previous_x
        runtime = time.perf_counter() - start
        stats = SolverStats(
            solver="benders",
            iterations=1,
            runtime_s=runtime,
            optimal=True,
            gap=max(0.0, gap),
            cuts_optimality=1,
            cuts_feasibility=0,
            cuts_warm=seeded,
            message=(
                f"UB={upper_bound:.6f} LB={master_objective:.6f} "
                f"(warm fast path, {seeded} seeded cuts)"
            ),
        )
        self.cut_pool.record(
            pool_key,
            slave.g_matrix.shape[0],
            [(outcome.duals, True)],
            x_candidate,
            instance_token=instance_token,
            stats=stats,
        )
        return decision_from_vectors(problem, x_candidate, outcome.z, stats)

    def _replay_identical_instance(
        self,
        problem: ACRRProblem,
        slave: SlaveProblem,
        pool_key: tuple,
        instance_token: bytes,
        start: float,
    ) -> OrchestrationDecision | None:
        """Replay tier: return the stored optimum of a byte-identical instance.

        Costs one slave LP (to re-derive the reservations, which is itself
        deterministic given the admission vector and instance).  The stored
        solve's optimality/gap diagnostics are replayed verbatim -- this
        path must not claim a better certificate than the solve it shadows.
        """
        entry = self.cut_pool.entry(pool_key)
        if (
            entry is None
            or entry.best_x is None
            or entry.instance_token != instance_token
            or entry.num_rows != slave.g_matrix.shape[0]
        ):
            return None
        outcome = slave.evaluate(entry.best_x)
        if not outcome.feasible:
            return None
        previous_stats = entry.best_stats
        stats = SolverStats(
            solver="benders",
            iterations=0,
            runtime_s=time.perf_counter() - start,
            optimal=previous_stats.optimal if previous_stats else True,
            gap=previous_stats.gap if previous_stats else 0.0,
            cuts_optimality=0,
            cuts_feasibility=0,
            cuts_warm=len(entry.multipliers),
            message=(
                "replayed identical instance from the warm-start pool"
                + (f" ({previous_stats.message})" if previous_stats else "")
            ),
        )
        return decision_from_vectors(problem, entry.best_x, outcome.z, stats)

    @staticmethod
    def _master_hint(master: _MasterState, previous_x: np.ndarray) -> np.ndarray | None:
        """Lift a previous admission vector into a full master-variable hint.

        The surrogate variables are raised to the smallest values the seeded
        optimality cuts allow at ``previous_x`` (walking the cut rows in
        order and charging any shortfall to the lowest-index surrogate a row
        involves -- raising a surrogate never breaks an earlier row, the
        coefficients are non-negative), so the hint is feasible for the
        freshly seeded master whenever ``previous_x`` itself still is
        (``solve_milp`` re-validates before trusting it either way).
        """
        if previous_x.shape != (master.num_items,):
            return None
        n = master.num_items
        thetas = master.theta_lowers.copy()
        cut_matrix, cut_rhs = master.cut_rows()
        if cut_matrix is not None:
            base = np.asarray(cut_matrix[:, :n].dot(previous_x)).ravel()
            theta_coeff = np.asarray(cut_matrix[:, n:].todense())
            needed = cut_rhs - base
            for row in range(cut_matrix.shape[0]):
                support = np.flatnonzero(theta_coeff[row] > 0.5)
                if not len(support):
                    # A feasibility cut previous_x violates makes the hint
                    # invalid; solve_milp's validation rejects it then.
                    continue
                shortfall = needed[row] - float(np.sum(thetas[support]))
                if shortfall > 0.0:
                    thetas[support[0]] += shortfall
        return np.concatenate([previous_x, thetas])

    def _solve_master(
        self, master: _MasterState, hint: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, float] | None:
        """Solve the current master MILP; returns (x, thetas, objective)."""
        result = solve_milp(
            cost=master.cost,
            constraints=master.constraints(),
            integrality=master.integrality,
            lower=master.lower,
            upper=master.upper,
            time_limit_s=self.master_time_limit_s,
            hint=hint,
        )
        if not result.success and result.hint_applied:
            # Paranoia: a numerically borderline objective cutoff must never
            # turn a feasible master infeasible.  Retry cold.
            result = solve_milp(
                cost=master.cost,
                constraints=master.constraints(),
                integrality=master.integrality,
                lower=master.lower,
                upper=master.upper,
                time_limit_s=self.master_time_limit_s,
            )
        if not result.success:
            return None
        n = master.num_items
        x = np.round(result.values[:n])
        thetas = np.asarray(result.values[n:], dtype=float)
        return x, thetas, float(result.objective)
