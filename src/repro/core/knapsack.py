"""Greedy first-fit-decreasing solver for grouped 0-1 knapsack problems.

The KAC heuristic (Algorithm 2 of the paper) reduces the Benders master
problem to a single-constraint 0-1 knapsack and solves it with the classic
first-fit-decreasing policy: items are ranked by value density and packed
greedily while capacity remains.  This module implements that solver in a
generic, reusable form; the slice-specific bundling lives in
:mod:`repro.core.kac`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable


@dataclass(frozen=True)
class KnapsackItem:
    """One candidate item of a 0-1 knapsack instance.

    Attributes
    ----------
    key:
        Opaque identifier returned when the item is selected.
    value:
        Profit of selecting the item (to be maximised).
    weight:
        Capacity consumed by the item.  Non-positive weights are allowed (the
        aggregated KAC weights can be negative); such items never consume
        capacity.
    group:
        At most one item per group may be selected (constraint (25): a tenant
        is admitted through at most one compute-unit bundle).
    mandatory:
        Mandatory items are always selected first, regardless of value or
        remaining capacity (committed slices of constraint (13)).
    """

    key: Hashable
    value: float
    weight: float
    group: Hashable | None = None
    mandatory: bool = False

    def density(self) -> float:
        """Value density used for the first-fit-decreasing ordering."""
        if self.weight <= 0.0:
            return float("inf")
        return self.value / self.weight


def solve_knapsack_ffd(
    items: Iterable[KnapsackItem], capacity: float
) -> list[KnapsackItem]:
    """Select items greedily by decreasing value density.

    Returns the selected items.  Only items with strictly positive value are
    considered (selecting a value-0 item can never improve the objective);
    mandatory items are the exception and are always included.
    """
    selected: list[KnapsackItem] = []
    used_groups: set[Hashable] = set()
    remaining = float(capacity)

    candidates = list(items)
    for item in candidates:
        if not item.mandatory:
            continue
        if item.group is not None and item.group in used_groups:
            continue
        selected.append(item)
        if item.group is not None:
            used_groups.add(item.group)
        remaining -= max(item.weight, 0.0)

    optional = [
        item
        for item in candidates
        if not item.mandatory and item.value > 0.0
        and not (item.group is not None and item.group in used_groups)
    ]
    optional.sort(key=lambda item: (item.density(), item.value), reverse=True)

    for item in optional:
        if item.group is not None and item.group in used_groups:
            continue
        weight = max(item.weight, 0.0)
        if weight > remaining + 1e-12:
            continue
        selected.append(item)
        remaining -= weight
        if item.group is not None:
            used_groups.add(item.group)
    return selected
