"""Pluggable executors for fanning out independent runs.

The campaign layer (:mod:`repro.experiments.campaign`), the policy
comparison helper (:func:`repro.simulation.runner.compare_policies`), and
the multi-cut Benders slave fan-out (:mod:`repro.core.benders`) all need to
map a pure function over a list of independent work items.  The executor
contract is deliberately tiny so tests can run serially while the default
path fans out over a pool:

* ``map(fn, items, on_result=None)`` applies ``fn`` to every item and
  returns the results **in item order**; ``on_result`` is invoked with each
  result as soon as it is available (item order serially, completion order
  in the pool), which the campaign layer uses to persist records
  incrementally -- even when one run fails, every run that completed is
  persisted before the failure propagates, so an aborted sweep resumes
  from all finished work;
* a failure raised by a *run* always wins over a failure raised by the
  ``on_result`` consumer (run failures carry the root cause; the consumer
  is bookkeeping), and either failure cancels work that has not started;
* ``fn`` and the items must be picklable for the process-pool executor
  (``fn`` must be a module-level function);
* executors are stateless between ``map`` calls and may be reused.

Because every work item carries its own seed (derived via
:func:`repro.utils.rng.derive_seed`, which is stable across processes), the
results are identical whichever executor runs them -- a property the test
suite asserts explicitly.
"""

from __future__ import annotations

import concurrent.futures
from typing import Callable, Iterable, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def _consume(
    results: Iterable[R], on_result: Callable[[R], None] | None
) -> list[R]:
    collected: list[R] = []
    for result in results:
        if on_result is not None:
            on_result(result)
        collected.append(result)
    return collected


def _drain_pool(
    futures: list["concurrent.futures.Future[R]"],
    on_result: Callable[[R], None] | None,
) -> list[R]:
    """Drain ``futures`` in completion order, then return results in order.

    Failure semantics shared by the pool executors: every finished result
    still reaches ``on_result`` before a failure propagates; the first *run*
    failure takes precedence over a failure raised by ``on_result`` itself;
    either kind of failure cancels futures that have not started yet so the
    pool shuts down promptly instead of finishing doomed work.
    """
    first_failure: BaseException | None = None
    consumer_failure: BaseException | None = None

    def cancel_pending() -> None:
        # Cancel immediately, not after the drain: futures that have not
        # been handed to a worker yet are dropped, so a failed sweep stops
        # scheduling doomed work while the already-running futures finish.
        for future in futures:
            future.cancel()

    for future in concurrent.futures.as_completed(futures):
        if future.cancelled():
            continue
        try:
            result = future.result()
        except BaseException as exc:
            if first_failure is None:
                first_failure = exc
                cancel_pending()
            continue
        if on_result is not None and consumer_failure is None:
            try:
                on_result(result)
            except BaseException as exc:
                # Keep draining what still completes: those runs already
                # did their work; we only stop forwarding to the broken
                # consumer.  A run failure discovered later still wins.
                consumer_failure = exc
                cancel_pending()
    failure = first_failure or consumer_failure
    if failure is not None:
        raise failure
    return [future.result() for future in futures]


class SerialExecutor:
    """Run every item in the calling process, one after the other."""

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        on_result: Callable[[R], None] | None = None,
    ) -> list[R]:
        return _consume((fn(item) for item in items), on_result)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ProcessPoolRunExecutor:
    """Fan items out over a :class:`concurrent.futures.ProcessPoolExecutor`.

    ``max_workers=None`` lets the pool pick one worker per CPU.  The pool is
    created per ``map`` call so the executor object itself stays picklable
    and carries no OS resources between sweeps.
    """

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive (or None for the default)")
        self.max_workers = max_workers

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        on_result: Callable[[R], None] | None = None,
    ) -> list[R]:
        items = list(items)
        if len(items) <= 1:  # not worth a pool
            return _consume((fn(item) for item in items), on_result)
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=self.max_workers
        ) as pool:
            return _drain_pool([pool.submit(fn, item) for item in items], on_result)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessPoolRunExecutor(max_workers={self.max_workers})"


class ThreadPoolRunExecutor:
    """Fan items out over a :class:`concurrent.futures.ThreadPoolExecutor`.

    Same contract and failure semantics as :class:`ProcessPoolRunExecutor`
    but without the pickling requirement, so closures and bound methods
    work.  This is the executor of choice for workloads that release the
    GIL (HiGHS LP solves) or that need shared in-process state (the Benders
    cut pool).
    """

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive (or None for the default)")
        self.max_workers = max_workers

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        on_result: Callable[[R], None] | None = None,
    ) -> list[R]:
        items = list(items)
        if len(items) <= 1:  # not worth a pool
            return _consume((fn(item) for item in items), on_result)
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_workers
        ) as pool:
            return _drain_pool([pool.submit(fn, item) for item in items], on_result)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadPoolRunExecutor(max_workers={self.max_workers})"


def default_executor(workers: int | None) -> SerialExecutor | ProcessPoolRunExecutor:
    """Executor selection used by the CLI: ``0``/``1``/``None`` mean serial."""
    if workers is None or workers <= 1:
        return SerialExecutor()
    return ProcessPoolRunExecutor(max_workers=workers)


def resolve_executor(
    executor: "SerialExecutor | ProcessPoolRunExecutor | ThreadPoolRunExecutor | None",
    workers: int | None = None,
):
    """Resolve the ``executor``/``workers`` pair accepted by the sweep APIs.

    An explicit executor object wins; otherwise ``workers`` picks one via
    :func:`default_executor` (serial when ``workers`` is ``None``).
    """
    if executor is not None:
        return executor
    return default_executor(workers)


__all__ = [
    "SerialExecutor",
    "ProcessPoolRunExecutor",
    "ThreadPoolRunExecutor",
    "default_executor",
    "resolve_executor",
]
