"""Small argument-validation helpers shared by the public API."""

from __future__ import annotations


def ensure_positive(value: float, name: str) -> float:
    """Return ``value`` if strictly positive, otherwise raise ``ValueError``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return float(value)


def ensure_non_negative(value: float, name: str) -> float:
    """Return ``value`` if >= 0, otherwise raise ``ValueError``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def ensure_in_range(value: float, low: float, high: float, name: str) -> float:
    """Return ``value`` if within [low, high], otherwise raise ``ValueError``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return float(value)


def ensure_probability(value: float, name: str) -> float:
    """Return ``value`` if it is a valid probability in [0, 1]."""
    return ensure_in_range(value, 0.0, 1.0, name)
