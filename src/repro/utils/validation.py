"""Small argument-validation helpers shared by the public API.

Every helper follows one contract: on success the validated value is
returned as a ``float`` (or ``int`` for the integer helpers); on failure a
``ValueError`` is raised whose message always names the offending argument,
states the admissible range and quotes the value received --
``"alpha must be in [0.0, 1.0], got 1.5"``.  Non-numeric and NaN inputs are
rejected with the same uniform message shape (instead of surfacing as
``TypeError`` from a comparison), so callers can rely on catching
``ValueError`` alone.
"""

from __future__ import annotations

import math
from numbers import Real
from typing import Sequence


def _as_real(value, name: str) -> float:
    """Coerce ``value`` to ``float``, rejecting non-numbers and NaN."""
    if isinstance(value, bool) or not isinstance(value, Real):
        raise ValueError(
            f"{name} must be a real number, got {value!r} of type {type(value).__name__}"
        )
    value = float(value)
    if math.isnan(value):
        raise ValueError(f"{name} must be a real number, got NaN")
    return value


def ensure_positive(value: float, name: str) -> float:
    """Return ``value`` if strictly positive, otherwise raise ``ValueError``."""
    value = _as_real(value, name)
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def ensure_non_negative(value: float, name: str) -> float:
    """Return ``value`` if >= 0, otherwise raise ``ValueError``."""
    value = _as_real(value, name)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def ensure_in_range(value: float, low: float, high: float, name: str) -> float:
    """Return ``value`` if within [low, high], otherwise raise ``ValueError``."""
    value = _as_real(value, name)
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def ensure_probability(value: float, name: str) -> float:
    """Return ``value`` if it is a valid probability in [0, 1]."""
    return ensure_in_range(value, 0.0, 1.0, name)


def _as_integral(value, name: str, kind: str) -> int:
    """Coerce ``value`` to ``int``, rejecting non-numbers, NaN/inf and fractions."""
    if isinstance(value, bool) or not isinstance(value, Real):
        raise ValueError(
            f"{name} must be {kind}, got {value!r} of type {type(value).__name__}"
        )
    as_float = float(value)
    if not math.isfinite(as_float) or as_float != int(as_float):
        raise ValueError(f"{name} must be {kind}, got {value!r}")
    return int(as_float)


def ensure_positive_int(value, name: str) -> int:
    """Return ``value`` as ``int`` if it is a strictly positive integer."""
    value = _as_integral(value, name, "a positive integer")
    if value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return value


def ensure_non_negative_int(value, name: str) -> int:
    """Return ``value`` as ``int`` if it is a non-negative integer."""
    value = _as_integral(value, name, "a non-negative integer")
    if value < 0:
        raise ValueError(f"{name} must be a non-negative integer, got {value!r}")
    return value


def ensure_choice(value, choices: Sequence, name: str):
    """Return ``value`` if it is one of ``choices``, otherwise raise ``ValueError``."""
    if value not in choices:
        rendered = ", ".join(repr(choice) for choice in choices)
        raise ValueError(f"{name} must be one of ({rendered}), got {value!r}")
    return value


def ensure_ordered_pair(
    value, name: str, low: float | None = None, high: float | None = None
) -> tuple[float, float]:
    """Validate a ``(min, max)`` pair, optionally bounded to [low, high].

    Used by the scenario-generation specs, whose knobs are ranges sampled
    uniformly; accepts any two-element sequence and returns a float tuple.
    """
    if not isinstance(value, Sequence) or isinstance(value, (str, bytes)) or len(value) != 2:
        raise ValueError(f"{name} must be a (min, max) pair, got {value!r}")
    lo = _as_real(value[0], f"{name}[0]")
    hi = _as_real(value[1], f"{name}[1]")
    if lo > hi:
        raise ValueError(f"{name} must satisfy min <= max, got {value!r}")
    if (low is not None and lo < low) or (high is not None and hi > high):
        bounds = f"[{'-inf' if low is None else low}, {'inf' if high is None else high}]"
        raise ValueError(f"{name} must lie within {bounds}, got {value!r}")
    return (lo, hi)
