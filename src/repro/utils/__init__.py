"""Shared utilities: seeded random streams, statistics helpers, validation."""

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.stats import (
    EmpiricalCDF,
    mean_and_stderr,
    relative_gain,
    running_mean,
)
from repro.utils.validation import (
    ensure_positive,
    ensure_non_negative,
    ensure_in_range,
    ensure_probability,
)

__all__ = [
    "make_rng",
    "spawn_rngs",
    "EmpiricalCDF",
    "mean_and_stderr",
    "relative_gain",
    "running_mean",
    "ensure_positive",
    "ensure_non_negative",
    "ensure_in_range",
    "ensure_probability",
]
