"""Reproducible random number generation.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator` that is created here.  Components never call
the module-level numpy functions, so two runs with the same seed produce
identical traces, forecasts and admission decisions.
"""

from __future__ import annotations

import zlib
from typing import Sequence

import numpy as np

_DEFAULT_SEED = 20181204  # CoNEXT'18 presentation date, purely cosmetic.


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a new :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        Seed for the underlying PCG64 bit generator.  ``None`` selects the
        library default so that examples are reproducible out of the box.
    """
    if seed is None:
        seed = _DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed.

    Used when several tenants (or several simulation repetitions) need
    independent demand streams that are still jointly reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seed_seq = np.random.SeedSequence(_DEFAULT_SEED if seed is None else seed)
    return [np.random.default_rng(child) for child in seed_seq.spawn(count)]


def derive_seed(seed: int | None, *labels: int | str) -> int:
    """Derive a deterministic child seed from a base seed and labels.

    The labels (e.g. tenant name, epoch index) are hashed into the seed
    sequence entropy so that distinct labels give independent streams.
    String labels use CRC32 rather than the built-in ``hash``: the latter is
    salted per process (PYTHONHASHSEED), which silently made every run draw
    different demand traces and oracle forecasts.
    """
    base = _DEFAULT_SEED if seed is None else seed
    entropy: list[int] = [base]
    for label in labels:
        if isinstance(label, int):
            entropy.append(label & 0xFFFFFFFF)
        else:
            entropy.append(zlib.crc32(str(label).encode("utf-8")) & 0xFFFFFFFF)
    seq = np.random.SeedSequence(entropy)
    return int(seq.generate_state(1)[0])


def choice_without_replacement(
    rng: np.random.Generator, items: Sequence, count: int
) -> list:
    """Sample ``count`` distinct items, preserving the original ordering."""
    if count > len(items):
        raise ValueError(
            f"cannot sample {count} items from a sequence of length {len(items)}"
        )
    indices = rng.choice(len(items), size=count, replace=False)
    return [items[i] for i in sorted(indices)]
