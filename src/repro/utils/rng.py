"""Reproducible random number generation.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator` that is created here.  Components never call
the module-level numpy functions, so two runs with the same seed produce
identical traces, forecasts and admission decisions.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from typing import Sequence

import numpy as np

_DEFAULT_SEED = 20181204  # CoNEXT'18 presentation date, purely cosmetic.


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a new :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        Seed for the underlying PCG64 bit generator.  ``None`` selects the
        library default so that examples are reproducible out of the box.
    """
    if seed is None:
        seed = _DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed.

    Used when several tenants (or several simulation repetitions) need
    independent demand streams that are still jointly reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seed_seq = np.random.SeedSequence(_DEFAULT_SEED if seed is None else seed)
    return [np.random.default_rng(child) for child in seed_seq.spawn(count)]


def derive_seed(seed: int | None, *labels: int | str) -> int:
    """Derive a deterministic child seed from a base seed and labels.

    The labels (e.g. tenant name, epoch index) are hashed into the seed
    sequence entropy so that distinct labels give independent streams.
    String labels use CRC32 rather than the built-in ``hash``: the latter is
    salted per process (PYTHONHASHSEED), which silently made every run draw
    different demand traces and oracle forecasts.
    """
    base = _DEFAULT_SEED if seed is None else seed
    entropy: list[int] = [base]
    for label in labels:
        if isinstance(label, int):
            entropy.append(label & 0xFFFFFFFF)
        else:
            entropy.append(zlib.crc32(str(label).encode("utf-8")) & 0xFFFFFFFF)
    seq = np.random.SeedSequence(entropy)
    return int(seq.generate_state(1)[0])


def normalize_spec(value):
    """Reduce a JSON-like spec tree to the shapes a JSON round trip produces.

    Tuples become lists, sets become sorted lists, numpy scalars unbox to
    Python scalars; mappings and sequences recurse.  Both the content hash
    (:func:`spec_hash`) and the campaign layer's serialisation route through
    this single helper, so a spec hashes, persists and reloads to exactly
    the same structure.  Values with no JSON shape raise ``TypeError``.
    """
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(key): normalize_spec(val) for key, val in value.items()}
    if isinstance(value, (set, frozenset)):
        return [normalize_spec(item) for item in sorted(value)]
    if isinstance(value, (list, tuple)):
        return [normalize_spec(item) for item in value]
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    raise TypeError(f"cannot hash {type(value).__name__} values in a run spec")


def spec_hash(spec: object) -> str:
    """Content hash of a JSON-like object, stable across processes and runs.

    The object is normalised via :func:`normalize_spec`, serialised as
    canonical JSON (sorted keys, no whitespace) and hashed with SHA-256.
    The campaign layer keys its on-disk run cache by this hash, so two
    structurally identical specs -- built in different processes, sessions
    or machines -- resolve to the same cached record; ``(0.2, 0.5)`` and
    ``[0.2, 0.5]`` hash identically.
    """
    payload = json.dumps(
        normalize_spec(spec), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def derive_spec_seed(seed: int | None, spec: object) -> int:
    """Derive a per-run seed from a base seed and a JSON-like spec.

    Equivalent to ``derive_seed(seed, spec_hash(spec))`` -- the spec's
    content hash is folded into the seed-sequence entropy, so every distinct
    grid point gets an independent, process-stable demand stream.
    """
    return derive_seed(seed, spec_hash(spec))


def choice_without_replacement(
    rng: np.random.Generator, items: Sequence, count: int
) -> list:
    """Sample ``count`` distinct items, preserving the original ordering."""
    if count > len(items):
        raise ValueError(
            f"cannot sample {count} items from a sequence of length {len(items)}"
        )
    indices = rng.choice(len(items), size=count, replace=False)
    return [items[i] for i in sorted(indices)]
