"""Statistical helpers used across the evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class EmpiricalCDF:
    """Empirical cumulative distribution function of a sample.

    Used to reproduce the path-capacity and path-delay CDFs of Fig. 4(d)-(e).
    """

    values: tuple[float, ...]

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "EmpiricalCDF":
        ordered = tuple(sorted(float(s) for s in samples))
        if not ordered:
            raise ValueError("cannot build a CDF from an empty sample")
        return cls(values=ordered)

    def __len__(self) -> int:
        return len(self.values)

    def evaluate(self, x: float) -> float:
        """Return P[X <= x]."""
        return float(np.searchsorted(self.values, x, side="right")) / len(self.values)

    def quantile(self, q: float) -> float:
        """Return the q-quantile (0 <= q <= 1) of the sample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(np.asarray(self.values), q))

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (sorted values, cumulative probabilities) for plotting/tables."""
        xs = np.asarray(self.values)
        ps = np.arange(1, len(xs) + 1) / len(xs)
        return xs, ps

    def summary(self) -> dict[str, float]:
        xs = np.asarray(self.values)
        return {
            "min": float(xs.min()),
            "p25": float(np.quantile(xs, 0.25)),
            "median": float(np.quantile(xs, 0.5)),
            "p75": float(np.quantile(xs, 0.75)),
            "max": float(xs.max()),
            "mean": float(xs.mean()),
        }


def mean_and_stderr(samples: Sequence[float]) -> tuple[float, float]:
    """Return the sample mean and its standard error.

    The paper runs each simulation "until the mean revenue has a standard
    error lower than 2%"; the simulation engine uses this helper for that
    stopping rule.
    """
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one sample")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, float("inf")
    stderr = float(arr.std(ddof=1) / np.sqrt(arr.size))
    return mean, stderr


def relative_gain(value: float, baseline: float) -> float:
    """Percentage gain of ``value`` over ``baseline`` (Fig. 5's y-axis).

    Returns 0 when the baseline is zero and the value is also zero; raises if
    the baseline is zero but the value is not, because a relative gain is then
    undefined (the paper never hits that case: the no-overbooking baseline
    always earns something).
    """
    if baseline == 0:
        if value == 0:
            return 0.0
        raise ZeroDivisionError("relative gain undefined for a zero baseline")
    return 100.0 * (value - baseline) / abs(baseline)


def running_mean(samples: Sequence[float]) -> np.ndarray:
    """Cumulative running mean of a sample sequence."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        return arr
    return np.cumsum(arr) / np.arange(1, arr.size + 1)


def standard_error_below(samples: Sequence[float], threshold_fraction: float) -> bool:
    """True when the standard error of the mean is below a fraction of |mean|.

    ``threshold_fraction=0.02`` reproduces the paper's 2% stopping criterion.
    """
    if threshold_fraction <= 0:
        raise ValueError("threshold_fraction must be positive")
    mean, stderr = mean_and_stderr(samples)
    if mean == 0:
        return stderr == 0
    return stderr <= threshold_fraction * abs(mean)
