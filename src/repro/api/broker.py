"""The northbound SliceBroker facade: the supported entry point to the
control plane.

The paper's OVNES broker exposes a northbound interface through which tenants
request, renew and release slices.  :class:`SliceBroker` is that surface for
this reproduction: a thin, versioned, transport-agnostic facade over the
:class:`~repro.controlplane.orchestrator.E2EOrchestrator` that

* accepts :class:`~repro.api.dtos.SliceRequestV1` DTOs (or raw payload
  dictionaries, or in-process :class:`~repro.core.slices.SliceRequest`
  objects) and returns :class:`~repro.api.dtos.AdmissionTicket` receipts,
  with idempotent client tokens and atomic batch submission;
* translates every internal failure into the structured
  :class:`~repro.api.errors.BrokerError` taxonomy -- bare ``ValueError`` /
  ``SliceStateError`` never cross the boundary;
* publishes lifecycle events (ADMITTED / REJECTED / EXPIRED / RENEWED /
  RELEASED) on an :class:`~repro.api.events.EventBus` *after* the registry
  and controllers are consistent for the epoch;
* drives decision epochs through :meth:`advance_epoch`, returning an
  :class:`~repro.api.dtos.EpochReport` DTO instead of raw solver objects.

Routing through the facade is *bit-identical* to calling the orchestrator
directly: the broker adds intake validation, error translation and event
derivation around the exact same call sequence, and never perturbs the solver
path (the golden-run harness and the differential sweeps pin this).

In-process drivers (the simulation engine, benchmarks) additionally need the
raw decision/problem objects of the last epoch; the broker exposes them as
documented escape hatches (:attr:`last_decision`, :attr:`last_problem`,
:meth:`active_slices`) so such drivers still route every *mutation* through
the facade.
"""

from __future__ import annotations

import functools
import json
import threading
from typing import Any, Mapping, Sequence

from repro.api.dtos import (
    AdmissionTicket,
    EpochReport,
    QuoteResponse,
    SliceRequestV1,
    SliceStatus,
)
from repro.api.errors import (
    CapacityError,
    DuplicateSliceError,
    LifecycleError,
    SolverError,
    ValidationError,
)
from repro.api.events import EventBus, LifecycleEvent, LifecycleEventKind
from repro.controlplane.orchestrator import E2EOrchestrator, OrchestratorConfig
from repro.controlplane.slice_manager import SliceDescriptor
from repro.controlplane.state import (
    TERMINAL_STATES,
    SliceRecord,
    SliceState,
    SliceStateError,
)
from repro.core.forecast_inputs import ForecastInput
from repro.core.slices import SliceRequest
from repro.faults.injector import ChaosSolver, FaultInjector, attach_injector
from repro.faults.plan import FaultPlan
from repro.faults.safeguard import TIER_PRIMARY, HealthMonitor, SafeguardedSolver


def _coerce_request(
    request: SliceRequestV1 | SliceRequest | Mapping[str, Any],
) -> SliceRequest:
    """Accept the three supported request forms, normalised to the core type."""
    if isinstance(request, SliceRequest):
        return request
    if isinstance(request, SliceRequestV1):
        return request.to_request()
    if isinstance(request, Mapping):
        return SliceRequestV1.from_dict(request).to_request()
    raise ValidationError(
        "slice request must be a SliceRequestV1, a SliceRequest or a payload "
        f"mapping, got {type(request).__name__}"
    )


def _request_fingerprint(request: SliceRequest) -> str:
    """Canonical content fingerprint used to police idempotency-token reuse.

    Covers the V1 wire fields plus the in-process-only fields (``committed``,
    ``metadata``) so two :class:`SliceRequest` objects that differ anywhere
    the solver can see never fingerprint as the same payload.
    """
    payload = SliceRequestV1.from_request(request).to_dict()
    payload["committed"] = request.committed
    payload["metadata"] = sorted(
        (str(key), repr(value)) for key, value in request.metadata.items()
    )
    return json.dumps(payload, sort_keys=True)


def _request_name_hint(
    request: SliceRequestV1 | SliceRequest | Mapping[str, Any],
) -> str | None:
    """Best-effort slice name of an un-coerced request (None if malformed)."""
    if isinstance(request, (SliceRequest, SliceRequestV1)):
        return request.name
    if isinstance(request, Mapping):
        name = request.get("name")
        return name if isinstance(name, str) else None
    return None


#: Default bound on the idempotency-token and released/withdrawn-marker
#: caches.  A long-running broker serving heavy multi-client traffic must not
#: grow per-request state without limit; when a cache overflows, entries are
#: evicted oldest-first with fail-safe exclusions (a still-queued
#: submission's token is never dropped -- its retry contract stays intact).
#: Evicting a marker only degrades how an *old, terminal* slice is reported:
#: a released slice's status falls back to "expired", and a released
#: never-registered (withdrawn-while-queued) name falls back to "unknown
#: slice"; live state is never affected.
DEFAULT_CACHE_LIMIT = 65536


def _evict_oldest(cache: dict, limit: int) -> None:
    """FIFO-evict until ``cache`` fits ``limit`` (dicts preserve insertion order)."""
    if limit < 1:
        # A zero/negative limit would busy-evict every entry including the
        # one just inserted, silently breaking same-call replay; the broker
        # constructor rejects such limits, this guard catches direct misuse.
        raise ValueError(f"cache limit must be >= 1, got {limit}")
    while len(cache) > limit:
        del cache[next(iter(cache))]


def _synchronized(method):
    """Run ``method`` under the broker's admission-path lock (reentrant)."""

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper


class SliceBroker:
    """Versioned northbound service API over one orchestrator instance.

    Thread safety: every mutating entry point (``submit``, ``submit_batch``,
    ``release``, ``advance_epoch``, monitoring/forecast feeds, chaos controls)
    and the consistent-snapshot reads (``status``, ``list_slices``) serialise
    on one reentrant admission-path lock, so concurrent transport sessions
    can share a broker without torn caches or double-enqueued idempotent
    retries.  ``quote`` is a pure read by contract and deliberately takes no
    lock.  With ``max_pending`` set, intake applies backpressure: a submit
    that would grow the queue past the bound raises the 429-style
    :class:`CapacityError` instead of accepting unbounded work.
    """

    def __init__(
        self,
        topology=None,
        solver=None,
        *,
        config: OrchestratorConfig | None = None,
        orchestrator: E2EOrchestrator | None = None,
        cache_limit: int = DEFAULT_CACHE_LIMIT,
        max_pending: int | None = None,
        **orchestrator_kwargs,
    ):
        if orchestrator is None:
            if topology is None or solver is None:
                raise ValidationError(
                    "SliceBroker needs either an orchestrator or a (topology, solver) pair"
                )
            orchestrator = E2EOrchestrator(
                topology, solver, config=config, **orchestrator_kwargs
            )
        elif (
            topology is not None
            or solver is not None
            or config is not None
            or orchestrator_kwargs
        ):
            raise ValidationError(
                "pass either an orchestrator or (topology, solver, config, ...), "
                "not both"
            )
        self._orchestrator = orchestrator
        #: Lifecycle event bus; subscribe instead of polling the registry.
        self.events = EventBus()
        self._tickets_by_token: dict[str, tuple[str, AdmissionTicket]] = {}
        #: name -> client token of the *currently queued* submission under
        #: that name (if any): withdrawing the queued request must invalidate
        #: exactly that token's ticket, and no other.
        self._token_by_queued_name: dict[str, str] = {}
        self._ticket_counter = 0
        #: name -> renewal count at release time, to report "released" (not
        #: "expired") until the name is renewed into a fresh life.
        self._released: dict[str, int] = {}
        #: Queued submissions withdrawn before ever reaching the registry:
        #: lets status() keep answering "released" for them instead of
        #: claiming the name was never submitted.
        self._withdrawn: dict[str, tuple[int, int]] = {}
        #: FIFO bound applied to the token and released-marker caches.
        #: ``cache_limit < 1`` is rejected outright (a zero limit would
        #: busy-evict the entry a tokened submit just inserted, breaking
        #: same-call replay) rather than silently clamped.
        if int(cache_limit) != cache_limit or cache_limit < 1:
            raise ValidationError(
                f"cache_limit must be an integer >= 1, got {cache_limit!r}"
            )
        self._cache_limit = int(cache_limit)
        if max_pending is not None and (int(max_pending) != max_pending or max_pending < 1):
            raise ValidationError(
                f"max_pending must be None or an integer >= 1, got {max_pending!r}"
            )
        #: Intake-queue bound; ``None`` disables backpressure.
        self._max_pending = None if max_pending is None else int(max_pending)
        #: One reentrant lock serialises the whole admission path (intake,
        #: release, epochs, cache maintenance).  Reentrant because
        #: ``submit_batch`` drives ``submit`` and error paths may re-enter.
        self._lock = threading.RLock()
        self._last_decision = None
        #: Registry snapshot (state + renewal count per name) as of the last
        #: *published* events.  Persisting it across a failed advance_epoch
        #: means transitions the failed epoch already committed (e.g. an
        #: expiry from expire_due before the solver raised) are still derived
        #: -- and published -- on the next successful epoch instead of being
        #: silently dropped.  Seeded from the wrapped orchestrator's registry
        #: so wrapping an already-driven orchestrator does not replay its
        #: whole history as spurious first-epoch events.
        registry = self._orchestrator.registry
        self._event_baseline: dict[str, tuple[SliceState, int]] = {
            record.name: (record.state, registry.renewal_count(record.name))
            for record in registry.all_records()
        }
        #: Broker health state machine.  Shared with the orchestrator's
        #: solver when that is a :class:`SafeguardedSolver` (its chain gates
        #: safe-mode probes on the same monitor); otherwise broker-owned.
        solver_health = getattr(self._orchestrator.solver, "health", None)
        self.health: HealthMonitor = (
            solver_health
            if isinstance(solver_health, HealthMonitor)
            else HealthMonitor()
        )
        self._fault_injector: FaultInjector | None = getattr(
            self._orchestrator, "fault_injector", None
        )

    # ------------------------------------------------------------------ #
    # In-process accessors (documented escape hatches; all read-only)
    # ------------------------------------------------------------------ #
    @property
    def orchestrator(self) -> E2EOrchestrator:
        """The wrapped orchestrator (for tests/benchmarks tweaking config)."""
        return self._orchestrator

    @property
    def last_decision(self):
        """Raw decision of the most recent :meth:`advance_epoch` (idle included)."""
        return self._last_decision

    @property
    def last_problem(self):
        """The AC-RR problem of the last non-idle epoch (``None`` after idle)."""
        return self._orchestrator.last_problem

    @property
    def pending_count(self) -> int:
        """Requests queued at intake, not yet released into an epoch batch."""
        return self._orchestrator.slice_manager.pending_count

    def active_slices(self, epoch: int) -> list[SliceRecord]:
        """Registry records of slices that must stay provisioned at ``epoch``."""
        return self._orchestrator.registry.active_slices(epoch)

    def admitted_names(self) -> list[str]:
        """Names currently in the ADMITTED state, in registry order."""
        return self._orchestrator.registry.admitted_names()

    def rejected_names(self) -> list[str]:
        """Names currently in the REJECTED state, in registry order."""
        return self._orchestrator.registry.rejected_names()

    # ------------------------------------------------------------------ #
    # Submission (single, batch, deferred, idempotent)
    # ------------------------------------------------------------------ #
    def submit(
        self,
        request: SliceRequestV1 | SliceRequest | Mapping[str, Any],
        *,
        client_token: str | None = None,
    ) -> AdmissionTicket:
        """Queue one slice request for admission at its arrival epoch.

        Deferred submission is the default semantics: a request whose
        ``arrival_epoch`` lies in the future stays queued until that epoch's
        batch is collected.  With ``client_token``, resubmitting the same
        payload under the same token returns the original ticket without
        enqueueing a second copy (at-most-once intake over lossy transports);
        reusing a token with a *different* payload raises
        :class:`DuplicateSliceError`.
        """
        core_request = _coerce_request(request)
        if client_token is not None:
            # Fingerprinting converts through the V1 DTO, whose stricter
            # domain checks can reject an in-process SliceRequest -- keep
            # that a structured error, not a bare ValueError.  Pure
            # computation: deliberately outside the admission lock.
            try:
                fingerprint = _request_fingerprint(core_request)
            except (TypeError, ValueError) as error:
                raise ValidationError(
                    f"invalid slice request: {error}",
                    details={"slice_name": core_request.name},
                ) from error
        # The replay check, the enqueue and the cache store are one atomic
        # step: two concurrent submits racing on the same token must resolve
        # into exactly one enqueued ticket, with the loser replaying it.
        with self._lock:
            if client_token is not None:
                replay = self._tickets_by_token.get(client_token)
                if replay is not None:
                    stored_fingerprint, ticket = replay
                    if stored_fingerprint != fingerprint:
                        raise DuplicateSliceError(
                            f"client token {client_token!r} was already used for a "
                            "different request payload",
                            details={"client_token": client_token},
                        )
                    return ticket
            ticket = self._enqueue(core_request, client_token)
            if client_token is not None:
                self._tickets_by_token[client_token] = (fingerprint, ticket)
                self._evict_replay_cache()
            return ticket

    def _evict_replay_cache(self) -> None:
        """Bound the token-replay cache without breaking live retries.

        Evicting a *still-queued* submission's token would turn its
        legitimate lost-response retry into a DuplicateSliceError, so only
        entries whose slice has left the intake queue are dropped (oldest
        first); the remainder is bounded by the real queue length.

        Incremental on the hot path: a token is still queued iff the
        queued-name track (``_token_by_queued_name``, maintained at enqueue /
        withdraw / collection) still maps its slice back to it -- an O(1)
        probe instead of rebuilding a name set from the whole intake queue.
        Each call pops only the overflow; a protected (still-queued) entry
        met during the scan is re-queued at the FIFO tail, so across calls
        every entry is examined O(1) amortised times per eviction instead of
        the cache being rescanned end-to-end on every over-limit submit.
        """
        overflow = len(self._tickets_by_token) - self._cache_limit
        if overflow <= 0:
            return
        # At most one full pass: if every entry is protected, the cache
        # legitimately exceeds the limit (it is then bounded by the real
        # queue length) and the scan must not spin.
        remaining_scans = len(self._tickets_by_token)
        while overflow > 0 and remaining_scans > 0:
            remaining_scans -= 1
            token = next(iter(self._tickets_by_token))
            entry = self._tickets_by_token.pop(token)
            if self._token_by_queued_name.get(entry[1].slice_name) == token:
                # Still queued: keep its retry contract, age it from now.
                self._tickets_by_token[token] = entry
            else:
                overflow -= 1

    def submit_batch(
        self,
        requests: Sequence[SliceRequestV1 | SliceRequest | Mapping[str, Any]],
        *,
        client_tokens: Sequence[str | None] | None = None,
    ) -> list[AdmissionTicket]:
        """Queue several requests atomically: all are accepted or none are.

        If any request fails validation or intake, every request this call
        already enqueued is withdrawn again before the error propagates --
        the queue is left exactly as it was.  Token replays are served from
        the token cache and are never rolled back (they were accepted by an
        earlier call).
        """
        if client_tokens is not None and len(client_tokens) != len(requests):
            raise ValidationError(
                "client_tokens must be None or match the requests one-to-one",
                details={"requests": len(requests), "client_tokens": len(client_tokens)},
            )
        tokens: Sequence[str | None] = client_tokens or [None] * len(requests)
        tickets: list[AdmissionTicket] = []
        enqueued: list[tuple[str, str | None]] = []
        withdrawn_markers: dict[str, tuple[int, int]] = {}
        completed = False
        self._lock.acquire()
        try:
            for request, token in zip(requests, tokens):
                # Snapshot only this request's released-withdrawal marker
                # (popped by _enqueue) so a rollback can restore it; copying
                # the whole cache per batch would be O(cache_limit).
                name_hint = _request_name_hint(request)
                if name_hint is not None and name_hint in self._withdrawn:
                    withdrawn_markers.setdefault(name_hint, self._withdrawn[name_hint])
                was_replay = token is not None and token in self._tickets_by_token
                ticket = self.submit(request, client_token=token)
                if not was_replay:
                    enqueued.append((ticket.slice_name, token))
                tickets.append(ticket)
            completed = True
        finally:
            # Atomicity lives in a success-flag ``finally``, not an except
            # clause: nothing is caught (structured broker errors and
            # unexpected bugs alike propagate unchanged, per the error
            # taxonomy), yet the queue is restored on *every* abnormal exit,
            # including BaseExceptions a bare ``except Exception`` would
            # have missed.
            # Every entry in `enqueued` was a fresh (non-replay) submission,
            # so any token it carries was inserted by this batch and is
            # popped outright -- no pre-batch token snapshot needed.
            try:
                if not completed:
                    for name, token in reversed(enqueued):
                        self._orchestrator.slice_manager.withdraw(name)
                        self._token_by_queued_name.pop(name, None)
                        if token is not None:
                            self._tickets_by_token.pop(token, None)
                        if name in withdrawn_markers:
                            # _enqueue popped the released-withdrawal marker;
                            # the rollback must restore it so status() keeps
                            # answering "released" exactly as before the
                            # batch.
                            self._withdrawn[name] = withdrawn_markers[name]
            finally:
                self._lock.release()
        return tickets

    def _enqueue(self, request: SliceRequest, client_token: str | None) -> AdmissionTicket:
        if not request.name:
            # The core SliceRequest permits an empty name; the northbound
            # boundary does not (V1 DTOs reject it) -- enforce it here so
            # in-process submissions behave the same with or without a token.
            raise ValidationError("slice name must be non-empty")
        manager = self._orchestrator.slice_manager
        if manager.pending_request(request.name) is not None:
            raise DuplicateSliceError(
                f"a request named {request.name!r} is already queued",
                details={"slice_name": request.name},
            )
        if self._max_pending is not None and manager.pending_count >= self._max_pending:
            # Backpressure: shed load instead of growing the intake queue
            # without bound.  Raised before any state is touched, so a
            # rejected submit leaves no trace (no ticket, no token entry).
            raise CapacityError(
                f"intake queue is full ({manager.pending_count} pending, "
                f"bound {self._max_pending}); retry after the next epoch",
                details={
                    "slice_name": request.name,
                    "pending": manager.pending_count,
                    "max_pending": self._max_pending,
                },
            )
        try:
            # Intake validation (live-name renewals, queue uniqueness) lives
            # in the orchestrator; the broker only translates its errors.
            self._orchestrator.submit_request(request)
        except SliceStateError as error:
            raise LifecycleError(str(error), details={"slice_name": request.name}) from error
        except ValueError as error:
            raise ValidationError(str(error), details={"slice_name": request.name}) from error
        if client_token is not None:
            self._token_by_queued_name[request.name] = client_token
            if len(self._token_by_queued_name) > max(
                self._cache_limit, manager.pending_count
            ):
                # Unlike the replay caches, evicting a *still-queued* entry
                # would silently re-enable stale-ticket replay after a
                # cancel; prune only entries whose name has left the queue
                # (the rest is bounded by the real queue length).  By
                # invariant the track only holds queued names (withdraw,
                # rollback and collection all pop), so stale entries can
                # only exist -- and a scan only pays off -- while the track
                # outgrows the queue itself; the hot path stays O(1).
                still_pending = {r.name for r in manager.pending_requests}
                self._token_by_queued_name = {
                    name: token
                    for name, token in self._token_by_queued_name.items()
                    if name in still_pending
                }
        else:
            self._token_by_queued_name.pop(request.name, None)
        self._withdrawn.pop(request.name, None)
        self._ticket_counter += 1
        return AdmissionTicket(
            ticket_id=f"tkt-{self._ticket_counter:06d}",
            slice_name=request.name,
            arrival_epoch=request.arrival_epoch,
            descriptor=SliceDescriptor.from_request(request),
            client_token=client_token,
        )

    # ------------------------------------------------------------------ #
    # Chaos and degraded operation
    # ------------------------------------------------------------------ #
    @_synchronized
    def enable_chaos(
        self,
        plan: FaultPlan,
        *,
        max_retries: int = 2,
        recovery_epochs: int = 3,
        probe_interval: int = 4,
    ) -> FaultInjector:
        """Arm a fault plan and wrap the solver in the safeguarded chain.

        Builds ``SafeguardedSolver(ChaosSolver(current solver, injector))``
        around the orchestrator's solver (unless it already is a
        :class:`SafeguardedSolver`, in which case only its primary is
        proxied), binds the injector to every hook point, and ties the
        broker's health machine to the chain.  With ``FaultPlan.empty()``
        the instrumented run is byte-identical to an uninstrumented one.
        """
        injector = FaultInjector(plan)
        attach_injector(self._orchestrator, injector)
        solver = self._orchestrator.solver
        if isinstance(solver, SafeguardedSolver):
            solver.primary = ChaosSolver(solver.primary, injector)
            chain = solver
        else:
            chain = SafeguardedSolver(
                ChaosSolver(solver, injector),
                max_retries=max_retries,
                health=HealthMonitor(
                    recovery_epochs=recovery_epochs, probe_interval=probe_interval
                ),
            )
            self._orchestrator.solver = chain
        self.health = chain.health
        self._fault_injector = injector
        return injector

    @_synchronized
    def inject_link_failure(
        self, link_keys: Sequence[tuple[str, str]], capacity_factor: float
    ) -> None:
        """Schedule a mid-epoch link-capacity loss for the next epoch.

        The named links lose ``1 - capacity_factor`` of their capacity when
        the next ``advance_epoch`` starts; displaced slices are re-homed
        through the renewal path and reported in ``EpochReport.rehomed``.
        """
        try:
            self._orchestrator.schedule_link_failure(
                [tuple(key) for key in link_keys], capacity_factor
            )
        except (KeyError, ValueError) as error:
            raise ValidationError(
                f"invalid link failure: {error}",
                details={"links": [list(key) for key in link_keys]},
            ) from error

    # ------------------------------------------------------------------ #
    # Quotes
    # ------------------------------------------------------------------ #
    def quote(
        self, request: SliceRequestV1 | SliceRequest | Mapping[str, Any]
    ) -> QuoteResponse:
        """Non-binding quote: the forecast and economics the broker would use.

        Pure read: consults forecast overrides and the monitoring history
        exactly as the next epoch would, without touching the queue or the
        registry.
        """
        core_request = _coerce_request(request)
        forecast = self._orchestrator.forecast_for(core_request)
        return QuoteResponse(
            slice_name=core_request.name,
            slice_type=core_request.template.name,
            sla_mbps=core_request.sla_mbps,
            forecast_peak_mbps=forecast.lambda_hat_mbps,
            forecast_sigma=forecast.sigma_hat,
            reward_per_epoch=core_request.reward,
            penalty_rate_per_mbps=core_request.penalty_rate_per_mbps,
        )

    # ------------------------------------------------------------------ #
    # Monitoring feedback and forecast control
    # ------------------------------------------------------------------ #
    @_synchronized
    def report_load(
        self, slice_name: str, base_station: str, epoch: int, samples_mbps
    ) -> None:
        """Feed monitoring samples for one slice at one base station."""
        self._orchestrator.observe_load(slice_name, base_station, epoch, samples_mbps)

    @_synchronized
    def set_forecast_override(self, slice_name: str, forecast: ForecastInput) -> None:
        """Pin one slice's forecast (oracle mode), overriding the online block."""
        self._orchestrator.forecast_overrides[slice_name] = forecast

    @_synchronized
    def set_forecast_overrides(self, overrides: Mapping[str, ForecastInput]) -> None:
        """Replace the whole forecast-override table (oracle scenarios)."""
        self._orchestrator.forecast_overrides = dict(overrides)

    @_synchronized
    def set_forecasting(self, forecasting) -> None:
        """Swap the online forecasting block (forecaster ablations)."""
        self._orchestrator.forecasting = forecasting

    # ------------------------------------------------------------------ #
    # Decision epochs
    # ------------------------------------------------------------------ #
    @_synchronized
    def advance_epoch(self, epoch: int) -> EpochReport:
        """Run one decision epoch and return its report.

        Calls the orchestrator's AC-RR cycle (bit-identical to driving it
        directly), derives the epoch's lifecycle events from the registry
        transition, publishes them on :attr:`events` once the registry and
        controllers are consistent, and returns the :class:`EpochReport` DTO.
        Non-blocking from the caller's perspective: the report is plain data;
        nothing needs to be polled afterwards.

        Events survive failed epochs: if an ``advance_epoch`` raises after
        the registry committed some transitions (expiries run before the
        solve), those transitions are derived and published by the next
        successful epoch -- stamped with the epoch that published them.
        """
        registry = self._orchestrator.registry
        # Diff against the baseline of the last *published* events, not a
        # fresh snapshot: if a previous advance_epoch failed after committing
        # transitions (expiries run before the solve), those are derived now.
        before = self._event_baseline
        try:
            decision = self._orchestrator.run_epoch(epoch)
        except SliceStateError as error:
            self.health.note_failed_epoch()
            raise LifecycleError(str(error)) from error
        except (ValueError, RuntimeError) as error:
            # advance_epoch carries no tenant payload, so an internal
            # ValueError is a control-plane fault, not a client validation
            # failure -- both map to the solver-side error code.  run_epoch
            # already rolled the control plane back to its pre-epoch state
            # (crash-consistent epochs); only the health machine remembers
            # that the epoch failed.
            self.health.note_failed_epoch()
            raise SolverError(str(error)) from error
        self._last_decision = decision
        # Collected submissions left the intake queue; stop tracking their
        # queued-withdrawal tokens (the replay cache itself stays intact).
        still_pending = {
            request.name
            for request in self._orchestrator.slice_manager.pending_requests
        }
        self._token_by_queued_name = {
            name: token
            for name, token in self._token_by_queued_name.items()
            if name in still_pending
        }
        events = self._derive_events(epoch, before, decision)
        # Advance the baseline *before* fan-out: delivery is at-most-once per
        # transition, so a subscriber raising mid-publish (exceptions
        # propagate by contract) cannot make the next epoch re-publish the
        # same transitions under a later epoch stamp.
        self._event_baseline = {
            record.name: (record.state, registry.renewal_count(record.name))
            for record in registry.all_records()
        }
        # Registry + controllers are consistent here; only now fan out.
        self.events.publish(events)
        stats = decision.stats
        tier = getattr(stats, "tier", TIER_PRIMARY)
        retries = getattr(stats, "retries", 0)
        fallback_reason = getattr(stats, "fallback_reason", "")
        rehomed = tuple(getattr(self._orchestrator, "last_rehomed", ()))
        reasons: list[str] = []
        if tier != TIER_PRIMARY:
            reasons.append(
                f"solver tier {tier}: {fallback_reason}"
                if fallback_reason
                else f"solver tier {tier}"
            )
        elif retries:
            reasons.append(f"primary solver needed {retries} transient retries")
        if self._fault_injector is not None:
            # Only the committing attempt's faults: a rolled-back attempt of
            # this epoch already surfaced as a raised BrokerError, and its
            # faults must not taint the clean retry's report.
            reasons.extend(
                f"{fault.kind.value} fault fired at {fault.hook}"
                for fault in self._fault_injector.fired_in_attempt()
            )
        if rehomed:
            reasons.append(
                f"re-homed {len(rehomed)} slice(s) displaced by link failure"
            )
        degraded = bool(reasons)
        idle = stats.solver == "idle"
        reused = stats.message == "reused unchanged decision from previous epoch"
        # Health bookkeeping: when the orchestrator's solver is the
        # safeguarded chain sharing this monitor, a real (non-reused) solve
        # already noted its tier outcome -- the broker only adds what the
        # chain cannot see (faults outside the solver, re-homing).  Idle
        # epochs never move the health state.
        if not idle:
            chain_noted = (
                getattr(self._orchestrator.solver, "health", None) is self.health
                and not reused
            )
            if not chain_noted:
                self.health.note_outcome(tier, degraded)
            elif degraded and tier == TIER_PRIMARY and not retries:
                self.health.note_outcome(tier, True)
        return EpochReport(
            epoch=epoch,
            idle=stats.solver == "idle",
            objective_value=decision.objective_value,
            accepted=tuple(sorted(decision.accepted_tenants)),
            rejected=tuple(sorted(decision.rejected_tenants)),
            expired=tuple(
                e.slice_name for e in events if e.kind is LifecycleEventKind.EXPIRED
            ),
            renewed=tuple(
                e.slice_name for e in events if e.kind is LifecycleEventKind.RENEWED
            ),
            active=tuple(sorted(r.name for r in registry.active_slices(epoch))),
            pending_requests=self.pending_count,
            solver=stats.solver,
            solver_iterations=stats.iterations,
            solver_runtime_s=stats.runtime_s,
            solver_optimal=stats.optimal,
            solver_warm_cuts=stats.cuts_warm,
            solver_message=stats.message,
            solver_time_truncated=getattr(stats, "time_truncated", False),
            events=tuple(events),
            degraded=degraded,
            solver_tier=tier,
            solver_retries=retries,
            health=self.health.state.value,
            degraded_reasons=tuple(reasons),
            rehomed=rehomed,
        )

    def _derive_events(
        self,
        epoch: int,
        before: Mapping[str, tuple[SliceState, int]],
        decision,
    ) -> list[LifecycleEvent]:
        """Diff the registry against its pre-epoch snapshot into events.

        Order: EXPIRED, RENEWED, ADMITTED, REJECTED (the order the
        transitions happen inside ``run_epoch``), names sorted within each
        kind.  A renewal whose previous life was still ADMITTED going into
        the epoch yields both the EXPIRED event of the old life and the
        RENEWED (+ admission outcome) events of the new one.
        """
        registry = self._orchestrator.registry
        expired: list[LifecycleEvent] = []
        renewed: list[LifecycleEvent] = []
        admitted: list[LifecycleEvent] = []
        rejected: list[LifecycleEvent] = []

        def admission_metadata(name: str) -> dict[str, Any]:
            allocation = decision.allocations.get(name)
            metadata: dict[str, Any] = {"objective_value": decision.objective_value}
            if allocation is not None and allocation.accepted:
                metadata["compute_unit"] = allocation.compute_unit
                metadata["reserved_mbps_total"] = allocation.total_reserved_mbps
            return metadata

        for record in sorted(registry.all_records(), key=lambda r: r.name):
            name = record.name
            prev_state, prev_renewals = before.get(name, (None, 0))
            renewals = registry.renewal_count(name)
            if renewals > prev_renewals:
                # The released marker described the archived life; the fresh
                # record owns the name now.
                self._released.pop(name, None)
                old = registry.archived_records(name)[-1]
                if prev_state is SliceState.ADMITTED and old.state is SliceState.EXPIRED:
                    expired.append(
                        LifecycleEvent(
                            kind=LifecycleEventKind.EXPIRED,
                            slice_name=name,
                            epoch=epoch,
                            metadata={"admitted_epoch": old.admitted_epoch},
                        )
                    )
                renewed.append(
                    LifecycleEvent(
                        kind=LifecycleEventKind.RENEWED,
                        slice_name=name,
                        epoch=epoch,
                        metadata={"renewal_index": renewals},
                    )
                )
                if record.state is SliceState.ADMITTED:
                    admitted.append(
                        LifecycleEvent(
                            kind=LifecycleEventKind.ADMITTED,
                            slice_name=name,
                            epoch=epoch,
                            metadata=admission_metadata(name),
                        )
                    )
                elif record.state is SliceState.REJECTED:
                    rejected.append(
                        LifecycleEvent(
                            kind=LifecycleEventKind.REJECTED,
                            slice_name=name,
                            epoch=epoch,
                            metadata=admission_metadata(name),
                        )
                    )
            elif record.state is SliceState.ADMITTED and prev_state is not SliceState.ADMITTED:
                admitted.append(
                    LifecycleEvent(
                        kind=LifecycleEventKind.ADMITTED,
                        slice_name=name,
                        epoch=epoch,
                        metadata=admission_metadata(name),
                    )
                )
            elif record.state is SliceState.REJECTED and prev_state is not SliceState.REJECTED:
                rejected.append(
                    LifecycleEvent(
                        kind=LifecycleEventKind.REJECTED,
                        slice_name=name,
                        epoch=epoch,
                        metadata=admission_metadata(name),
                    )
                )
            elif record.state is SliceState.EXPIRED and prev_state is SliceState.ADMITTED:
                expired.append(
                    LifecycleEvent(
                        kind=LifecycleEventKind.EXPIRED,
                        slice_name=name,
                        epoch=epoch,
                        metadata={"admitted_epoch": record.admitted_epoch},
                    )
                )
        return expired + renewed + admitted + rejected

    # ------------------------------------------------------------------ #
    # Status and release
    # ------------------------------------------------------------------ #
    @_synchronized
    def status(self, slice_name: str) -> SliceStatus:
        """Lifecycle status of one slice (queued, registered or archived).

        A *live* registry record (REQUESTED or ADMITTED) takes precedence
        over a queued submission under the same name: with a pre-booked
        renewal queued for a still-admitted slice, the status describes the
        live slice, not the renewal waiting at intake.
        """
        manager = self._orchestrator.slice_manager
        registry = self._orchestrator.registry
        queued = manager.pending_request(slice_name)
        record = registry.record(slice_name) if slice_name in registry else None
        if queued is not None and (record is None or record.state in TERMINAL_STATES):
            return SliceStatus(
                name=slice_name,
                state="queued",
                arrival_epoch=queued.arrival_epoch,
                duration_epochs=queued.duration_epochs,
                renewal_count=registry.renewal_count(slice_name)
                if record is not None
                else 0,
            )
        if record is None:
            withdrawn = self._withdrawn.get(slice_name)
            if withdrawn is not None:
                arrival_epoch, duration_epochs = withdrawn
                return SliceStatus(
                    name=slice_name,
                    state="released",
                    arrival_epoch=arrival_epoch,
                    duration_epochs=duration_epochs,
                )
            raise LifecycleError(
                f"unknown slice {slice_name!r}: never submitted to this broker",
                details={"slice_name": slice_name},
            )
        renewals = registry.renewal_count(slice_name)
        state = record.state.value
        if (
            record.state is SliceState.EXPIRED
            and self._released.get(slice_name) == renewals
        ):
            state = "released"
        return SliceStatus(
            name=slice_name,
            state=state,
            arrival_epoch=record.request.arrival_epoch,
            duration_epochs=record.request.duration_epochs,
            admitted_epoch=record.admitted_epoch,
            expires_at=record.expires_at(),
            compute_unit=record.compute_unit,
            reservations_mbps=dict(record.last_reservations_mbps),
            renewal_count=renewals,
        )

    @_synchronized
    def list_slices(
        self, offset: int = 0, limit: int | None = None
    ) -> list[SliceStatus]:
        """Status of the broker's slices, sorted by name, paged.

        Ordering is stable (lexicographic by slice name), so
        ``offset``/``limit`` windows tile the full listing consistently
        across calls; status DTOs are only built for the requested page --
        a sweep over a 100k-slice registry never materialises one giant
        list per call.  ``limit=None`` returns everything from ``offset``.
        """
        if isinstance(offset, bool) or not isinstance(offset, int) or offset < 0:
            raise ValidationError(
                f"offset must be a non-negative integer, got {offset!r}"
            )
        if limit is not None and (
            isinstance(limit, bool) or not isinstance(limit, int) or limit < 0
        ):
            raise ValidationError(
                f"limit must be a non-negative integer or None, got {limit!r}"
            )
        manager = self._orchestrator.slice_manager
        names = {request.name for request in manager.pending_requests}
        names.update(record.name for record in self._orchestrator.registry.all_records())
        names.update(self._withdrawn)
        stop = None if limit is None else offset + limit
        page = sorted(names)[offset:stop]
        return [self.status(name) for name in page]

    @_synchronized
    def slice_count(self) -> int:
        """Total slices :meth:`list_slices` would page over."""
        manager = self._orchestrator.slice_manager
        names = {request.name for request in manager.pending_requests}
        names.update(record.name for record in self._orchestrator.registry.all_records())
        names.update(self._withdrawn)
        return len(names)

    @_synchronized
    def release(self, slice_name: str, *, epoch: int) -> SliceStatus:
        """Tenant-initiated release: terminate an admitted slice early, or
        cancel a still-queued request.

        A *live admitted* slice always takes precedence: if the name has both
        a live slice and a pre-booked queued renewal, releasing it terminates
        the live slice (the queued renewal stays queued -- cancel it with a
        second ``release`` call if unwanted).  An admitted slice moves to the
        terminal released state immediately; the controllers reclaim its
        reservations at the start of the next decision epoch, exactly as a
        natural expiry would.  The RELEASED event is published synchronously.
        Releasing a slice that is neither queued nor admitted raises
        :class:`LifecycleError`.
        """
        manager = self._orchestrator.slice_manager
        registry = self._orchestrator.registry
        live_admitted = (
            slice_name in registry
            and registry.record(slice_name).state is SliceState.ADMITTED
        )
        if not live_admitted and manager.pending_request(slice_name) is not None:
            request = manager.withdraw(slice_name)
            # The withdrawn submission's idempotency ticket is void: a retry
            # under its token after this cancel must re-enqueue, not return a
            # stale "accepted" receipt.
            stale_token = self._token_by_queued_name.pop(slice_name, None)
            if stale_token is not None:
                self._tickets_by_token.pop(stale_token, None)
            if slice_name not in registry:
                # Never registered: remember the withdrawal so status() keeps
                # answering "released" rather than "unknown slice".
                self._withdrawn[slice_name] = (
                    request.arrival_epoch,
                    request.duration_epochs,
                )
                _evict_oldest(self._withdrawn, self._cache_limit)
            self.events.publish(
                [
                    LifecycleEvent(
                        kind=LifecycleEventKind.RELEASED,
                        slice_name=slice_name,
                        epoch=epoch,
                        metadata={"stage": "queued"},
                    )
                ]
            )
            return SliceStatus(
                name=slice_name,
                state="released",
                arrival_epoch=request.arrival_epoch,
                duration_epochs=request.duration_epochs,
            )
        if slice_name not in registry:
            raise LifecycleError(
                f"unknown slice {slice_name!r}: never submitted to this broker",
                details={"slice_name": slice_name},
            )
        try:
            record = registry.release(slice_name)
        except SliceStateError as error:
            raise LifecycleError(str(error), details={"slice_name": slice_name}) from error
        self._released[slice_name] = registry.renewal_count(slice_name)
        _evict_oldest(self._released, self._cache_limit)
        # The RELEASED event below is the authoritative announcement of this
        # transition; fold it into the baseline so the next epoch's diff does
        # not re-derive it as a spurious EXPIRED event.
        self._event_baseline[slice_name] = (
            record.state,
            registry.renewal_count(slice_name),
        )
        self.events.publish(
            [
                LifecycleEvent(
                    kind=LifecycleEventKind.RELEASED,
                    slice_name=slice_name,
                    epoch=epoch,
                    metadata={
                        "stage": "admitted",
                        "admitted_epoch": record.admitted_epoch,
                        "compute_unit": record.compute_unit,
                    },
                )
            ]
        )
        # Describe the life that was just released (status() may already
        # prefer a queued renewal waiting under the same name).
        return SliceStatus(
            name=slice_name,
            state="released",
            arrival_epoch=record.request.arrival_epoch,
            duration_epochs=record.request.duration_epochs,
            admitted_epoch=record.admitted_epoch,
            expires_at=record.expires_at(),
            compute_unit=record.compute_unit,
            reservations_mbps=dict(record.last_reservations_mbps),
            renewal_count=registry.renewal_count(slice_name),
        )
