"""Wire-format plumbing shared by every northbound DTO.

Every DTO serialises to a plain JSON-safe dictionary stamped with an explicit
schema version under :data:`VERSION_KEY`.  Version 1 is the current (and only)
wire format; a future ``V2`` DTO keeps its ``from_dict`` able to read version
1 payloads or rejects them with a :class:`~repro.api.errors.ValidationError`
-- either way the decision is explicit, never an accidental field mismatch.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.api.errors import ValidationError

#: Current northbound wire-format version.
WIRE_VERSION = 1

#: Dictionary key under which every DTO carries its schema version.
VERSION_KEY = "schema_version"


def stamp(payload: dict[str, Any]) -> dict[str, Any]:
    """Add the wire-format version stamp to a DTO payload."""
    payload[VERSION_KEY] = WIRE_VERSION
    return payload


def check_version(payload: Mapping[str, Any], dto_name: str) -> None:
    """Reject payloads that are not dictionaries of the supported version."""
    if not isinstance(payload, Mapping):
        raise ValidationError(
            f"{dto_name} payload must be a mapping, got {type(payload).__name__}"
        )
    version = payload.get(VERSION_KEY)
    if version is None:
        raise ValidationError(
            f"{dto_name} payload is missing the {VERSION_KEY!r} stamp"
        )
    if version != WIRE_VERSION:
        raise ValidationError(
            f"{dto_name} payload has unsupported {VERSION_KEY}={version!r}; "
            f"this broker speaks version {WIRE_VERSION}",
            details={"supported_version": WIRE_VERSION, "payload_version": version},
        )


def require(payload: Mapping[str, Any], key: str, dto_name: str) -> Any:
    """Fetch a mandatory DTO field, raising a structured error when absent."""
    try:
        return payload[key]
    except KeyError:
        raise ValidationError(
            f"{dto_name} payload is missing required field {key!r}"
        ) from None
