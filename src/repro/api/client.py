"""Stdlib HTTP/JSON client mirroring the SliceBroker surface over the wire.

:class:`BrokerClient` speaks the route table of :mod:`repro.api.transport`
against a :class:`~repro.api.server.BrokerServer` and returns the same typed
DTOs the in-process facade returns -- ``submit`` yields an
:class:`~repro.api.dtos.AdmissionTicket`, ``advance_epoch`` an
:class:`~repro.api.dtos.EpochReport`, and so on -- rebuilt from the wire
payloads via the DTOs' own ``from_dict``.  Error responses are decoded with
:func:`~repro.api.errors.error_from_dict` and re-raised as the original
:class:`~repro.api.errors.BrokerError` subclass, so::

    try:
        client.submit(request, client_token="tok")
    except CapacityError:      # HTTP 429 from the bounded intake queue
        backoff_and_retry()

reads identically whether ``client`` is a :class:`BrokerClient` or the
broker itself.

One client owns one persistent HTTP/1.1 connection and is **not** thread
safe -- give each concurrent tenant session its own client (connections are
cheap; the server is thread-per-connection).  GET requests are transparently
retried once when a kept-alive connection turns out to be dead; POSTs are
never auto-retried (an idempotency token makes the *caller's* retry safe,
the transport must not guess).
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Iterable, Mapping, Sequence

from repro.api.dtos import (
    AdmissionTicket,
    EpochReport,
    QuoteResponse,
    SliceRequestV1,
    SliceStatus,
)
from repro.api.errors import BrokerError, ValidationError, error_from_dict
from repro.api.events import LifecycleEvent
from repro.api.transport import (
    API_PREFIX,
    IDEMPOTENCY_BATCH_HEADER,
    IDEMPOTENCY_HEADER,
    JSON_CONTENT_TYPE,
    encode_json,
    slice_path,
)

__all__ = ["BrokerClient", "BrokerConnectionError", "EventPage", "SlicePage"]


class BrokerConnectionError(ConnectionError):
    """The transport failed before a structured broker response arrived."""


class EventPage:
    """One page of the cursor-paged event feed.

    ``events`` are ``(seq, LifecycleEvent)`` pairs in publication order;
    ``next_cursor`` is the ``since`` value that continues the feed.
    """

    def __init__(self, events: list[tuple[int, LifecycleEvent]], next_cursor: int):
        self.events = events
        self.next_cursor = next_cursor

    def __iter__(self) -> Iterable[tuple[int, LifecycleEvent]]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


class SlicePage(list):
    """One page of :class:`SliceStatus` DTOs plus its paging frame.

    The page *is* the list (name-sorted, stable across pages), so existing
    ``for status in client.list_slices()`` call sites keep working;
    ``total`` is the registry-wide slice count at serve time and ``offset``
    echoes the page start, so a pager knows when it has drained the
    registry (``offset + len(page) >= total``).
    """

    def __init__(self, slices: Iterable[SliceStatus], total: int, offset: int):
        super().__init__(slices)
        self.total = total
        self.offset = offset


def _request_payload(
    request: SliceRequestV1 | Mapping[str, Any],
) -> dict[str, Any]:
    if isinstance(request, SliceRequestV1):
        return request.to_dict()
    if isinstance(request, Mapping):
        return dict(request)
    raise ValidationError(
        "request must be a SliceRequestV1 or a wire payload mapping, got "
        f"{type(request).__name__}"
    )


class BrokerClient:
    """Typed client for one broker server (one connection, one session)."""

    def __init__(self, host: str, port: int, *, timeout: float = 60.0):
        self._host = host
        self._port = port
        self._timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------ #
    # Connection plumbing
    # ------------------------------------------------------------------ #
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
            self._conn.connect()
            # Admission latency is the benchmark's headline number; never let
            # Nagle/delayed-ACK interplay add 40 ms artifacts to small bodies.
            self._conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "BrokerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        *,
        body: Mapping[str, Any] | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> Any:
        payload = None if body is None else encode_json(body)
        all_headers = {"Accept": JSON_CONTENT_TYPE}
        if payload is not None:
            all_headers["Content-Type"] = JSON_CONTENT_TYPE
        if headers:
            all_headers.update(headers)
        attempts = 2 if method == "GET" else 1
        for attempt in range(attempts):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=all_headers)
                response = conn.getresponse()
                data = response.read()
                break
            except (
                http.client.CannotSendRequest,
                http.client.RemoteDisconnected,
                BrokenPipeError,
                ConnectionResetError,
                socket.timeout,
            ) as error:
                # The kept-alive connection died; reconnect.  Only GETs are
                # replayed -- a POST may already have been applied.
                self.close()
                if attempt + 1 >= attempts:
                    raise BrokerConnectionError(
                        f"{method} {path} failed without a broker response: {error}"
                    ) from error
        return self._decode(method, path, response.status, data)

    @staticmethod
    def _decode(method: str, path: str, status: int, data: bytes) -> Any:
        try:
            decoded = json.loads(data.decode("utf-8")) if data else None
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BrokerConnectionError(
                f"{method} {path}: undecodable response body under status {status}"
            ) from error
        if 200 <= status < 300:
            return decoded
        if isinstance(decoded, dict) and "error" in decoded:
            raise error_from_dict(decoded)
        raise BrokerError(
            f"{method} {path} failed with HTTP {status} and a non-taxonomy body"
        )

    # ------------------------------------------------------------------ #
    # Broker surface
    # ------------------------------------------------------------------ #
    def submit(
        self,
        request: SliceRequestV1 | Mapping[str, Any],
        *,
        client_token: str | None = None,
    ) -> AdmissionTicket:
        headers = {} if client_token is None else {IDEMPOTENCY_HEADER: client_token}
        payload = self._request(
            "POST",
            f"{API_PREFIX}/slices",
            body=_request_payload(request),
            headers=headers,
        )
        return AdmissionTicket.from_dict(payload)

    def submit_batch(
        self,
        requests: Sequence[SliceRequestV1 | Mapping[str, Any]],
        *,
        client_tokens: Sequence[str | None] | None = None,
    ) -> list[AdmissionTicket]:
        headers = {}
        if client_tokens is not None:
            headers[IDEMPOTENCY_BATCH_HEADER] = json.dumps(list(client_tokens))
        payload = self._request(
            "POST",
            f"{API_PREFIX}/slices:batch",
            body={"requests": [_request_payload(request) for request in requests]},
            headers=headers,
        )
        return [AdmissionTicket.from_dict(entry) for entry in payload["tickets"]]

    def quote(self, request: SliceRequestV1 | Mapping[str, Any]) -> QuoteResponse:
        payload = self._request(
            "POST", f"{API_PREFIX}/quotes", body=_request_payload(request)
        )
        return QuoteResponse.from_dict(payload)

    def status(self, slice_name: str) -> SliceStatus:
        payload = self._request("GET", slice_path(slice_name))
        return SliceStatus.from_dict(payload)

    def list_slices(
        self, offset: int = 0, *, limit: int | None = None
    ) -> SlicePage:
        path = f"{API_PREFIX}/slices"
        params = []
        if offset:
            params.append(f"offset={offset}")
        if limit is not None:
            params.append(f"limit={limit}")
        if params:
            path += "?" + "&".join(params)
        payload = self._request("GET", path)
        return SlicePage(
            (SliceStatus.from_dict(entry) for entry in payload["slices"]),
            payload["total"],
            payload["offset"],
        )

    def release(self, slice_name: str, *, epoch: int) -> SliceStatus:
        payload = self._request(
            "POST", slice_path(slice_name, verb="release"), body={"epoch": epoch}
        )
        return SliceStatus.from_dict(payload)

    def advance_epoch(self, epoch: int) -> EpochReport:
        payload = self._request("POST", f"{API_PREFIX}/epochs", body={"epoch": epoch})
        return EpochReport.from_dict(payload)

    def events(self, since: int = 0, *, limit: int | None = None) -> EventPage:
        path = f"{API_PREFIX}/events?since={since}"
        if limit is not None:
            path += f"&limit={limit}"
        payload = self._request("GET", path)
        events = [
            (entry["seq"], LifecycleEvent.from_dict(entry["event"]))
            for entry in payload["events"]
        ]
        return EventPage(events, payload["next"])

    def health(self) -> dict[str, Any]:
        return self._request("GET", f"{API_PREFIX}/health")
