"""Northbound SliceBroker service API (the paper's tenant-facing interface).

This package is the supported entry point to the control plane:

* :class:`~repro.api.broker.SliceBroker` -- the transport-agnostic facade
  (submit / submit_batch / quote / advance_epoch / status / release);
* :mod:`repro.api.dtos` -- versioned, JSON-serialisable DTOs
  (``SliceRequestV1``, ``AdmissionTicket``, ``SliceStatus``,
  ``QuoteResponse``, ``EpochReport``);
* :mod:`repro.api.errors` -- the structured error taxonomy
  (``BrokerError`` -> ``ValidationError`` / ``DuplicateSliceError`` /
  ``LifecycleError`` / ``SolverError``, each with a stable ``code``);
* :mod:`repro.api.events` -- the lifecycle event bus (ADMITTED / REJECTED /
  EXPIRED / RENEWED / RELEASED).

See DESIGN.md, section "Northbound API", for the versioning rules, the error
codes and the event ordering contract.
"""

from repro.api.broker import SliceBroker
from repro.api.dtos import (
    AdmissionTicket,
    EpochReport,
    QuoteResponse,
    SliceRequestV1,
    SliceStatus,
)
from repro.api.errors import (
    BrokerError,
    DuplicateSliceError,
    LifecycleError,
    SolverError,
    ValidationError,
    error_from_dict,
)
from repro.api.events import EventBus, LifecycleEvent, LifecycleEventKind
from repro.api.wire import WIRE_VERSION

__all__ = [
    "SliceBroker",
    "SliceRequestV1",
    "AdmissionTicket",
    "SliceStatus",
    "QuoteResponse",
    "EpochReport",
    "BrokerError",
    "ValidationError",
    "DuplicateSliceError",
    "LifecycleError",
    "SolverError",
    "error_from_dict",
    "EventBus",
    "LifecycleEvent",
    "LifecycleEventKind",
    "WIRE_VERSION",
]
