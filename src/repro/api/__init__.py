"""Northbound SliceBroker service API (the paper's tenant-facing interface).

This package is the supported entry point to the control plane:

* :class:`~repro.api.broker.SliceBroker` -- the transport-agnostic facade
  (submit / submit_batch / quote / advance_epoch / status / release);
* :mod:`repro.api.dtos` -- versioned, JSON-serialisable DTOs
  (``SliceRequestV1``, ``AdmissionTicket``, ``SliceStatus``,
  ``QuoteResponse``, ``EpochReport``);
* :mod:`repro.api.errors` -- the structured error taxonomy
  (``BrokerError`` -> ``ValidationError`` / ``DuplicateSliceError`` /
  ``LifecycleError`` / ``SolverError``, each with a stable ``code``);
* :mod:`repro.api.events` -- the lifecycle event bus (ADMITTED / REJECTED /
  EXPIRED / RENEWED / RELEASED);
* :mod:`repro.api.transport` / :mod:`repro.api.server` /
  :mod:`repro.api.client` -- the stdlib HTTP/JSON transport serving the same
  facade over a socket (``BrokerServer``) and the typed client speaking it
  (``BrokerClient``), with the DTO dictionaries verbatim as the wire schema.

See DESIGN.md, sections "Northbound API" and "Service transport", for the
versioning rules, the error-code -> HTTP status mapping and the event
ordering contract.
"""

from repro.api.broker import SliceBroker
from repro.api.client import BrokerClient, BrokerConnectionError
from repro.api.server import BrokerServer
from repro.api.dtos import (
    AdmissionTicket,
    EpochReport,
    QuoteResponse,
    SliceRequestV1,
    SliceStatus,
)
from repro.api.errors import (
    BrokerError,
    CapacityError,
    DuplicateSliceError,
    LifecycleError,
    NotFoundError,
    SolverError,
    ValidationError,
    error_from_dict,
)
from repro.api.events import EventBus, LifecycleEvent, LifecycleEventKind
from repro.api.wire import WIRE_VERSION

__all__ = [
    "SliceBroker",
    "BrokerServer",
    "BrokerClient",
    "BrokerConnectionError",
    "SliceRequestV1",
    "AdmissionTicket",
    "SliceStatus",
    "QuoteResponse",
    "EpochReport",
    "BrokerError",
    "ValidationError",
    "DuplicateSliceError",
    "LifecycleError",
    "SolverError",
    "CapacityError",
    "NotFoundError",
    "error_from_dict",
    "EventBus",
    "LifecycleEvent",
    "LifecycleEventKind",
    "WIRE_VERSION",
]
