"""Structured error taxonomy of the northbound SliceBroker API.

Every failure that crosses the broker boundary is a :class:`BrokerError`
subclass carrying a *stable*, machine-readable ``code`` string -- the contract
a REST/gRPC shim maps onto HTTP status codes and that clients may switch on.
Internal layers keep their existing exceptions (``ValueError`` from the
validation helpers, :class:`~repro.controlplane.state.SliceStateError` from
the registry); the broker translates them at the boundary so they never leak
to northbound callers.

============================  =================  ==============================
Class                         ``code``           Raised when
============================  =================  ==============================
:class:`ValidationError`      ``validation``     a payload/DTO is malformed or
                                                 a field violates its domain
:class:`DuplicateSliceError`  ``duplicate``      a submission collides with a
                                                 queued request of the same
                                                 name, or an idempotency token
                                                 is reused with a different
                                                 payload
:class:`LifecycleError`       ``lifecycle``      an operation is illegal in the
                                                 slice's current state (e.g.
                                                 renewing a live slice,
                                                 releasing one never admitted)
:class:`SolverError`          ``solver``         the admission solve itself
                                                 failed or produced an
                                                 inconsistent decision
:class:`CapacityError`        ``capacity``       the broker sheds load: the
                                                 bounded intake queue is full
                                                 (retry after the next epoch)
:class:`NotFoundError`        ``not_found``      a transport route (method +
                                                 path) does not exist
============================  =================  ==============================

The HTTP transport maps each ``code`` onto exactly one status code (see
:data:`repro.api.transport.STATUS_BY_CODE`); the table above is the
transport-agnostic contract.
"""

from __future__ import annotations

from typing import Any, Mapping


class BrokerError(Exception):
    """Base class of every error crossing the northbound API boundary."""

    #: Stable machine-readable error code (overridden per subclass).
    code = "broker_error"

    def __init__(self, message: str, *, details: Mapping[str, Any] | None = None):
        super().__init__(message)
        #: Optional JSON-safe context for clients (offending field, state...).
        self.details: dict[str, Any] = dict(details or {})

    @property
    def message(self) -> str:
        return str(self)

    def to_dict(self) -> dict[str, Any]:
        """Wire form of the error (what a transport shim would return)."""
        return {"error": self.code, "message": str(self), "details": dict(self.details)}


class ValidationError(BrokerError):
    """A request payload is malformed or violates a field's domain."""

    code = "validation"


class DuplicateSliceError(BrokerError):
    """A submission collides with an already-queued request of the same name."""

    code = "duplicate"


class LifecycleError(BrokerError):
    """The operation is illegal in the slice's current lifecycle state."""

    code = "lifecycle"


class SolverError(BrokerError):
    """The admission/reservation solve failed or was internally inconsistent."""

    code = "solver"


class CapacityError(BrokerError):
    """The broker is shedding load: the bounded intake queue is full.

    A 429-style, *transient* condition -- the request was well-formed, the
    broker simply refuses to grow its intake queue past the configured bound.
    Clients should retry after the next decision epoch drains the queue (the
    idempotency-token contract makes the retry safe).
    """

    code = "capacity"


class NotFoundError(BrokerError):
    """The transport route (method + path) does not exist."""

    code = "not_found"


#: ``code`` -> class, for decoding wire-form errors back into exceptions.
ERROR_TYPES: dict[str, type[BrokerError]] = {
    cls.code: cls
    for cls in (
        BrokerError,
        ValidationError,
        DuplicateSliceError,
        LifecycleError,
        SolverError,
        CapacityError,
        NotFoundError,
    )
}


def error_from_dict(payload: Mapping[str, Any]) -> BrokerError:
    """Rebuild a :class:`BrokerError` from its :meth:`~BrokerError.to_dict` form."""
    cls = ERROR_TYPES.get(str(payload.get("error")), BrokerError)
    return cls(str(payload.get("message", "")), details=payload.get("details"))
