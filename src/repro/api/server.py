"""Thread-pooled HTTP/JSON server putting the SliceBroker on a socket.

Stdlib-only (``http.server``): a :class:`BrokerServer` wraps one -- already
concurrency-safe -- :class:`~repro.api.broker.SliceBroker` and serves the
route table of :mod:`repro.api.transport` with one handler thread per live
connection (``ThreadingHTTPServer``), HTTP/1.1 keep-alive, and bodies that
are exactly the PR 5 DTO ``to_dict`` payloads.  Nothing here interprets
broker semantics: the server decodes the envelope (path, method, idempotency
headers, JSON body), calls the facade, and encodes the result -- so driving a
scenario over the wire is bit-identical to driving the facade in process
(``tests/api/test_transport.py`` pins this).

Every failure crossing the socket is a structured
:class:`~repro.api.errors.BrokerError` body under the status of its ``code``
(:data:`~repro.api.transport.STATUS_BY_CODE`); unexpected internal errors
are logged server-side and cross as a generic ``broker_error`` body --
never a traceback.

The event-stream endpoint is a cursor-paged feed: the server subscribes to
the broker's :class:`~repro.api.events.EventBus` at construction and stamps
every published event with a monotonically increasing sequence number;
``GET /v1/events?since=<seq>`` returns the events after ``seq`` plus the
next cursor, so a client polling the cursor sees every event exactly once,
in publication order, regardless of how many sessions share the feed.  The
feed is ring-bounded (``event_retention``): a cursor older than the ring
fails with a ``validation`` error naming the oldest available seq.
"""

from __future__ import annotations

import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.api.broker import SliceBroker
from repro.api.errors import BrokerError, LifecycleError, NotFoundError, ValidationError
from repro.api.events import LifecycleEvent
from repro.api.transport import (
    API_PREFIX,
    DEFAULT_MAX_BATCH,
    IDEMPOTENCY_BATCH_HEADER,
    IDEMPOTENCY_HEADER,
    JSON_CONTENT_TYPE,
    MAX_BODY_BYTES,
    batch_tokens_from_header,
    decode_json,
    encode_json,
    error_body,
    parse_slice_path,
    status_for,
)

__all__ = ["BrokerServer", "EventLog", "DEFAULT_EVENT_RETENTION"]

logger = logging.getLogger(__name__)


#: Default ring-retention cap of the event feed.  A day-long city-scale
#: replay publishes millions of lifecycle events; the feed keeps a bounded
#: tail instead of the whole history.
DEFAULT_EVENT_RETENTION = 65536


class EventLog:
    """Sequence-stamped, thread-safe ring log of one broker's lifecycle events.

    Subscribes to the broker's event bus and appends every event under a
    monotonically increasing sequence number (the first event is seq 1).
    Retention is a ring: only the newest ``retention`` events stay resident
    (amortised O(1) per append via front-offset compaction, the ring-buffer
    TSDB's idiom), while sequence numbers keep counting -- ``__len__``
    still reports the total ever published.  :meth:`page` serves the
    cursor-paged ``/v1/events`` feed; paging from a cursor whose events
    have been evicted raises a typed :class:`ValidationError` naming the
    oldest sequence number still available.
    """

    def __init__(self, broker: SliceBroker, retention: int = DEFAULT_EVENT_RETENTION):
        if retention < 1:
            raise ValidationError(
                f"event retention must be >= 1, got {retention}"
            )
        self._lock = threading.Lock()
        self._retention = retention
        self._events: list[LifecycleEvent] = []
        self._start = 0  # index of the oldest retained event in _events
        self._total = 0  # events ever published == seq of the newest event
        self._token = broker.events.subscribe(self._append)

    def _append(self, event: LifecycleEvent) -> None:
        with self._lock:
            self._events.append(event)
            self._total += 1
            if len(self._events) - self._start > self._retention:
                self._start += 1
                if self._start > self._retention:
                    # Compact the dead prefix once it exceeds the live tail.
                    del self._events[: self._start]
                    self._start = 0

    def __len__(self) -> int:
        with self._lock:
            return self._total

    @property
    def dropped(self) -> int:
        """Events evicted by retention (the oldest available seq minus 1)."""
        with self._lock:
            return self._total - (len(self._events) - self._start)

    def page(self, since: int, limit: int | None = None) -> tuple[list[dict[str, Any]], int]:
        """Events with seq > ``since`` (at most ``limit``), plus the next cursor."""
        with self._lock:
            since = max(0, since)
            dropped = self._total - (len(self._events) - self._start)
            if since < dropped:
                raise ValidationError(
                    f"event cursor {since} has been evicted by retention; the "
                    f"oldest available event is seq {dropped + 1} "
                    f"(resume from since={dropped})",
                    details={
                        "requested_since": since,
                        "oldest_available_seq": dropped + 1,
                        "retention": self._retention,
                    },
                )
            stop_seq = (
                self._total if limit is None else min(self._total, since + limit)
            )
            first = self._start + (since - dropped)
            page = [
                {"seq": seq, "event": event.to_dict()}
                for seq, event in enumerate(
                    self._events[first : first + (stop_seq - since)],
                    start=since + 1,
                )
            ]
            return page, stop_seq


class _BrokerRequestHandler(BaseHTTPRequestHandler):
    """Dispatches one HTTP request onto the broker facade."""

    protocol_version = "HTTP/1.1"
    disable_nagle_algorithm = True
    # The http.server attribute is typed as HTTPServer; ours carries the api.
    server: "_BrokerHTTPServer"

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        logger.debug("%s - %s", self.address_string(), format % args)

    def _respond(self, status: int, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", JSON_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _respond_json(self, payload: dict[str, Any], *, status: int = 200) -> None:
        self._respond(status, encode_json(payload))

    def _read_body(self) -> bytes:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header) if length_header is not None else 0
        except ValueError:
            raise ValidationError(
                f"malformed Content-Length header {length_header!r}"
            ) from None
        if length < 0:
            raise ValidationError(f"negative Content-Length {length}")
        if length > MAX_BODY_BYTES:
            raise ValidationError(
                f"request body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte bound",
                details={"max_body_bytes": MAX_BODY_BYTES},
            )
        return self.rfile.read(length) if length else b""

    def _dispatch(self, method: str) -> None:
        try:
            split = urlsplit(self.path)
            self.server.api._handle(self, method, split.path, parse_qs(split.query))
        except BrokerError as error:
            self._respond(status_for(error), error_body(error))
        except (BrokenPipeError, ConnectionResetError):
            raise  # client went away mid-response; nothing to send
        except Exception:  # noqa: BLE001 -- boundary guard: no tracebacks on the wire
            logger.exception("unhandled error serving %s %s", method, self.path)
            fault = BrokerError("internal broker error; see server logs")
            self._respond(status_for(fault), error_body(fault))

    def do_GET(self) -> None:  # noqa: N802 (http.server naming contract)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._dispatch("PUT")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


class _BrokerHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    #: Backlog for the pending-connection queue (the load harness opens
    #: hundreds of sessions in one burst; the default of 5 drops SYNs).
    request_queue_size = 1024
    api: "BrokerServer"

    def handle_error(self, request, client_address) -> None:
        # A client hanging up mid-exchange is routine under load; keep it off
        # stderr (the default implementation prints a full traceback).
        logger.debug("connection error from %s", client_address, exc_info=True)


class BrokerServer:
    """Serve one :class:`SliceBroker` over HTTP/JSON on a local socket.

    Usage::

        broker = SliceBroker(topology=..., solver=..., max_pending=4096)
        with BrokerServer(broker, port=0) as server:   # port 0: ephemeral
            client = BrokerClient(server.host, server.port)
            ...

    ``start``/``stop`` (or the context manager) control the acceptor thread;
    handler threads are daemonic and die with the process.
    """

    def __init__(
        self,
        broker: SliceBroker,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_batch: int = DEFAULT_MAX_BATCH,
        event_retention: int = DEFAULT_EVENT_RETENTION,
    ):
        if max_batch < 1:
            raise ValidationError(f"max_batch must be >= 1, got {max_batch}")
        self.broker = broker
        self.max_batch = max_batch
        #: Cursor-paged event feed backing ``GET /v1/events`` (ring-bounded).
        self.event_log = EventLog(broker, retention=event_retention)
        self._http = _BrokerHTTPServer((host, port), _BrokerRequestHandler)
        self._http.api = self
        self._thread: threading.Thread | None = None
        self._stopped = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "BrokerServer":
        if self._thread is not None:
            # Double-start is an operation illegal in the server's current
            # state; keep it inside the structured taxonomy (RA02) rather
            # than leaking a bare RuntimeError through the api package.
            raise LifecycleError(
                "BrokerServer is already running", details={"url": self.url}
            )
        if self._stopped:
            # stop() closes the listening socket, which was bound (possibly
            # to an ephemeral port) in __init__ -- a restarted thread would
            # serve_forever on a dead fd and every request would fail.  Fail
            # the start loudly instead of pretending to listen.
            raise LifecycleError(
                "BrokerServer has been stopped and cannot be restarted; "
                "construct a new server instead"
            )
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name=f"broker-server-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._http.shutdown()
        self._thread.join()
        self._http.server_close()
        self._thread = None
        self._stopped = True

    def __enter__(self) -> "BrokerServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _handle(
        self,
        request: _BrokerRequestHandler,
        method: str,
        path: str,
        query: dict[str, list[str]],
    ) -> None:
        if method == "GET":
            if path == f"{API_PREFIX}/health":
                return request._respond_json(self._health_payload())
            if path == f"{API_PREFIX}/slices":
                return request._respond_json(self._slices_payload(query))
            if path == f"{API_PREFIX}/events":
                return request._respond_json(self._events_payload(query))
            name, verb = self._slice_segment(path)
            if name is not None and verb is None:
                return request._respond_json(self.broker.status(name).to_dict())
        elif method == "POST":
            if path == f"{API_PREFIX}/slices":
                body = decode_json(request._read_body())
                token = request.headers.get(IDEMPOTENCY_HEADER)
                ticket = self.broker.submit(self._payload_mapping(body), client_token=token)
                return request._respond_json(ticket.to_dict(), status=201)
            if path == f"{API_PREFIX}/slices:batch":
                return self._handle_batch(request)
            if path == f"{API_PREFIX}/quotes":
                body = decode_json(request._read_body())
                quote = self.broker.quote(self._payload_mapping(body))
                return request._respond_json(quote.to_dict())
            if path == f"{API_PREFIX}/epochs":
                body = decode_json(request._read_body())
                epoch = self._epoch_field(body)
                report = self.broker.advance_epoch(epoch)
                return request._respond_json(report.to_dict())
            name, verb = self._slice_segment(path)
            if name is not None and verb == "release":
                body = decode_json(request._read_body())
                epoch = self._epoch_field(body)
                status = self.broker.release(name, epoch=epoch)
                return request._respond_json(status.to_dict())
        raise NotFoundError(
            f"no route {method} {path}",
            details={"method": method, "path": path},
        )

    def _handle_batch(self, request: _BrokerRequestHandler) -> None:
        body = decode_json(request._read_body())
        payload = self._payload_mapping(body, what="batch body")
        requests = payload.get("requests")
        if not isinstance(requests, list):
            raise ValidationError(
                "batch body must carry a 'requests' list of SliceRequestV1 payloads"
            )
        if len(requests) > self.max_batch:
            raise ValidationError(
                f"batch of {len(requests)} requests exceeds the per-call bound "
                f"of {self.max_batch}",
                details={"requests": len(requests), "max_batch": self.max_batch},
            )
        tokens = batch_tokens_from_header(
            request.headers.get(IDEMPOTENCY_BATCH_HEADER), len(requests)
        )
        tickets = self.broker.submit_batch(
            [self._payload_mapping(entry, what="batch entry") for entry in requests],
            client_tokens=tokens,
        )
        request._respond_json(
            {"tickets": [ticket.to_dict() for ticket in tickets]}, status=201
        )

    # ------------------------------------------------------------------ #
    # Payload helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _payload_mapping(body: Any, *, what: str = "request body") -> dict[str, Any]:
        if not isinstance(body, dict):
            raise ValidationError(
                f"{what} must be a JSON object, got {type(body).__name__}"
            )
        return body

    @staticmethod
    def _epoch_field(body: Any) -> int:
        payload = BrokerServer._payload_mapping(body)
        epoch = payload.get("epoch")
        if isinstance(epoch, bool) or not isinstance(epoch, int):
            raise ValidationError(
                f"body field 'epoch' must be an integer, got {epoch!r}"
            )
        return epoch

    @staticmethod
    def _slice_segment(path: str) -> tuple[str | None, str | None]:
        prefix = f"{API_PREFIX}/slices/"
        if not path.startswith(prefix):
            return None, None
        segment = path[len(prefix):]
        if not segment or "/" in segment:
            return None, None
        name, verb = parse_slice_path(segment)
        return name, verb

    def _events_payload(self, query: dict[str, list[str]]) -> dict[str, Any]:
        since_values = query.get("since", ["0"])
        limit_values = query.get("limit", [None])
        try:
            since = int(since_values[-1])
        except (TypeError, ValueError):
            raise ValidationError(
                f"query parameter 'since' must be an integer, got {since_values[-1]!r}"
            ) from None
        limit = None
        if limit_values[-1] is not None:
            try:
                limit = int(limit_values[-1])
            except (TypeError, ValueError):
                raise ValidationError(
                    f"query parameter 'limit' must be an integer, got {limit_values[-1]!r}"
                ) from None
            if limit < 0:
                raise ValidationError(f"query parameter 'limit' must be >= 0, got {limit}")
        events, next_seq = self.event_log.page(since, limit)
        return {"events": events, "next": next_seq}

    def _slices_payload(self, query: dict[str, list[str]]) -> dict[str, Any]:
        offset_values = query.get("offset", ["0"])
        limit_values = query.get("limit", [None])
        try:
            offset = int(offset_values[-1])
        except (TypeError, ValueError):
            raise ValidationError(
                f"query parameter 'offset' must be an integer, got {offset_values[-1]!r}"
            ) from None
        limit = None
        if limit_values[-1] is not None:
            try:
                limit = int(limit_values[-1])
            except (TypeError, ValueError):
                raise ValidationError(
                    f"query parameter 'limit' must be an integer, got {limit_values[-1]!r}"
                ) from None
        page = self.broker.list_slices(offset=offset, limit=limit)
        return {
            "slices": [status.to_dict() for status in page],
            "total": self.broker.slice_count(),
            "offset": offset,
        }

    def _health_payload(self) -> dict[str, Any]:
        return {
            "health": self.broker.health.state.value,
            "pending_requests": self.broker.pending_count,
            "events_published": len(self.event_log),
        }
