"""Shared wire contract of the HTTP/JSON broker transport.

The server (:mod:`repro.api.server`) and the client
(:mod:`repro.api.client`) agree on exactly three things, all defined here so
neither can drift from the other:

* the **route table** (:data:`ROUTES`): method + path template per broker
  operation, the PR 5 DTO ``to_dict``/``from_dict`` payloads verbatim as the
  body schema (the transport adds nothing to the wire format -- a request
  body *is* ``SliceRequestV1.to_dict()``, a response body *is*
  ``AdmissionTicket.to_dict()`` and so on);
* the **error mapping** (:data:`STATUS_BY_CODE`): every structured
  :class:`~repro.api.errors.BrokerError` crosses the wire as its
  ``to_dict()`` JSON body under exactly one HTTP status code, and the client
  rebuilds the typed exception with
  :func:`~repro.api.errors.error_from_dict` -- a transport round trip
  preserves the taxonomy;
* the **idempotency-header contract**: a single submit carries its
  per-tenant token in :data:`IDEMPOTENCY_HEADER`; a batch submit carries a
  JSON array (one entry per request, ``null`` for tokenless) in
  :data:`IDEMPOTENCY_BATCH_HEADER`.

Endpoint table (see DESIGN.md, "Service transport"):

======  ================================  =====================================
Method  Path                              Operation (body -> response)
======  ================================  =====================================
POST    ``/v1/slices``                    submit (SliceRequestV1 -> AdmissionTicket, 201)
POST    ``/v1/slices:batch``              submit_batch ({"requests": [...]} -> {"tickets": [...]}, 201)
POST    ``/v1/quotes``                    quote (SliceRequestV1 -> QuoteResponse)
GET     ``/v1/slices?offset=&limit=``     list_slices page (-> {"slices": [SliceStatus...], "total": n, "offset": n})
GET     ``/v1/slices/{name}``             status (-> SliceStatus)
POST    ``/v1/slices/{name}:release``     release ({"epoch": n} -> SliceStatus)
POST    ``/v1/epochs``                    advance_epoch ({"epoch": n} -> EpochReport)
GET     ``/v1/events?since={seq}``        event stream page (-> {"events": [...], "next": seq})
GET     ``/v1/health``                    liveness/health snapshot
======  ================================  =====================================

The ``:batch`` / ``:release`` suffixes are custom-verb path segments (the
ONAP/Google AIP style the exemplar ``instantiate_slice`` POST follows); they
can never collide with a slice name because names are URL-quoted into the
path, which escapes ``:``-bearing segments distinctly.
"""

from __future__ import annotations

import json
from typing import Any, Mapping
from urllib.parse import quote, unquote

from repro.api.errors import BrokerError, ValidationError

__all__ = [
    "API_PREFIX",
    "IDEMPOTENCY_HEADER",
    "IDEMPOTENCY_BATCH_HEADER",
    "JSON_CONTENT_TYPE",
    "MAX_BODY_BYTES",
    "DEFAULT_MAX_BATCH",
    "ROUTES",
    "STATUS_BY_CODE",
    "status_for",
    "error_body",
    "encode_json",
    "decode_json",
    "slice_path",
    "parse_slice_path",
    "batch_tokens_from_header",
]

#: Version prefix of every route; bumping the wire format (WIRE_VERSION=2)
#: would mount ``/v2/`` next to it rather than mutating these paths.
API_PREFIX = "/v1"

#: Header carrying the per-tenant idempotency token of a single submit.
IDEMPOTENCY_HEADER = "Idempotency-Key"

#: Header carrying the JSON array of per-request tokens of a batch submit
#: (``null`` entries mean "no token for this request").
IDEMPOTENCY_BATCH_HEADER = "Idempotency-Keys"

JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: Requests larger than this are rejected with a ``validation`` error before
#: parsing (a transport-level guard against memory exhaustion, not a schema
#: rule).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Default bound on ``len(requests)`` per batch submit; oversized batches map
#: to the ``validation`` error code (the payload violates a documented
#: domain, it is not a transient capacity condition).
DEFAULT_MAX_BATCH = 256

#: (method, path template) per operation -- documentation and the basis of
#: the server's dispatch; ``{name}`` marks the URL-quoted slice-name segment.
ROUTES: dict[str, tuple[str, str]] = {
    "submit": ("POST", f"{API_PREFIX}/slices"),
    "submit_batch": ("POST", f"{API_PREFIX}/slices:batch"),
    "quote": ("POST", f"{API_PREFIX}/quotes"),
    "list_slices": ("GET", f"{API_PREFIX}/slices"),
    "status": ("GET", f"{API_PREFIX}/slices/{{name}}"),
    "release": ("POST", f"{API_PREFIX}/slices/{{name}}:release"),
    "advance_epoch": ("POST", f"{API_PREFIX}/epochs"),
    "events": ("GET", f"{API_PREFIX}/events"),
    "health": ("GET", f"{API_PREFIX}/health"),
}

#: ``BrokerError.code`` -> HTTP status.  One status per code: clients may
#: switch on either interchangeably.
STATUS_BY_CODE: dict[str, int] = {
    "validation": 400,
    "not_found": 404,
    "duplicate": 409,
    "lifecycle": 409,
    "capacity": 429,
    "solver": 500,
    "broker_error": 500,
}


def status_for(error: BrokerError) -> int:
    """HTTP status of a structured broker error (500 for unknown codes)."""
    return STATUS_BY_CODE.get(error.code, 500)


def error_body(error: BrokerError) -> bytes:
    """The JSON wire body of a structured broker error."""
    return encode_json(error.to_dict())


def encode_json(payload: Mapping[str, Any]) -> bytes:
    """Canonical JSON encoding of a response/request body."""
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def decode_json(body: bytes, *, what: str = "request body") -> Any:
    """Parse a JSON body, mapping malformed input to the ``validation`` code."""
    if not body:
        raise ValidationError(f"{what} must be a JSON document, got an empty body")
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ValidationError(f"malformed JSON {what}: {error}") from error


def slice_path(name: str, *, verb: str | None = None) -> str:
    """Path of one slice's resource, with the name URL-quoted.

    ``quote(..., safe="")`` escapes ``/`` and ``:`` inside names, so a slice
    named ``a:release`` yields ``/v1/slices/a%3Arelease`` -- distinct from
    the custom-verb route ``/v1/slices/a:release``.
    """
    path = f"{API_PREFIX}/slices/{quote(name, safe='')}"
    return f"{path}:{verb}" if verb else path


def parse_slice_path(segment: str) -> tuple[str, str | None]:
    """Split one ``/v1/slices/<segment>`` path segment into (name, verb).

    The verb is the suffix after the last *unquoted* ``:`` (quoted colons
    inside the name arrive as ``%3A`` and survive the split).
    """
    if ":" in segment:
        raw_name, verb = segment.rsplit(":", 1)
        return unquote(raw_name), verb
    return unquote(segment), None


def batch_tokens_from_header(value: str | None, count: int) -> list[str | None] | None:
    """Decode the :data:`IDEMPOTENCY_BATCH_HEADER` value (JSON array).

    Returns ``None`` when the header is absent; validates shape and length
    against the number of requests in the batch body.
    """
    if value is None:
        return None
    try:
        tokens = json.loads(value)
    except json.JSONDecodeError as error:
        raise ValidationError(
            f"malformed {IDEMPOTENCY_BATCH_HEADER} header (must be a JSON "
            f"array of tokens/nulls): {error}"
        ) from error
    if not isinstance(tokens, list) or not all(
        token is None or isinstance(token, str) for token in tokens
    ):
        raise ValidationError(
            f"{IDEMPOTENCY_BATCH_HEADER} header must be a JSON array of "
            "strings or nulls"
        )
    if len(tokens) != count:
        raise ValidationError(
            f"{IDEMPOTENCY_BATCH_HEADER} header lists {len(tokens)} tokens "
            f"for {count} requests",
            details={"requests": count, "tokens": len(tokens)},
        )
    return tokens
