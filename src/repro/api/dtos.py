"""Versioned, JSON-serialisable DTOs of the northbound SliceBroker API.

Every DTO:

* is a frozen dataclass with value semantics (``==`` compares content);
* serialises to a plain JSON-safe dictionary via ``to_dict`` and rebuilds
  exactly via ``from_dict`` (``from_dict(to_dict(x)) == x``, including through
  an actual ``json.dumps``/``json.loads`` round trip);
* stamps its wire form with an explicit schema version
  (:data:`repro.api.wire.WIRE_VERSION` under ``"schema_version"``) and rejects
  unknown versions with a :class:`~repro.api.errors.ValidationError`.

The ``V1`` suffix on :class:`SliceRequestV1` marks the *wire* format
generation, not the Python class layout: a breaking change to the payload
shape introduces ``SliceRequestV2`` next to it rather than mutating V1 under
existing clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.api.errors import ValidationError
from repro.api.events import LifecycleEvent
from repro.api.wire import check_version, require, stamp
from repro.controlplane.slice_manager import SliceDescriptor
from repro.core.slices import TEMPLATES, SliceRequest, SliceTemplate

__all__ = [
    "SliceRequestV1",
    "AdmissionTicket",
    "SliceStatus",
    "QuoteResponse",
    "EpochReport",
]


def _validated(build, dto_name: str):
    """Run a DTO constructor, translating malformed-payload failures into the
    taxonomy (AttributeError/KeyError cover wrong-shaped nested values, e.g.
    a scalar where a mapping is expected)."""
    try:
        return build()
    except ValidationError:
        raise
    except (TypeError, ValueError, AttributeError, KeyError) as error:
        raise ValidationError(f"invalid {dto_name} payload: {error}") from error


# --------------------------------------------------------------------- #
# Requests
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SliceRequestV1:
    """A tenant's slice request as it crosses the northbound boundary.

    Carries the full template inline (not just the catalogue name) so a
    payload is self-describing: tenants may request catalogue templates
    (:func:`SliceRequestV1.of`) or bespoke ones, and the broker never needs a
    shared catalogue to decode a request.
    """

    name: str
    template: SliceTemplate
    duration_epochs: int = 24
    penalty_factor: float = 1.0
    arrival_epoch: int = 0

    def __post_init__(self) -> None:
        # Structured taxonomy errors even on *direct* construction: the DTO
        # is itself the northbound boundary, so a tenant building one with a
        # bad field must see `code == "validation"`, not a bare ValueError
        # (RA02; the `of`/`from_dict` paths already translated, the plain
        # constructor leaked).
        if not self.name:
            raise ValidationError("slice name must be non-empty")
        if self.duration_epochs <= 0:
            raise ValidationError("duration_epochs must be positive")
        if self.penalty_factor < 0:
            raise ValidationError("penalty_factor must be non-negative")
        if self.arrival_epoch < 0:
            raise ValidationError("arrival_epoch must be non-negative")

    # -- conversions ---------------------------------------------------- #
    @classmethod
    def of(
        cls,
        name: str,
        slice_type: str,
        duration_epochs: int = 24,
        penalty_factor: float = 1.0,
        arrival_epoch: int = 0,
    ) -> "SliceRequestV1":
        """Build a request for one of the catalogue templates (Table 1)."""
        try:
            template = TEMPLATES[slice_type]
        except KeyError:
            raise ValidationError(
                f"unknown slice type {slice_type!r}",
                details={"known_types": sorted(TEMPLATES)},
            ) from None
        return _validated(
            lambda: cls(
                name=name,
                template=template,
                duration_epochs=duration_epochs,
                penalty_factor=penalty_factor,
                arrival_epoch=arrival_epoch,
            ),
            "SliceRequestV1",
        )

    @classmethod
    def from_request(cls, request: SliceRequest) -> "SliceRequestV1":
        """DTO form of a control-plane :class:`SliceRequest`."""
        return cls(
            name=request.name,
            template=request.template,
            duration_epochs=request.duration_epochs,
            penalty_factor=request.penalty_factor,
            arrival_epoch=request.arrival_epoch,
        )

    def to_request(self) -> SliceRequest:
        """Control-plane :class:`SliceRequest` this DTO describes."""
        return _validated(
            lambda: SliceRequest(
                name=self.name,
                template=self.template,
                duration_epochs=self.duration_epochs,
                penalty_factor=self.penalty_factor,
                arrival_epoch=self.arrival_epoch,
            ),
            "SliceRequestV1",
        )

    # -- wire format ---------------------------------------------------- #
    def to_dict(self) -> dict[str, Any]:
        return stamp(
            {
                "name": self.name,
                "slice_type": self.template.name,
                "template": {
                    "reward": self.template.reward,
                    "latency_tolerance_ms": self.template.latency_tolerance_ms,
                    "sla_mbps": self.template.sla_mbps,
                    "compute_baseline_cpus": self.template.compute_baseline_cpus,
                    "compute_cpus_per_mbps": self.template.compute_cpus_per_mbps,
                    "default_relative_std": self.template.default_relative_std,
                },
                "duration_epochs": self.duration_epochs,
                "penalty_factor": self.penalty_factor,
                "arrival_epoch": self.arrival_epoch,
            }
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SliceRequestV1":
        check_version(payload, "SliceRequestV1")
        template_payload = require(payload, "template", "SliceRequestV1")
        if not isinstance(template_payload, Mapping):
            raise ValidationError(
                "SliceRequestV1 'template' must be a mapping of template fields"
            )
        template = _validated(
            lambda: SliceTemplate(
                name=str(require(payload, "slice_type", "SliceRequestV1")),
                reward=float(require(template_payload, "reward", "SliceRequestV1.template")),
                latency_tolerance_ms=float(
                    require(template_payload, "latency_tolerance_ms", "SliceRequestV1.template")
                ),
                sla_mbps=float(require(template_payload, "sla_mbps", "SliceRequestV1.template")),
                compute_baseline_cpus=float(
                    require(template_payload, "compute_baseline_cpus", "SliceRequestV1.template")
                ),
                compute_cpus_per_mbps=float(
                    require(template_payload, "compute_cpus_per_mbps", "SliceRequestV1.template")
                ),
                default_relative_std=float(template_payload.get("default_relative_std", 0.25)),
            ),
            "SliceRequestV1",
        )
        return _validated(
            lambda: cls(
                name=str(require(payload, "name", "SliceRequestV1")),
                template=template,
                duration_epochs=int(require(payload, "duration_epochs", "SliceRequestV1")),
                penalty_factor=float(require(payload, "penalty_factor", "SliceRequestV1")),
                arrival_epoch=int(require(payload, "arrival_epoch", "SliceRequestV1")),
            ),
            "SliceRequestV1",
        )


# --------------------------------------------------------------------- #
# Tickets and statuses
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class AdmissionTicket:
    """Receipt for an accepted submission (queued, not yet decided).

    The ticket proves intake: the request sits in the slice manager's queue
    and will compete for admission at its arrival epoch.  Replaying the same
    ``client_token`` returns an equal ticket without enqueueing twice.
    """

    ticket_id: str
    slice_name: str
    arrival_epoch: int
    descriptor: SliceDescriptor
    client_token: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return stamp(
            {
                "ticket_id": self.ticket_id,
                "slice_name": self.slice_name,
                "arrival_epoch": self.arrival_epoch,
                "descriptor": self.descriptor.as_dict(),
                "client_token": self.client_token,
            }
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AdmissionTicket":
        check_version(payload, "AdmissionTicket")
        descriptor = _validated(
            lambda: SliceDescriptor.from_dict(require(payload, "descriptor", "AdmissionTicket")),
            "AdmissionTicket",
        )
        token = payload.get("client_token")
        return _validated(
            lambda: cls(
                ticket_id=str(require(payload, "ticket_id", "AdmissionTicket")),
                slice_name=str(require(payload, "slice_name", "AdmissionTicket")),
                arrival_epoch=int(require(payload, "arrival_epoch", "AdmissionTicket")),
                descriptor=descriptor,
                client_token=None if token is None else str(token),
            ),
            "AdmissionTicket",
        )


#: SliceStatus.state values (the registry lifecycle plus the broker-level
#: "queued" intake stage and "released" tenant-initiated termination).
STATUS_STATES = ("queued", "requested", "admitted", "rejected", "expired", "released")


@dataclass(frozen=True)
class SliceStatus:
    """Point-in-time lifecycle view of one slice, as clients see it."""

    name: str
    state: str
    arrival_epoch: int
    duration_epochs: int
    admitted_epoch: int | None = None
    expires_at: int | None = None
    compute_unit: str | None = None
    #: Excluded from __hash__ (dicts are unhashable); compared by equality.
    reservations_mbps: dict[str, float] = field(default_factory=dict, hash=False)
    renewal_count: int = 0

    def __post_init__(self) -> None:
        if self.state not in STATUS_STATES:
            raise ValidationError(
                f"unknown slice status state {self.state!r}; expected one of {STATUS_STATES}"
            )

    @property
    def is_live(self) -> bool:
        """True while the slice occupies (or is about to compete for) capacity."""
        return self.state in ("queued", "requested", "admitted")

    def to_dict(self) -> dict[str, Any]:
        return stamp(
            {
                "name": self.name,
                "state": self.state,
                "arrival_epoch": self.arrival_epoch,
                "duration_epochs": self.duration_epochs,
                "admitted_epoch": self.admitted_epoch,
                "expires_at": self.expires_at,
                "compute_unit": self.compute_unit,
                "reservations_mbps": dict(self.reservations_mbps),
                "renewal_count": self.renewal_count,
            }
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SliceStatus":
        check_version(payload, "SliceStatus")
        admitted = payload.get("admitted_epoch")
        expires = payload.get("expires_at")
        unit = payload.get("compute_unit")
        return _validated(
            lambda: cls(
                name=str(require(payload, "name", "SliceStatus")),
                state=str(require(payload, "state", "SliceStatus")),
                arrival_epoch=int(require(payload, "arrival_epoch", "SliceStatus")),
                duration_epochs=int(require(payload, "duration_epochs", "SliceStatus")),
                admitted_epoch=None if admitted is None else int(admitted),
                expires_at=None if expires is None else int(expires),
                compute_unit=None if unit is None else str(unit),
                reservations_mbps={
                    str(k): float(v)
                    for k, v in payload.get("reservations_mbps", {}).items()
                },
                renewal_count=int(payload.get("renewal_count", 0)),
            ),
            "SliceStatus",
        )


# --------------------------------------------------------------------- #
# Quotes
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class QuoteResponse:
    """Non-binding admission quote: what the broker would plan for a request.

    Mirrors what the forecasting block feeds the AC-RR problem (peak-load
    forecast and normalised uncertainty) together with the economic terms of
    the template -- nothing here mutates broker state.
    """

    slice_name: str
    slice_type: str
    sla_mbps: float
    forecast_peak_mbps: float
    forecast_sigma: float
    reward_per_epoch: float
    penalty_rate_per_mbps: float

    def to_dict(self) -> dict[str, Any]:
        return stamp(
            {
                "slice_name": self.slice_name,
                "slice_type": self.slice_type,
                "sla_mbps": self.sla_mbps,
                "forecast_peak_mbps": self.forecast_peak_mbps,
                "forecast_sigma": self.forecast_sigma,
                "reward_per_epoch": self.reward_per_epoch,
                "penalty_rate_per_mbps": self.penalty_rate_per_mbps,
            }
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QuoteResponse":
        check_version(payload, "QuoteResponse")
        return _validated(
            lambda: cls(
                slice_name=str(require(payload, "slice_name", "QuoteResponse")),
                slice_type=str(require(payload, "slice_type", "QuoteResponse")),
                sla_mbps=float(require(payload, "sla_mbps", "QuoteResponse")),
                forecast_peak_mbps=float(
                    require(payload, "forecast_peak_mbps", "QuoteResponse")
                ),
                forecast_sigma=float(require(payload, "forecast_sigma", "QuoteResponse")),
                reward_per_epoch=float(require(payload, "reward_per_epoch", "QuoteResponse")),
                penalty_rate_per_mbps=float(
                    require(payload, "penalty_rate_per_mbps", "QuoteResponse")
                ),
            ),
            "QuoteResponse",
        )


# --------------------------------------------------------------------- #
# Epoch reports
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class EpochReport:
    """What one decision epoch did, as returned by ``advance_epoch``.

    ``accepted``/``rejected`` mirror the epoch's admission decision (accepted
    includes committed slices whose reservations were re-confirmed);
    ``expired``/``renewed`` list the lifecycle transitions the epoch caused;
    ``events`` carries the full ordered event stream the broker published for
    the epoch.

    Degradation fields (see DESIGN.md, "Fault model & degraded modes"):
    ``degraded`` is True when any fault fired during the epoch or the
    decision came from a fallback tier; ``solver_tier`` names the
    safeguard-chain tier that produced the decision ("primary",
    "warm_replay", "no_overbooking", "reject_all"); ``solver_retries``
    counts transient-failure retries spent; ``health`` is the broker health
    state after the epoch ("healthy", "degraded", "safe_mode");
    ``degraded_reasons`` lists the faults/fallbacks behind the flag;
    ``rehomed`` names the slices a mid-epoch link failure displaced into the
    renewal path this epoch.
    """

    epoch: int
    idle: bool
    objective_value: float
    accepted: tuple[str, ...] = ()
    rejected: tuple[str, ...] = ()
    expired: tuple[str, ...] = ()
    renewed: tuple[str, ...] = ()
    active: tuple[str, ...] = ()
    pending_requests: int = 0
    solver: str = ""
    solver_iterations: int = 0
    solver_runtime_s: float = 0.0
    solver_optimal: bool = True
    solver_warm_cuts: int = 0
    solver_message: str = ""
    #: True when the solver hit its wall-clock budget and returned its best
    #: incumbent without an optimality certificate (distinct from
    #: ``solver_optimal``, which can also be False for a clean gap-limited
    #: stop); consumers should treat such a decision as provisional.
    solver_time_truncated: bool = False
    events: tuple[LifecycleEvent, ...] = ()
    degraded: bool = False
    solver_tier: str = "primary"
    solver_retries: int = 0
    health: str = "healthy"
    degraded_reasons: tuple[str, ...] = ()
    rehomed: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return stamp(
            {
                "epoch": self.epoch,
                "idle": self.idle,
                "objective_value": self.objective_value,
                "accepted": list(self.accepted),
                "rejected": list(self.rejected),
                "expired": list(self.expired),
                "renewed": list(self.renewed),
                "active": list(self.active),
                "pending_requests": self.pending_requests,
                "solver": self.solver,
                "solver_iterations": self.solver_iterations,
                "solver_runtime_s": self.solver_runtime_s,
                "solver_optimal": self.solver_optimal,
                "solver_warm_cuts": self.solver_warm_cuts,
                "solver_message": self.solver_message,
                "solver_time_truncated": self.solver_time_truncated,
                "events": [event.to_dict() for event in self.events],
                "degraded": self.degraded,
                "solver_tier": self.solver_tier,
                "solver_retries": self.solver_retries,
                "health": self.health,
                "degraded_reasons": list(self.degraded_reasons),
                "rehomed": list(self.rehomed),
            }
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EpochReport":
        check_version(payload, "EpochReport")

        def names(key: str) -> tuple[str, ...]:
            value = payload.get(key, ())
            if not isinstance(value, (list, tuple)):
                # A scalar (notably a string, which would silently explode
                # into per-character "names") is a malformed payload.
                raise ValidationError(
                    f"EpochReport field {key!r} must be a list of slice names, "
                    f"got {type(value).__name__}"
                )
            return tuple(str(name) for name in value)

        events = _validated(
            lambda: tuple(
                LifecycleEvent.from_dict(event) for event in payload.get("events", ())
            ),
            "EpochReport",
        )
        return _validated(
            lambda: cls(
                epoch=int(require(payload, "epoch", "EpochReport")),
                idle=bool(require(payload, "idle", "EpochReport")),
                objective_value=float(require(payload, "objective_value", "EpochReport")),
                accepted=names("accepted"),
                rejected=names("rejected"),
                expired=names("expired"),
                renewed=names("renewed"),
                active=names("active"),
                pending_requests=int(payload.get("pending_requests", 0)),
                solver=str(payload.get("solver", "")),
                solver_iterations=int(payload.get("solver_iterations", 0)),
                solver_runtime_s=float(payload.get("solver_runtime_s", 0.0)),
                solver_optimal=bool(payload.get("solver_optimal", True)),
                solver_warm_cuts=int(payload.get("solver_warm_cuts", 0)),
                solver_message=str(payload.get("solver_message", "")),
                solver_time_truncated=bool(
                    payload.get("solver_time_truncated", False)
                ),
                events=events,
                degraded=bool(payload.get("degraded", False)),
                solver_tier=str(payload.get("solver_tier", "primary")),
                solver_retries=int(payload.get("solver_retries", 0)),
                health=str(payload.get("health", "healthy")),
                degraded_reasons=names("degraded_reasons"),
                rehomed=names("rehomed"),
            ),
            "EpochReport",
        )
