"""Slice lifecycle events and the broker's subscription bus.

Monitoring, experiment harnesses and external clients subscribe to lifecycle
transitions instead of polling the registry.  Events are *facts about
completed transitions*: the broker publishes them only after the registry and
the domain controllers are consistent for the epoch, so a subscriber that
reads broker state from inside its callback sees the post-transition world.

Delivery is deterministic:

* within one epoch, events are ordered ``EXPIRED -> RENEWED -> ADMITTED ->
  REJECTED`` (the order the transitions happen inside the epoch: expiries are
  processed at epoch start, renewals re-register the name, then the admission
  decision lands), with slice names sorted alphabetically inside each kind;
* subscribers are invoked in subscription order, each receiving the events
  one at a time in the order above.

A renewal (PR 4 semantics: terminal record archived, fresh request competes
like a new arrival) of an admitted slice that expires and is re-admitted in
the same epoch therefore yields ``EXPIRED(name), RENEWED(name),
ADMITTED(name)`` -- in that order, always.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.api.wire import check_version, require, stamp


class LifecycleEventKind(str, enum.Enum):
    """The lifecycle transitions the broker publishes."""

    ADMITTED = "admitted"
    REJECTED = "rejected"
    EXPIRED = "expired"
    RENEWED = "renewed"
    RELEASED = "released"


#: Delivery order of event kinds within one epoch report.
EPOCH_EVENT_ORDER = (
    LifecycleEventKind.EXPIRED,
    LifecycleEventKind.RENEWED,
    LifecycleEventKind.ADMITTED,
    LifecycleEventKind.REJECTED,
)


@dataclass(frozen=True, eq=True)
class LifecycleEvent:
    """One completed lifecycle transition of one slice."""

    kind: LifecycleEventKind
    slice_name: str
    epoch: int
    #: JSON-scalar decision metadata (compute unit, reserved bitrate, ...).
    #: Excluded from __hash__ (dicts are unhashable) so events can live in
    #: sets/dict keys -- e.g. a subscriber deduplicating its stream; equality
    #: still compares it.
    metadata: dict[str, Any] = field(default_factory=dict, hash=False)

    def to_dict(self) -> dict[str, Any]:
        return stamp(
            {
                "kind": self.kind.value,
                "slice_name": self.slice_name,
                "epoch": self.epoch,
                "metadata": dict(self.metadata),
            }
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LifecycleEvent":
        from repro.api.errors import ValidationError

        check_version(payload, "LifecycleEvent")
        kind_value = require(payload, "kind", "LifecycleEvent")
        try:
            kind = LifecycleEventKind(kind_value)
        except ValueError:
            raise ValidationError(
                f"unknown lifecycle event kind {kind_value!r}",
                details={"known_kinds": [k.value for k in LifecycleEventKind]},
            ) from None
        try:
            return cls(
                kind=kind,
                slice_name=str(require(payload, "slice_name", "LifecycleEvent")),
                epoch=int(require(payload, "epoch", "LifecycleEvent")),
                metadata=dict(payload.get("metadata", {})),
            )
        except ValidationError:
            raise
        except (TypeError, ValueError, AttributeError) as error:
            raise ValidationError(f"invalid LifecycleEvent payload: {error}") from error


#: Subscriber signature: called once per event, in deterministic order.
EventCallback = Callable[[LifecycleEvent], None]


class EventBus:
    """Deterministic, synchronous fan-out of lifecycle events.

    Subscribers are invoked in subscription order; an optional kind filter
    restricts which events a subscriber sees.  Callbacks run synchronously on
    the publisher's thread -- an exception from a callback propagates to the
    publisher (the broker), which keeps failures loud and ordering trivially
    deterministic.
    """

    def __init__(self) -> None:
        self._subscribers: dict[int, tuple[EventCallback, frozenset[LifecycleEventKind] | None]] = {}
        self._next_token = 0

    def subscribe(
        self,
        callback: EventCallback,
        kinds: Iterable[LifecycleEventKind] | None = None,
    ) -> int:
        """Register ``callback``; returns a token for :meth:`unsubscribe`."""
        kind_filter = None if kinds is None else frozenset(kinds)
        token = self._next_token
        self._next_token += 1
        self._subscribers[token] = (callback, kind_filter)
        return token

    def unsubscribe(self, token: int) -> None:
        self._subscribers.pop(token, None)

    def __len__(self) -> int:
        return len(self._subscribers)

    def publish(self, events: Iterable[LifecycleEvent]) -> None:
        """Deliver ``events`` (in order) to every subscriber (in order)."""
        for event in events:
            for callback, kind_filter in list(self._subscribers.values()):
                if kind_filter is None or event.kind in kind_filter:
                    callback(event)
