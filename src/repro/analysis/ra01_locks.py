"""RA01 -- broker lock discipline.

The PR 8 concurrency contract (DESIGN.md, "Thread safety"): every mutating
public entry point of :class:`~repro.api.broker.SliceBroker` serialises on
the one reentrant admission-path lock (``self._lock``), while ``quote`` and
the documented read-only escape hatches are *pure reads* that must never
take it (a pure read acquiring the lock would serialise the hot quote path
behind epoch solves -- and, worse, would advertise a consistency level the
contract does not promise).

Mechanically:

* a public method (no leading underscore, not a ``@property``) counts as
  *locked* when it is decorated ``@_synchronized``, opens a
  ``with self._lock`` block, or calls ``self._lock.acquire()``;
* every public method not in the declared read surface must be locked;
* the declared pure reads / lock-free escape hatches
  (:data:`PURE_READ_METHODS`) must **not** reference ``self._lock`` at all.

The read surface is declared here, not inferred: adding a new lock-free
method to the broker is a contract change and must be reviewed as one (the
checker fails until the method is either locked or added to
:data:`PURE_READ_METHODS`).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Checker, Finding, ProjectTree, SourceModule, dotted_name

#: Module that hosts the guarded facade.
BROKER_MODULE_SUFFIX = "repro/api/broker.py"

#: The guarded class.
BROKER_CLASS = "SliceBroker"

#: Attribute holding the admission-path lock.
LOCK_ATTR = "_lock"

#: Decorator that wraps a method in the admission-path lock.
SYNCHRONIZED_DECORATOR = "_synchronized"

#: Methods that are pure reads / lock-free escape hatches *by contract*
#: (DESIGN.md): they must not touch the admission lock.  ``quote`` is the
#: documented pure read; the three registry accessors are the in-process
#: escape hatches whose snapshot semantics are delegated to the registry.
PURE_READ_METHODS = frozenset(
    {"quote", "active_slices", "admitted_names", "rejected_names"}
)

#: Dunder/lifecycle methods exempt from the discipline: ``__init__`` runs
#: before the instance is shared, so locking there is meaningless.
EXEMPT_METHODS = frozenset({"__init__"})


def _is_lock_reference(node: ast.AST) -> bool:
    """True for any ``self._lock`` attribute access."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == LOCK_ATTR
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _references_lock(func: ast.FunctionDef) -> bool:
    return any(_is_lock_reference(node) for node in ast.walk(func))


def _acquires_lock(func: ast.FunctionDef) -> bool:
    """Decorated ``@_synchronized``, ``with self._lock`` or ``.acquire()``."""
    for decorator in func.decorator_list:
        name = dotted_name(decorator)
        if name and name.split(".")[-1] == SYNCHRONIZED_DECORATOR:
            return True
    for node in ast.walk(func):
        if isinstance(node, ast.With):
            for item in node.items:
                if _is_lock_reference(item.context_expr):
                    return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
            and _is_lock_reference(node.func.value)
        ):
            return True
    return False


def _is_property(func: ast.FunctionDef) -> bool:
    for decorator in func.decorator_list:
        name = dotted_name(decorator)
        if name and name.split(".")[-1] in {"property", "cached_property"}:
            return True
    return False


class LockDisciplineChecker(Checker):
    rule = "RA01"
    title = "SliceBroker admission-lock discipline"
    description = (
        "Every mutating public SliceBroker method must hold the admission "
        "lock (@_synchronized, `with self._lock` or self._lock.acquire()); "
        "declared pure reads (quote, the registry escape hatches) must not "
        "touch it."
    )

    def check(self, tree: ProjectTree) -> Iterator[Finding]:
        module = tree.find(BROKER_MODULE_SUFFIX)
        if module is None:
            return
        yield from self._check_module(module)

    def _check_module(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == BROKER_CLASS:
                yield from self._check_class(module, node)

    def _check_class(self, module: SourceModule, cls: ast.ClassDef) -> Iterator[Finding]:
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            symbol = f"{cls.name}.{item.name}"
            if item.name in PURE_READ_METHODS:
                if _references_lock(item):
                    yield self.finding(
                        module,
                        item,
                        symbol,
                        f"{item.name} is a declared pure read but references "
                        f"self.{LOCK_ATTR}; pure reads must stay lock-free "
                        "(or be removed from PURE_READ_METHODS and locked)",
                    )
                continue
            if (
                item.name.startswith("_")
                or item.name in EXEMPT_METHODS
                or _is_property(item)
            ):
                continue
            if not _acquires_lock(item):
                yield self.finding(
                    module,
                    item,
                    symbol,
                    f"public SliceBroker method {item.name} touches facade "
                    "state without the admission lock: decorate it "
                    f"@{SYNCHRONIZED_DECORATOR}, wrap its body in `with "
                    f"self.{LOCK_ATTR}:`, or declare it a pure read in "
                    "PURE_READ_METHODS",
                )
