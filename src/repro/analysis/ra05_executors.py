"""RA05 -- executor submission safety.

The :mod:`repro.utils.executors` contract: the function an executor fans out
must be a **module-level callable**.  The process pool hard-requires it
(pickling); the thread pool merely tolerates closures -- but a closure over
solver/controller mutable state is exactly how a "works serially" sweep
becomes a torn-state race the moment someone flips the executor, so the
contract is enforced uniformly and deliberate exceptions are grandfathered
in ``analysis-baseline.toml`` with their justification.

Mechanically, for every ``<something>executor-ish<.map(fn, ...)`` call site
(the receiver is named ``*executor*`` / ``*pool*``, or is a direct
``resolve_executor(...)`` / ``default_executor(...)`` result):

* ``fn`` as a ``lambda`` is a finding;
* ``fn`` naming a function *defined inside the enclosing scope* (a closure)
  is a finding;
* ``fn`` as an attribute rooted at ``self`` or ``cls`` (a bound method
  dragging the instance -- solver/controller state -- into the pool) is a
  finding;
* ``fn`` naming a module-level def / import, or an attribute rooted at a
  module-level import, passes.

``functools.partial(module_fn, ...)`` passes (the partial pins arguments,
not ambient state); a partial over a lambda or bound method does not.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Checker,
    Finding,
    ProjectTree,
    ScopedVisitor,
    SourceModule,
    module_level_names,
)

#: Receiver name fragments that mark an executor-pool ``.map`` call.
EXECUTOR_NAME_FRAGMENTS = ("executor", "pool")

#: Factory calls whose result is an executor even without the name.
EXECUTOR_FACTORIES = frozenset(
    {
        "resolve_executor",
        "default_executor",
        "SerialExecutor",
        "ProcessPoolRunExecutor",
        "ThreadPoolRunExecutor",
    }
)


def _receiver_is_executor(node: ast.expr) -> bool:
    """Heuristic: does this ``.map`` receiver look like an executors pool?"""
    if isinstance(node, ast.Name):
        return any(f in node.id.lower() for f in EXECUTOR_NAME_FRAGMENTS)
    if isinstance(node, ast.Attribute):
        if any(f in node.attr.lower() for f in EXECUTOR_NAME_FRAGMENTS):
            return True
        return _receiver_is_executor(node.value)
    if isinstance(node, ast.Call):
        callee = node.func
        if isinstance(callee, ast.Name) and callee.id in EXECUTOR_FACTORIES:
            return True
        if isinstance(callee, ast.Attribute) and callee.attr in EXECUTOR_FACTORIES:
            return True
    return False


def _attribute_root(node: ast.expr) -> ast.expr:
    while isinstance(node, ast.Attribute):
        node = node.value
    return node


class _MapScanner(ScopedVisitor):
    def __init__(self, module: SourceModule, checker: "ExecutorSafetyChecker") -> None:
        super().__init__()
        self.module = module
        self.checker = checker
        self.findings: list[Finding] = []
        self.module_names = module_level_names(module.tree)
        #: Names of defs nested inside the current (non-module) scope stack.
        self._local_defs: list[set[str]] = []

    # -- scope bookkeeping: which names are local function defs ---------- #
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self._local_defs:
            self._local_defs[-1].add(node.name)
        self._local_defs.append(set())
        super().visit_FunctionDef(node)
        self._local_defs.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        if self._local_defs:
            self._local_defs[-1].add(node.name)
        self._local_defs.append(set())
        super().visit_AsyncFunctionDef(node)
        self._local_defs.pop()

    def _is_local_def(self, name: str) -> bool:
        return any(name in scope for scope in self._local_defs)

    # -- the rule -------------------------------------------------------- #
    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "map"
            and node.args
            and _receiver_is_executor(node.func.value)
        ):
            self._check_fn(node, node.args[0])
        self.generic_visit(node)

    def _report(self, node: ast.AST, why: str) -> None:
        self.findings.append(
            self.checker.finding(
                self.module,
                node,
                self.symbol,
                f"{why}; executor-pool callables must be module-level "
                "functions that close over no solver/controller mutable "
                "state (see utils/executors contract)",
            )
        )

    def _check_fn(self, call: ast.Call, fn: ast.expr) -> None:
        # functools.partial(inner, ...): judge the inner callable.
        if isinstance(fn, ast.Call):
            callee = fn.func
            callee_name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr
                if isinstance(callee, ast.Attribute)
                else None
            )
            if callee_name == "partial" and fn.args:
                self._check_fn(call, fn.args[0])
                return
            self._report(fn, "callable built by an arbitrary call expression")
            return
        if isinstance(fn, ast.Lambda):
            self._report(fn, "lambda submitted to an executor pool")
            return
        if isinstance(fn, ast.Name):
            if self._is_local_def(fn.id):
                self._report(
                    fn, f"locally-defined closure {fn.id!r} submitted to an executor pool"
                )
            elif fn.id not in self.module_names:
                self._report(
                    fn,
                    f"callable {fn.id!r} is not a module-level name (local "
                    "variable or closure)",
                )
            return
        if isinstance(fn, ast.Attribute):
            root = _attribute_root(fn)
            if isinstance(root, ast.Name) and root.id in {"self", "cls"}:
                self._report(
                    fn,
                    f"bound method `{ast.unparse(fn)}` drags the instance "
                    "(solver/controller state) into the pool",
                )
            elif not (isinstance(root, ast.Name) and root.id in self.module_names):
                self._report(
                    fn, f"callable `{ast.unparse(fn)}` is not rooted at module scope"
                )
            return
        self._report(fn, "unrecognised callable expression submitted to an executor pool")


class ExecutorSafetyChecker(Checker):
    rule = "RA05"
    title = "executor-pool submission safety"
    description = (
        "Callables handed to utils/executors pools (.map) must be "
        "module-level functions -- no lambdas, closures or bound methods "
        "over solver/controller mutable state."
    )

    def check(self, tree: ProjectTree) -> Iterator[Finding]:
        for module in tree.modules:
            scanner = _MapScanner(module, self)
            scanner.visit(module.tree)
            yield from scanner.findings
