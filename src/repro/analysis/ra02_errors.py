"""RA02 -- stable error taxonomy at the northbound API boundary.

The PR 5 contract (DESIGN.md, "Error taxonomy"): every failure crossing the
``repro/api/`` boundary is a :class:`~repro.api.errors.BrokerError` subclass
carrying a stable machine-readable ``code``; bare builtin exceptions never
leak northbound.  The PR 8 transport additionally promises exactly one HTTP
status per code (``transport.STATUS_BY_CODE``).

Mechanically, over every module under ``repro/api/``:

* ``raise ValueError/RuntimeError/KeyError/TypeError/Exception(...)`` (with
  or without arguments) is a finding -- boundary code raises taxonomy
  errors, internal exceptions are translated at the edge.
  Genuinely internal guards (a helper's cannot-happen assertion) are
  grandfathered in ``analysis-baseline.toml`` with a justification, never
  silently exempted here;
* every ``BrokerError`` subclass in the errors module must override ``code``
  and be registered in the ``ERROR_TYPES`` decode table;
* every registered ``code`` must have an entry in the transport's
  ``STATUS_BY_CODE`` mapping (one status per code is the wire contract).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Checker, Finding, ProjectTree, ScopedVisitor, SourceModule

#: Package prefix of the boundary modules (matched against module paths).
API_PACKAGE_FRAGMENT = "repro/api/"

#: Module declaring the taxonomy.
ERRORS_MODULE_SUFFIX = "repro/api/errors.py"

#: Module declaring the one-status-per-code wire mapping.
TRANSPORT_MODULE_SUFFIX = "repro/api/transport.py"

#: Builtin exception types that must not cross the boundary un-translated.
FORBIDDEN_RAISES = frozenset(
    {"ValueError", "RuntimeError", "KeyError", "TypeError", "Exception"}
)

#: Root class of the taxonomy.
BASE_ERROR_CLASS = "BrokerError"


class _RaiseScanner(ScopedVisitor):
    def __init__(self) -> None:
        super().__init__()
        self.hits: list[tuple[ast.Raise, str, str]] = []

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        name: str | None = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in FORBIDDEN_RAISES:
            self.hits.append((node, self.symbol, name))
        self.generic_visit(node)


def _class_code_attr(cls: ast.ClassDef) -> str | None:
    """The literal value of a ``code = "..."`` class attribute, if any."""
    for item in cls.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) and target.id == "code":
                    if isinstance(item.value, ast.Constant) and isinstance(
                        item.value.value, str
                    ):
                        return item.value.value
    return None


def _broker_error_classes(tree: ast.Module) -> list[ast.ClassDef]:
    """Classes deriving (transitively, within the module) from BrokerError."""
    by_name = {
        node.name: node for node in tree.body if isinstance(node, ast.ClassDef)
    }
    subclasses: set[str] = {BASE_ERROR_CLASS}
    # Fixed-point over single-module inheritance chains.
    changed = True
    while changed:
        changed = False
        for cls in by_name.values():
            if cls.name in subclasses:
                continue
            for base in cls.bases:
                if isinstance(base, ast.Name) and base.id in subclasses:
                    subclasses.add(cls.name)
                    changed = True
    return [
        by_name[name]
        for name in by_name
        if name in subclasses and name != BASE_ERROR_CLASS
    ]


def _registered_class_names(tree: ast.Module) -> set[str]:
    """Class names listed in the ``ERROR_TYPES`` registration tuple."""
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "ERROR_TYPES" for t in targets
        ):
            continue
        return {
            inner.id
            for inner in ast.walk(value)
            if isinstance(inner, ast.Name) and inner.id != "cls"
        }
    return set()


def _status_codes(tree: ast.Module) -> set[str] | None:
    """String keys of the ``STATUS_BY_CODE`` dict literal (None if absent)."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is not None and any(
            isinstance(t, ast.Name) and t.id == "STATUS_BY_CODE" for t in targets
        ):
            if isinstance(value, ast.Dict):
                return {
                    key.value
                    for key in value.keys
                    if isinstance(key, ast.Constant) and isinstance(key.value, str)
                }
    return None


class ErrorTaxonomyChecker(Checker):
    rule = "RA02"
    title = "BrokerError taxonomy at the repro/api boundary"
    description = (
        "repro/api modules must raise BrokerError subclasses, never bare "
        "ValueError/RuntimeError/KeyError/TypeError; every subclass must "
        "override .code, be registered in ERROR_TYPES, and have a "
        "STATUS_BY_CODE entry."
    )

    def check(self, tree: ProjectTree) -> Iterator[Finding]:
        for module in tree.modules:
            if API_PACKAGE_FRAGMENT in module.path:
                yield from self._check_raises(module)
        errors_module = tree.find(ERRORS_MODULE_SUFFIX)
        if errors_module is not None:
            yield from self._check_registry(tree, errors_module)

    def _check_raises(self, module: SourceModule) -> Iterator[Finding]:
        scanner = _RaiseScanner()
        scanner.visit(module.tree)
        for node, symbol, name in scanner.hits:
            yield self.finding(
                module,
                node,
                symbol,
                f"bare `raise {name}` inside the repro/api boundary; raise a "
                "BrokerError subclass (or translate at the caller) so the "
                "stable error taxonomy holds northbound",
            )

    def _check_registry(
        self, tree: ProjectTree, errors_module: SourceModule
    ) -> Iterator[Finding]:
        classes = _broker_error_classes(errors_module.tree)
        registered = _registered_class_names(errors_module.tree)
        codes: list[tuple[ast.ClassDef, str]] = []
        for cls in classes:
            code = _class_code_attr(cls)
            symbol = cls.name
            if code is None:
                yield self.finding(
                    errors_module,
                    cls,
                    symbol,
                    f"{cls.name} subclasses {BASE_ERROR_CLASS} but does not "
                    "override the stable `code` attribute",
                )
                continue
            codes.append((cls, code))
            if registered and cls.name not in registered:
                yield self.finding(
                    errors_module,
                    cls,
                    symbol,
                    f"{cls.name} (code {code!r}) is not registered in "
                    "ERROR_TYPES; wire-form decoding would fall back to the "
                    "base BrokerError",
                )
        transport = tree.find(TRANSPORT_MODULE_SUFFIX)
        if transport is None:
            return
        statuses = _status_codes(transport.tree)
        if statuses is None:
            return
        for cls, code in codes:
            if code not in statuses:
                yield self.finding(
                    errors_module,
                    cls,
                    cls.name,
                    f"error code {code!r} has no STATUS_BY_CODE entry in the "
                    "transport; every code maps to exactly one HTTP status",
                )
