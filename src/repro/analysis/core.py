"""AST-walking framework of the ``repro.analysis`` invariant checker suite.

The repo's load-bearing conventions -- broker lock discipline, the stable
``BrokerError`` taxonomy at the API boundary, byte-determinism of everything
content-hashed, versioned DTO wire round-trips, executor submission safety --
lived only in DESIGN.md prose and after-the-fact tests until this package.
Each convention is now a *rule* (``RA01``..``RA05``) enforced mechanically
over the parsed source tree, in the spirit of refinement checking: the
implementation is verified against its declared contract by a tool, not by
reviewer inspection.

Vocabulary:

* :class:`SourceModule` -- one parsed file (repo-relative path, source text,
  ``ast`` tree).  Built from disk or, for fixture tests, from an in-memory
  string.
* :class:`ProjectTree` -- the set of modules a check runs over, plus
  non-Python documents the cross-checks consult (DESIGN.md for the error
  taxonomy table).  Fixture trees are assembled with
  :meth:`ProjectTree.from_sources`; the real tree with
  :meth:`ProjectTree.load`.
* :class:`Checker` -- one rule.  A checker sees the whole tree (several rules
  are cross-module: error codes declared in ``errors.py`` must appear in
  ``transport.STATUS_BY_CODE`` and in DESIGN.md) and yields
  :class:`Finding` records.
* :class:`Finding` -- one violation, addressed by ``file:line`` for humans
  and by the stable ``(rule, path, symbol)`` key for the baseline.
* :class:`Baseline` -- the explicit allowlist (``analysis-baseline.toml``)
  of grandfathered findings.  Keys are *symbol-stable*, not line-stable, so
  unrelated edits to a file do not churn the baseline; a baseline entry whose
  finding no longer fires is itself an error (stale suppressions rot).
"""

from __future__ import annotations

import ast
import json
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

#: Name of the committed allowlist file at the repo root.
BASELINE_FILENAME = "analysis-baseline.toml"

#: Directories never scanned (caches, VCS internals).
_SKIPPED_DIR_NAMES = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


# --------------------------------------------------------------------- #
# Findings
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Finding:
    """One rule violation at one site.

    ``symbol`` is the dotted qualname of the enclosing scope
    (``SliceBroker.submit``, ``<module>`` for module-level code): the
    baseline keys on ``(rule, path, symbol)`` so entries survive unrelated
    line churn but go stale when the offending scope is fixed or removed.
    """

    rule: str
    path: str
    line: int
    symbol: str
    message: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} [{self.symbol}] {self.message}"


# --------------------------------------------------------------------- #
# Source modules and project trees
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SourceModule:
    """One parsed Python file of the tree under analysis."""

    #: Repo-relative POSIX path (``src/repro/api/broker.py``).
    path: str
    source: str
    tree: ast.Module

    @classmethod
    def from_source(cls, source: str, path: str) -> "SourceModule":
        return cls(path=path, source=source, tree=ast.parse(source, filename=path))

    def matches(self, suffix: str) -> bool:
        """True when this module's path ends with ``suffix`` (POSIX form)."""
        return self.path == suffix or self.path.endswith("/" + suffix.lstrip("/"))


class ProjectTree:
    """The file set one ``check`` run analyses.

    Holds the parsed Python modules plus the text documents cross-checks
    read (``documents`` maps repo-relative names like ``DESIGN.md`` to their
    contents).  Fixture tests build tiny in-memory trees; the CLI and the
    golden test load the real repo.
    """

    def __init__(
        self,
        modules: Sequence[SourceModule],
        documents: Mapping[str, str] | None = None,
    ):
        self.modules: list[SourceModule] = sorted(modules, key=lambda m: m.path)
        self.documents: dict[str, str] = dict(documents or {})

    @classmethod
    def from_sources(
        cls,
        sources: Mapping[str, str],
        documents: Mapping[str, str] | None = None,
    ) -> "ProjectTree":
        """Build an in-memory tree (fixture tests compile snippets here)."""
        return cls(
            [SourceModule.from_source(text, path) for path, text in sources.items()],
            documents,
        )

    @classmethod
    def load(
        cls,
        root: Path,
        paths: Sequence[str] = ("src",),
        documents: Sequence[str] = ("DESIGN.md",),
    ) -> "ProjectTree":
        """Parse every ``*.py`` file under ``root/<path>`` for each path.

        A file that does not parse is reported by the caller via the
        :class:`SyntaxError` this raises -- syntax rot is a finding-class
        problem, but the byte-compile CI gate owns it; here it just fails
        loudly.
        """
        modules: list[SourceModule] = []
        for entry in paths:
            base = root / entry
            if base.is_file():
                files: Iterable[Path] = [base]
            else:
                files = sorted(
                    p
                    for p in base.rglob("*.py")
                    if not _SKIPPED_DIR_NAMES.intersection(p.parts)
                )
            for file_path in files:
                rel = file_path.relative_to(root).as_posix()
                modules.append(SourceModule.from_source(file_path.read_text(), rel))
        docs: dict[str, str] = {}
        for name in documents:
            doc_path = root / name
            if doc_path.is_file():
                docs[name] = doc_path.read_text()
        return cls(modules, docs)

    def find(self, suffix: str) -> SourceModule | None:
        """The unique module whose path ends with ``suffix`` (None if absent)."""
        matches = [module for module in self.modules if module.matches(suffix)]
        return matches[0] if len(matches) == 1 else None

    def document(self, name: str) -> str | None:
        return self.documents.get(name)


# --------------------------------------------------------------------- #
# Scope tracking (qualnames for findings)
# --------------------------------------------------------------------- #
class ScopedVisitor(ast.NodeVisitor):
    """A NodeVisitor that tracks the dotted qualname of the current scope.

    Checkers subclass this to stamp findings with a symbol that is stable
    across line churn.  ``self.symbol`` is ``<module>`` at the top level and
    ``Class.method`` / ``outer.<locals>.inner`` inside definitions, mirroring
    ``__qualname__``.
    """

    def __init__(self) -> None:
        self._scopes: list[str] = []

    @property
    def symbol(self) -> str:
        return ".".join(self._scopes) if self._scopes else "<module>"

    def _enter(self, name: str, node: ast.AST) -> None:
        self._scopes.append(name)
        self.generic_visit(node)
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter(node.name, node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter(node.name, node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._enter(node.name, node)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_level_names(tree: ast.Module) -> set[str]:
    """Names bound at module scope (imports, defs, classes, assignments)."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            names.update(alias.asname or alias.name.split(".")[0] for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            names.update(alias.asname or alias.name for alias in node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        names.add(name_node.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


# --------------------------------------------------------------------- #
# Checkers
# --------------------------------------------------------------------- #
class Checker:
    """One invariant rule.  Subclasses set the metadata and implement check."""

    #: Stable rule code (``RA01``); the baseline and the CLI key on it.
    rule: str = "RA00"
    #: One-line summary shown by ``list-rules``.
    title: str = ""
    #: The prose convention the rule replaces (shown by ``list-rules -v``).
    description: str = ""

    def check(self, tree: ProjectTree) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: SourceModule, node: ast.AST, symbol: str, message: str) -> Finding:
        return Finding(
            rule=self.rule,
            path=module.path,
            line=getattr(node, "lineno", 0),
            symbol=symbol,
            message=message,
        )


def default_checkers() -> list[Checker]:
    """The five repo-specific checkers, in rule order."""
    # Imported lazily so ``core`` stays import-cycle-free (each checker
    # module imports ``core``).
    from repro.analysis.ra01_locks import LockDisciplineChecker
    from repro.analysis.ra02_errors import ErrorTaxonomyChecker
    from repro.analysis.ra03_determinism import DeterminismChecker
    from repro.analysis.ra04_wire import WireContractChecker
    from repro.analysis.ra05_executors import ExecutorSafetyChecker

    return [
        LockDisciplineChecker(),
        ErrorTaxonomyChecker(),
        DeterminismChecker(),
        WireContractChecker(),
        ExecutorSafetyChecker(),
    ]


# --------------------------------------------------------------------- #
# Baseline (grandfathered findings)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding: suppressed, but only while it still fires."""

    rule: str
    path: str
    symbol: str
    reason: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)


@dataclass
class Baseline:
    """The parsed ``analysis-baseline.toml`` allowlist."""

    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def parse(cls, text: str) -> "Baseline":
        payload = tomllib.loads(text)
        entries: list[BaselineEntry] = []
        for raw in payload.get("suppress", []):
            missing = {"rule", "path", "symbol", "reason"} - set(raw)
            if missing:
                raise ValueError(
                    f"baseline entry {raw!r} is missing field(s): {sorted(missing)}"
                )
            entry = BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                symbol=str(raw["symbol"]),
                reason=str(raw["reason"]).strip(),
            )
            if not entry.reason:
                raise ValueError(
                    f"baseline entry {entry.rule} {entry.path} [{entry.symbol}] "
                    "must carry a non-empty justification in 'reason'"
                )
            entries.append(entry)
        return cls(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.is_file():
            return cls([])
        return cls.parse(path.read_text())


@dataclass
class CheckReport:
    """Outcome of one ``check`` run: new findings, suppressed, stale entries."""

    findings: list[Finding]
    suppressed: list[Finding]
    stale_entries: list[BaselineEntry]

    @property
    def clean(self) -> bool:
        return not self.findings and not self.stale_entries

    def to_dict(self) -> dict[str, Any]:
        return {
            "clean": self.clean,
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [finding.to_dict() for finding in self.suppressed],
            "stale_baseline_entries": [
                {"rule": e.rule, "path": e.path, "symbol": e.symbol, "reason": e.reason}
                for e in self.stale_entries
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        lines: list[str] = []
        for finding in self.findings:
            lines.append(finding.render())
        for entry in self.stale_entries:
            lines.append(
                f"{entry.path}: STALE-BASELINE {entry.rule} [{entry.symbol}] "
                "no longer fires; remove the entry from analysis-baseline.toml"
            )
        if not lines:
            lines.append(
                f"clean: no un-baselined findings ({len(self.suppressed)} suppressed)"
            )
        return "\n".join(lines)


def run_checkers(
    tree: ProjectTree,
    checkers: Sequence[Checker] | None = None,
    baseline: Baseline | None = None,
) -> CheckReport:
    """Run every checker over ``tree`` and split findings against ``baseline``.

    Deterministic output: findings sort by (path, line, rule); a baseline
    entry suppresses *every* finding sharing its ``(rule, path, symbol)``
    key (one justified symbol, not one line); entries that suppress nothing
    are reported stale.
    """
    if checkers is None:
        checkers = default_checkers()
    baseline = baseline or Baseline([])
    all_findings: list[Finding] = []
    for checker in checkers:
        all_findings.extend(checker.check(tree))
    all_findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    suppress_keys = {entry.key for entry in baseline.entries}
    active_rules = {checker.rule for checker in checkers}
    fresh: list[Finding] = []
    suppressed: list[Finding] = []
    used_keys: set[tuple[str, str, str]] = set()
    for finding in all_findings:
        if finding.key in suppress_keys:
            suppressed.append(finding)
            used_keys.add(finding.key)
        else:
            fresh.append(finding)
    scanned_paths = {module.path for module in tree.modules}
    stale = [
        entry
        for entry in baseline.entries
        # Entries are only judged stale when their rule ran AND their file
        # was scanned this invocation (a partial `check src/repro/api` run
        # must not condemn entries for files outside its scope).
        if entry.key not in used_keys
        and entry.rule in active_rules
        and entry.path in scanned_paths
    ]
    return CheckReport(findings=fresh, suppressed=suppressed, stale_entries=stale)
