"""``python -m repro.analysis`` -- the invariant checker CLI.

Subcommands:

``check``
    Run every rule (RA01-RA05) over the tree, apply the committed
    ``analysis-baseline.toml`` allowlist, and print findings.  Exit status:
    0 when clean, 1 when any un-baselined finding or stale baseline entry
    remains, 2 on usage errors.  ``--format json`` emits the machine form
    (what the CI job uploads as its failure artifact); ``--output`` writes
    it to a file as well.

``list-rules``
    Print the rule table (code, title, enforced contract).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.core import (
    BASELINE_FILENAME,
    Baseline,
    ProjectTree,
    default_checkers,
    run_checkers,
)

#: Default scan roots, relative to the repo root.
DEFAULT_PATHS = ("src",)


def _find_repo_root(start: Path) -> Path:
    """Walk up from ``start`` to the first directory holding the baseline
    file or a ``src/repro`` package; fall back to ``start`` itself."""
    for candidate in (start, *start.parents):
        if (candidate / BASELINE_FILENAME).is_file() or (
            candidate / "src" / "repro"
        ).is_dir():
            return candidate
    return start


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant checker suite (rules RA01-RA05)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="run every rule over the tree")
    check.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files/directories to scan, relative to --root (default: {DEFAULT_PATHS})",
    )
    check.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repo root (default: walk up from the cwd to the baseline file)",
    )
    check.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"allowlist file (default: <root>/{BASELINE_FILENAME})",
    )
    check.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    check.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the JSON report to this file (any --format)",
    )

    sub.add_parser("list-rules", help="print the rule table")
    return parser


def _cmd_check(args: argparse.Namespace) -> int:
    root = args.root if args.root is not None else _find_repo_root(Path.cwd())
    root = root.resolve()
    for entry in args.paths:
        if not (root / entry).exists():
            print(f"error: path {entry!r} does not exist under {root}", file=sys.stderr)
            return 2
    baseline_path = (
        args.baseline if args.baseline is not None else root / BASELINE_FILENAME
    )
    try:
        baseline = Baseline.load(baseline_path)
    except (ValueError, OSError) as error:
        print(f"error: cannot load baseline {baseline_path}: {error}", file=sys.stderr)
        return 2
    tree = ProjectTree.load(root, tuple(args.paths))
    report = run_checkers(tree, baseline=baseline)
    if args.output is not None:
        args.output.write_text(report.to_json() + "\n")
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.clean else 1


def _cmd_list_rules() -> int:
    for checker in default_checkers():
        print(f"{checker.rule}  {checker.title}")
        print(f"       {checker.description}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "check":
        return _cmd_check(args)
    return _cmd_list_rules()
