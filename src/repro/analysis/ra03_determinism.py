"""RA03 -- byte-determinism of content-hashed / fingerprinted paths.

PRs 2-4 and 6 made scenario sampling, campaign spec hashing, fault plans,
decision fingerprints and the warm-start cut pool *byte-deterministic*: the
same seed replays the same bytes, which is what the golden runs, the
differential oracle and the crash-consistency fingerprints all pin.  A
single wall-clock read or unseeded RNG draw on one of those paths silently
breaks every one of those guarantees.

Mechanically, inside the deterministic subtree (:data:`DETERMINISTIC_PREFIXES`):

* ``time.time`` / ``time.time_ns`` / ``datetime.now`` / ``datetime.utcnow``
  / ``date.today`` are always findings -- wall clocks never feed hashed
  state;
* ``random.<fn>()`` module-level calls (the unseeded global stdlib RNG) and
  unseeded ``np.random`` module calls (``np.random.rand``,
  ``np.random.default_rng()`` *without* a seed argument) are findings --
  every draw must come from an explicitly seeded generator
  (:mod:`repro.utils.rng`);
* ``time.perf_counter`` / ``time.monotonic`` are *timing measurements*:
  legal only at the sites declared in :data:`TIMING_ALLOWLIST` (solver
  runtime stats).  A new timing site is a reviewed contract change: add it
  to the allowlist here, with the reason, or the check fails;
* iterating directly over a set display / ``set(...)`` / ``frozenset(...)``
  expression (``for x in {...}``, a comprehension over ``set(...)``) is a
  finding unless wrapped in ``sorted(...)`` -- unordered iteration feeding
  hashed or fingerprinted output is exactly the PR 8 silent-clamp class of
  bug.  (Iteration over set-typed *variables* is out of AST reach; the
  rule catches the syntactically obvious sites.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Checker, Finding, ProjectTree, ScopedVisitor, SourceModule

#: Subtree whose modules must stay byte-deterministic (everything the
#: content hashes, fingerprints and golden runs cover).  ``repro/api`` and
#: the CLI/reporting layers may read clocks freely.
DETERMINISTIC_PREFIXES = (
    "repro/core/",
    "repro/scenarios/",
    "repro/faults/",
    "repro/traffic/",
    "repro/topology/",
    "repro/forecasting/",
    "repro/dataplane/",
    "repro/simulation/",
    "repro/controlplane/",
    "repro/experiments/campaign.py",
    "repro/workloads/",
)

#: Wall-clock reads that are never legal on a deterministic path.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "date.today",
        "datetime.date.today",
    }
)

#: Monotonic timers: timing measurements, legal only at allowlisted sites.
TIMING_CALLS = frozenset({"time.perf_counter", "time.monotonic", "perf_counter", "monotonic"})

#: Declared timing-measurement sites: ``(path suffix, symbol)`` pairs where
#: a monotonic timer is legal because it feeds *reported runtime stats*,
#: never hashed or fingerprinted content.  Each entry names the stat it
#: feeds; removing the timer invalidates the entry (the golden-tree test
#: would then flag it as unnecessary).
TIMING_ALLOWLIST = frozenset(
    {
        # SolveStats.runtime_s of the Benders master loop, the wall-clock
        # time-limit guard, and the warm-start fast paths: all feed the
        # reported runtime/time_truncated stats, never the decision or any
        # hashed content.
        ("repro/core/benders.py", "BendersSolver.solve"),
        ("repro/core/benders.py", "BendersSolver._warm_fast_path"),
        ("repro/core/benders.py", "BendersSolver._replay_identical_instance"),
        # SolveStats.runtime_s of the exact MILP reference solver.
        ("repro/core/milp_solver.py", "DirectMILPSolver.solve"),
        # SolveStats.runtime_s of the KAC heuristic solver.
        ("repro/core/kac.py", "KACSolver.solve"),
        # Partitioned-admission wall time reported in the merged SolveStats.
        ("repro/controlplane/orchestrator.py", "E2EOrchestrator._solve_maybe_partitioned"),
    }
)

#: The stdlib ``random`` module's global-RNG functions (unseeded).
STDLIB_RANDOM_MODULES = frozenset({"random"})

#: ``numpy.random`` module-call prefixes that hit the legacy global RNG.
NUMPY_RANDOM_PREFIXES = ("np.random.", "numpy.random.")

#: ``numpy.random`` constructors that are fine *when given a seed*.
SEEDED_CONSTRUCTORS = frozenset(
    {
        "np.random.default_rng",
        "numpy.random.default_rng",
        "np.random.Generator",
        "numpy.random.Generator",
        "np.random.SeedSequence",
        "numpy.random.SeedSequence",
        "np.random.PCG64",
        "numpy.random.PCG64",
    }
)


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


class _DeterminismScanner(ScopedVisitor):
    def __init__(self, module: SourceModule, checker: "DeterminismChecker") -> None:
        super().__init__()
        self.module = module
        self.checker = checker
        self.findings: list[Finding] = []

    # -- calls ---------------------------------------------------------- #
    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name:
            self._check_call(node, name)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, name: str) -> None:
        module, checker = self.module, self.checker
        if name in WALL_CLOCK_CALLS:
            self.findings.append(
                checker.finding(
                    module,
                    node,
                    self.symbol,
                    f"wall-clock read `{name}()` on a deterministic path; "
                    "hashed/fingerprinted state must never see the clock",
                )
            )
            return
        if name in TIMING_CALLS:
            site = (module.path, self.symbol)
            allowed = any(
                module.matches(suffix) and symbol == self.symbol
                for suffix, symbol in TIMING_ALLOWLIST
            )
            if not allowed:
                self.findings.append(
                    checker.finding(
                        module,
                        node,
                        self.symbol,
                        f"monotonic timer `{name}()` at {site[0]}:{site[1]} is "
                        "not a declared timing-measurement site; add it to "
                        "ra03_determinism.TIMING_ALLOWLIST with a reason or "
                        "remove the read",
                    )
                )
            return
        root = name.split(".")[0]
        if root in STDLIB_RANDOM_MODULES and "." in name:
            self.findings.append(
                checker.finding(
                    module,
                    node,
                    self.symbol,
                    f"unseeded global-RNG call `{name}()`; draw from an "
                    "explicitly seeded generator (repro.utils.rng) instead",
                )
            )
            return
        if name.startswith(NUMPY_RANDOM_PREFIXES):
            if name in SEEDED_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    self.findings.append(
                        checker.finding(
                            module,
                            node,
                            self.symbol,
                            f"`{name}()` without a seed argument yields an "
                            "OS-entropy generator on a deterministic path; "
                            "pass an explicit seed",
                        )
                    )
            else:
                self.findings.append(
                    checker.finding(
                        module,
                        node,
                        self.symbol,
                        f"legacy numpy global-RNG call `{name}()`; use a "
                        "seeded numpy.random.Generator instead",
                    )
                )

    # -- unordered iteration ------------------------------------------- #
    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        # Reached from every comprehension form (ListComp, SetComp, DictComp,
        # GeneratorExp) by the default traversal.
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _check_iter(self, iter_node: ast.expr) -> None:
        if _is_set_expression(iter_node):
            self.findings.append(
                self.checker.finding(
                    self.module,
                    iter_node,
                    self.symbol,
                    "iteration over an unordered set expression on a "
                    "deterministic path; wrap it in sorted(...) so the "
                    "order cannot leak into hashed or fingerprinted output",
                )
            )


class DeterminismChecker(Checker):
    rule = "RA03"
    title = "byte-determinism of hashed/fingerprinted paths"
    description = (
        "No wall clocks, unseeded RNG or unordered set iteration inside the "
        "deterministic subtree (solver, scenarios, faults, campaign "
        "hashing); monotonic timers only at declared timing-measurement "
        "sites."
    )

    def check(self, tree: ProjectTree) -> Iterator[Finding]:
        for module in tree.modules:
            if not any(
                f"/{prefix}" in "/" + module.path for prefix in DETERMINISTIC_PREFIXES
            ):
                continue
            scanner = _DeterminismScanner(module, self)
            scanner.visit(module.tree)
            yield from scanner.findings
