"""RA04 -- versioned DTO wire-contract round trips.

The PR 5/8 wire contract (DESIGN.md, "Northbound API"): every DTO stamps its
``to_dict`` payload with ``schema_version`` and rebuilds exactly via
``from_dict`` -- ``from_dict(to_dict(x)) == x`` through a real JSON round
trip.  A field written by ``to_dict`` but silently ignored by ``from_dict``
is how wire drift starts: the round-trip tests only notice once a *value*
differs, while the checker notices the moment the key set diverges.

Mechanically, for every class whose ``to_dict`` stamps a schema version
(calls :func:`repro.api.wire.stamp` or writes a ``"schema_version"`` key):

* the class must define a ``from_dict`` classmethod;
* every string key written by ``to_dict`` (any dict literal in its body,
  nested payloads included) must be *read* by ``from_dict`` -- via
  ``payload["key"]``, ``payload.get("key", ...)``, ``require(payload,
  "key", ...)``, or as a string argument to a helper function defined
  inside ``from_dict`` (the ``names(...)`` pattern);
* every ``BrokerError`` ``code`` declared in the errors module must appear
  in backticks in the DESIGN.md error-taxonomy table -- new codes ship with
  their documentation row.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Checker, Finding, ProjectTree, SourceModule

#: Key every stamped payload carries (see repro.api.wire.VERSION_KEY).
VERSION_KEY = "schema_version"

#: Module declaring the error taxonomy (for the DESIGN.md cross-check).
ERRORS_MODULE_SUFFIX = "repro/api/errors.py"

#: Document holding the human-facing taxonomy table.
DESIGN_DOCUMENT = "DESIGN.md"


def _method(cls: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for item in cls.body:
        if isinstance(item, ast.FunctionDef) and item.name == name:
            return item
    return None


def _serialising_methods(cls: ast.ClassDef, entry: ast.FunctionDef) -> list[ast.FunctionDef]:
    """``entry`` plus every same-class method it (transitively) calls via
    ``self.<name>()`` -- covers the ``to_dict`` -> ``self.payload()``
    delegation pattern without following cross-class calls."""
    by_name = {
        item.name: item for item in cls.body if isinstance(item, ast.FunctionDef)
    }
    seen: dict[str, ast.FunctionDef] = {entry.name: entry}
    frontier = [entry]
    while frontier:
        func = frontier.pop()
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
                and node.func.attr in by_name
                and node.func.attr not in seen
            ):
                helper = by_name[node.func.attr]
                seen[helper.name] = helper
                frontier.append(helper)
    return list(seen.values())


def _stamps_version(func: ast.FunctionDef) -> bool:
    """True when ``to_dict`` stamps a schema version (stamp() or literal)."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            callee = node.func
            if isinstance(callee, ast.Name) and callee.id == "stamp":
                return True
            if isinstance(callee, ast.Attribute) and callee.attr == "stamp":
                return True
        if isinstance(node, ast.Constant) and node.value == VERSION_KEY:
            return True
    return False


def _written_keys(func: ast.FunctionDef) -> dict[str, int]:
    """String keys of every dict literal in ``to_dict`` -> first line seen."""
    keys: dict[str, int] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.setdefault(key.value, key.lineno)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "setdefault"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            keys.setdefault(node.args[0].value, node.lineno)
    return keys


def _read_keys(func: ast.FunctionDef) -> set[str]:
    """String keys ``from_dict`` consumes, directly or via local helpers."""
    keys: set[str] = set()
    helper_names = {
        node.name
        for node in ast.walk(func)
        if isinstance(node, ast.FunctionDef) and node is not func
    }
    for node in ast.walk(func):
        # payload["key"]
        if isinstance(node, ast.Subscript) and isinstance(node.slice, ast.Constant):
            if isinstance(node.slice.value, str):
                keys.add(node.slice.value)
        elif isinstance(node, ast.Call):
            callee = node.func
            # payload.get("key"[, default]) / mapping.get(...)
            if isinstance(callee, ast.Attribute) and callee.attr == "get":
                if node.args and isinstance(node.args[0], ast.Constant):
                    if isinstance(node.args[0].value, str):
                        keys.add(node.args[0].value)
            elif isinstance(callee, ast.Name):
                # require(payload, "key", dto_name) and sibling helpers, plus
                # calls to helpers defined inside from_dict (names("accepted")).
                if callee.id == "require" and len(node.args) >= 2:
                    key_arg = node.args[1]
                    if isinstance(key_arg, ast.Constant) and isinstance(
                        key_arg.value, str
                    ):
                        keys.add(key_arg.value)
                elif callee.id in helper_names:
                    for arg in node.args:
                        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                            keys.add(arg.value)
                elif callee.id == "check_version":
                    keys.add(VERSION_KEY)
    return keys


def _declared_error_codes(module: SourceModule) -> list[tuple[ast.ClassDef, str]]:
    codes: list[tuple[ast.ClassDef, str]] = []
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        for item in node.body:
            if isinstance(item, ast.Assign):
                for target in item.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "code"
                        and isinstance(item.value, ast.Constant)
                        and isinstance(item.value.value, str)
                    ):
                        codes.append((node, item.value.value))
    return codes


class WireContractChecker(Checker):
    rule = "RA04"
    title = "versioned DTO wire round-trips"
    description = (
        "Every schema_version-stamped class needs a from_dict that reads "
        "(or explicitly defaults) every key its to_dict writes; every "
        "declared error code must appear in the DESIGN.md taxonomy table."
    )

    def check(self, tree: ProjectTree) -> Iterator[Finding]:
        for module in tree.modules:
            yield from self._check_module(module)
        errors_module = tree.find(ERRORS_MODULE_SUFFIX)
        design = tree.document(DESIGN_DOCUMENT)
        if errors_module is not None and design is not None:
            yield from self._check_design_table(errors_module, design)

    def _check_module(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(self, module: SourceModule, cls: ast.ClassDef) -> Iterator[Finding]:
        to_dict = _method(cls, "to_dict")
        if to_dict is None:
            return
        serialisers = _serialising_methods(cls, to_dict)
        if not any(_stamps_version(func) for func in serialisers):
            return
        from_dict = _method(cls, "from_dict")
        if from_dict is None:
            yield self.finding(
                module,
                cls,
                cls.name,
                f"{cls.name} stamps a {VERSION_KEY} in to_dict but defines no "
                "from_dict classmethod; versioned wire payloads must round-trip",
            )
            return
        written: dict[str, int] = {}
        for func in serialisers:
            for key, lineno in _written_keys(func).items():
                written.setdefault(key, lineno)
        read = _read_keys(from_dict)
        # stamp() adds the version key without a literal in to_dict's body.
        written.setdefault(VERSION_KEY, to_dict.lineno)
        for key, lineno in sorted(written.items(), key=lambda kv: kv[1]):
            if key not in read:
                yield Finding(
                    rule=self.rule,
                    path=module.path,
                    line=lineno,
                    symbol=f"{cls.name}.from_dict",
                    message=(
                        f"to_dict writes key {key!r} but from_dict never reads "
                        "or explicitly defaults it; the wire contract drifts "
                        "silently"
                    ),
                )

    def _check_design_table(
        self, errors_module: SourceModule, design: str
    ) -> Iterator[Finding]:
        for cls, code in _declared_error_codes(errors_module):
            if f"`{code}`" not in design:
                yield self.finding(
                    errors_module,
                    cls,
                    cls.name,
                    f"error code {code!r} is missing from the DESIGN.md "
                    "error-taxonomy table; new codes ship with their "
                    "documentation row",
                )
