"""AST-based invariant checker suite (rules RA01-RA05).

Mechanically enforces the repo's load-bearing conventions -- broker lock
discipline, the stable error taxonomy, byte-determinism of hashed paths,
versioned DTO wire round-trips and executor submission safety -- over the
parsed source tree.  See DESIGN.md, "Static analysis & enforced invariants".

CLI: ``python -m repro.analysis check`` (non-zero exit on un-baselined
findings) and ``python -m repro.analysis list-rules``.
"""

from repro.analysis.core import (
    BASELINE_FILENAME,
    Baseline,
    BaselineEntry,
    Checker,
    CheckReport,
    Finding,
    ProjectTree,
    SourceModule,
    default_checkers,
    run_checkers,
)

__all__ = [
    "BASELINE_FILENAME",
    "Baseline",
    "BaselineEntry",
    "Checker",
    "CheckReport",
    "Finding",
    "ProjectTree",
    "SourceModule",
    "default_checkers",
    "run_checkers",
]
