"""The end-to-end network topology: RAN + transport + compute domains."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import networkx as nx

from repro.topology.elements import (
    BaseStation,
    ComputeUnit,
    DomainCapacities,
    TransportLink,
    TransportSwitch,
)


@dataclass
class NetworkTopology:
    """Container for the full data plane of one mobile operator.

    The topology holds the three resource domains of the paper:

    * base stations (radio domain, capacity ``C_b``),
    * transport links between base stations, switches and compute units
      (transport domain, capacity ``C_e``),
    * compute units (compute domain, capacity ``C_c``).

    It exposes an undirected :class:`networkx.Graph` view used for path
    enumeration, and the per-domain capacity snapshot consumed by the AC-RR
    problem builder.
    """

    name: str = "topology"
    _base_stations: dict[str, BaseStation] = field(default_factory=dict)
    _compute_units: dict[str, ComputeUnit] = field(default_factory=dict)
    _switches: dict[str, TransportSwitch] = field(default_factory=dict)
    _links: dict[tuple[str, str], TransportLink] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_base_station(self, bs: BaseStation) -> None:
        """Register a base station; names must be unique across all nodes."""
        self._ensure_new_node(bs.name)
        self._base_stations[bs.name] = bs

    def add_compute_unit(self, cu: ComputeUnit) -> None:
        """Register a compute unit (edge or core cloud)."""
        self._ensure_new_node(cu.name)
        self._compute_units[cu.name] = cu

    def add_switch(self, switch: TransportSwitch) -> None:
        """Register a transport switch/router."""
        self._ensure_new_node(switch.name)
        self._switches[switch.name] = switch

    def add_link(self, link: TransportLink) -> None:
        """Register an undirected transport link between two known nodes."""
        for endpoint in (link.endpoint_a, link.endpoint_b):
            if not self.has_node(endpoint):
                raise KeyError(
                    f"cannot add link {link.key}: unknown node {endpoint!r}"
                )
        if link.key in self._links:
            raise ValueError(f"duplicate link between {link.key}")
        self._links[link.key] = link

    def replace_link(self, link: TransportLink) -> None:
        """Swap an existing link for a new one between the same endpoints.

        Used by degraded-capacity ("link failure") scenario variants, which
        rescale the capacity of a sampled subset of links.  The link must
        already exist; adding new edges goes through :meth:`add_link` so the
        path-diversity structure of a generated topology cannot change
        silently.
        """
        if link.key not in self._links:
            raise KeyError(f"cannot replace unknown link {link.key}")
        self._links[link.key] = link

    def _ensure_new_node(self, name: str) -> None:
        if self.has_node(name):
            raise ValueError(f"duplicate node name {name!r}")

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def has_node(self, name: str) -> bool:
        return (
            name in self._base_stations
            or name in self._compute_units
            or name in self._switches
        )

    @property
    def base_stations(self) -> list[BaseStation]:
        return list(self._base_stations.values())

    @property
    def compute_units(self) -> list[ComputeUnit]:
        return list(self._compute_units.values())

    @property
    def switches(self) -> list[TransportSwitch]:
        return list(self._switches.values())

    @property
    def links(self) -> list[TransportLink]:
        return list(self._links.values())

    def base_station(self, name: str) -> BaseStation:
        return self._base_stations[name]

    def compute_unit(self, name: str) -> ComputeUnit:
        return self._compute_units[name]

    def link(self, endpoint_a: str, endpoint_b: str) -> TransportLink:
        key = tuple(sorted((endpoint_a, endpoint_b)))
        return self._links[key]  # type: ignore[index]

    def links_between(self, nodes: Iterable[str]) -> Iterator[TransportLink]:
        """Yield the links along a node sequence (consecutive pairs)."""
        sequence = list(nodes)
        for a, b in zip(sequence, sequence[1:]):
            yield self.link(a, b)

    @property
    def base_station_names(self) -> list[str]:
        return list(self._base_stations)

    @property
    def compute_unit_names(self) -> list[str]:
        return list(self._compute_units)

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    def graph(self) -> nx.Graph:
        """Return an undirected graph view (nodes keyed by name)."""
        g = nx.Graph()
        for name in self._base_stations:
            g.add_node(name, kind="bs")
        for name in self._switches:
            g.add_node(name, kind="switch")
        for name in self._compute_units:
            g.add_node(name, kind="cu")
        for link in self._links.values():
            g.add_edge(
                link.endpoint_a,
                link.endpoint_b,
                capacity_mbps=link.capacity_mbps,
                length_km=link.length_km,
                technology=link.technology,
            )
        return g

    def capacities(self) -> DomainCapacities:
        """Snapshot of per-domain capacities consumed by the AC-RR problem."""
        return DomainCapacities(
            radio_mhz={name: bs.capacity_mhz for name, bs in self._base_stations.items()},
            transport_mbps={key: link.capacity_mbps for key, link in self._links.items()},
            compute_cpus={name: cu.capacity_cpus for name, cu in self._compute_units.items()},
        )

    def validate(self) -> None:
        """Check structural invariants required by the orchestration problem.

        Every base station must be able to reach at least one compute unit,
        otherwise no slice could ever be admitted (constraint (6) requires a
        path from *every* BS).
        """
        if not self._base_stations:
            raise ValueError("topology has no base stations")
        if not self._compute_units:
            raise ValueError("topology has no compute units")
        g = self.graph()
        cu_names = set(self._compute_units)
        for bs_name in self._base_stations:
            reachable = nx.node_connected_component(g, bs_name) if bs_name in g else set()
            if not reachable & cu_names:
                raise ValueError(
                    f"base station {bs_name!r} cannot reach any compute unit"
                )

    # ------------------------------------------------------------------ #
    # Summary statistics (used by Fig. 4 reproduction and docs)
    # ------------------------------------------------------------------ #
    def summary(self) -> dict[str, float]:
        """Aggregate statistics mirroring the description in Section 4.3.1."""
        import numpy as np

        link_caps = [link.capacity_mbps for link in self._links.values()]
        link_lens = [link.length_km for link in self._links.values()]
        return {
            "num_base_stations": float(len(self._base_stations)),
            "num_compute_units": float(len(self._compute_units)),
            "num_switches": float(len(self._switches)),
            "num_links": float(len(self._links)),
            "total_radio_mhz": float(sum(b.capacity_mhz for b in self._base_stations.values())),
            "total_compute_cpus": float(sum(c.capacity_cpus for c in self._compute_units.values())),
            "mean_link_capacity_mbps": float(np.mean(link_caps)) if link_caps else 0.0,
            "max_link_capacity_mbps": float(np.max(link_caps)) if link_caps else 0.0,
            "min_link_capacity_mbps": float(np.min(link_caps)) if link_caps else 0.0,
            "mean_link_length_km": float(np.mean(link_lens)) if link_lens else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"NetworkTopology(name={self.name!r}, base_stations={len(self._base_stations)}, "
            f"switches={len(self._switches)}, compute_units={len(self._compute_units)}, "
            f"links={len(self._links)})"
        )
