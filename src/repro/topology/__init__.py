"""Data-plane substrate: base stations, transport network and compute units.

The paper's data plane (Fig. 1) consists of a radio access network with ``B``
base stations, a transport network modelled as an undirected graph of links,
and ``C`` compute units (an edge cloud and a core cloud).  This package models
all three domains, computes candidate paths between base stations and compute
units (the ``P_{b,c}`` sets of Section 2.1.2), and generates synthetic
versions of the three operator networks used in the evaluation (Fig. 4).
"""

from repro.topology.elements import (
    BaseStation,
    ComputeUnit,
    TransportLink,
    TransportSwitch,
    LinkTechnology,
    ComputeUnitKind,
)
from repro.topology.network import NetworkTopology
from repro.topology.paths import Path, PathSet, compute_path_sets
from repro.topology.delay import link_delay_us, path_delay_us
from repro.topology.generators import OperatorProfile, generate_operator_topology
from repro.topology.operators import (
    romanian_topology,
    swiss_topology,
    italian_topology,
    testbed_topology,
    OPERATOR_FACTORIES,
)

__all__ = [
    "BaseStation",
    "ComputeUnit",
    "TransportLink",
    "TransportSwitch",
    "LinkTechnology",
    "ComputeUnitKind",
    "NetworkTopology",
    "Path",
    "PathSet",
    "compute_path_sets",
    "link_delay_us",
    "path_delay_us",
    "OperatorProfile",
    "generate_operator_topology",
    "romanian_topology",
    "swiss_topology",
    "italian_topology",
    "testbed_topology",
    "OPERATOR_FACTORIES",
]
