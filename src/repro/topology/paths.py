"""Candidate path enumeration between base stations and compute units.

Section 2.1.2 of the paper pre-computes, for every base station ``b`` and
compute unit ``c``, a set ``P_{b,c}`` of candidate paths using k-shortest-path
methods based on Dijkstra's algorithm.  Each path is characterised by a delay
``D_p`` (store-and-forward model of :mod:`repro.topology.delay`) and, in this
implementation, also by a bottleneck capacity used by Fig. 4(d).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Mapping

import networkx as nx

from repro.topology.delay import link_delay_us
from repro.topology.elements import TransportLink
from repro.topology.network import NetworkTopology


@dataclass(frozen=True)
class Path:
    """A candidate path ``p`` between one base station and one compute unit."""

    base_station: str
    compute_unit: str
    nodes: tuple[str, ...]
    links: tuple[TransportLink, ...]
    delay_us: float
    capacity_mbps: float

    @property
    def delay_ms(self) -> float:
        return self.delay_us / 1000.0

    @property
    def hop_count(self) -> int:
        return len(self.links)

    def uses_link(self, key: tuple[str, str]) -> bool:
        """True if the (canonically keyed) link belongs to this path."""
        return any(link.key == tuple(sorted(key)) for link in self.links)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Path({self.base_station}->{self.compute_unit}, hops={self.hop_count}, "
            f"delay={self.delay_ms:.3f}ms, cap={self.capacity_mbps:.0f}Mb/s)"
        )


class PathSet:
    """All candidate paths of a topology, indexed by (base station, CU).

    This is the ``P_{b,c}`` family of the paper.  The AC-RR problem builder
    iterates over :meth:`items` to create one decision variable per
    (tenant, path) pair.
    """

    def __init__(self, paths: Mapping[tuple[str, str], list[Path]]):
        self._paths: dict[tuple[str, str], list[Path]] = {
            key: list(value) for key, value in paths.items()
        }

    def paths(self, base_station: str, compute_unit: str) -> list[Path]:
        """Candidate paths between one BS and one CU (may be empty)."""
        return list(self._paths.get((base_station, compute_unit), []))

    def items(self) -> list[tuple[tuple[str, str], list[Path]]]:
        return [(key, list(value)) for key, value in self._paths.items()]

    def all_paths(self) -> list[Path]:
        """Flat list of every candidate path in the topology."""
        return [path for paths in self._paths.values() for path in paths]

    def paths_from(self, base_station: str) -> list[Path]:
        """All candidate paths that originate at ``base_station``."""
        return [p for (bs, _cu), paths in self._paths.items() if bs == base_station for p in paths]

    def paths_to(self, compute_unit: str) -> list[Path]:
        """All candidate paths that terminate at ``compute_unit``."""
        return [p for (_bs, cu), paths in self._paths.items() if cu == compute_unit for p in paths]

    def base_stations(self) -> list[str]:
        return sorted({bs for bs, _cu in self._paths})

    def compute_units(self) -> list[str]:
        return sorted({cu for _bs, cu in self._paths})

    def mean_paths_per_pair(self) -> float:
        """Mean path redundancy (the paper reports 6.6 for N1 and 1.6 for N3)."""
        if not self._paths:
            return 0.0
        counts = [len(paths) for paths in self._paths.values()]
        return sum(counts) / len(counts)

    def __len__(self) -> int:
        return sum(len(paths) for paths in self._paths.values())


def _build_path(
    topology: NetworkTopology, bs_name: str, cu_name: str, node_sequence: list[str]
) -> Path:
    links = tuple(topology.links_between(node_sequence))
    cu = topology.compute_unit(cu_name)
    delay = sum(link_delay_us(link) for link in links) + cu.access_latency_ms * 1000.0
    capacity = min(link.capacity_mbps for link in links)
    return Path(
        base_station=bs_name,
        compute_unit=cu_name,
        nodes=tuple(node_sequence),
        links=links,
        delay_us=delay,
        capacity_mbps=capacity,
    )


def k_shortest_paths(
    topology: NetworkTopology,
    base_station: str,
    compute_unit: str,
    k: int,
    weight: str = "delay",
) -> list[Path]:
    """Compute up to ``k`` loop-free shortest paths between a BS and a CU.

    Paths are ranked by total store-and-forward delay (``weight="delay"``) or
    by hop count (``weight="hops"``).  Returns an empty list when the two
    nodes are disconnected.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    g = topology.graph()
    if base_station not in g or compute_unit not in g:
        raise KeyError("both endpoints must exist in the topology")
    # Transport paths terminate at radio sites but never transit through
    # them: remove every other base station from the search graph so that a
    # dual-homed cell cannot act as a relay between aggregation switches.
    other_base_stations = [
        name
        for name, data in g.nodes(data=True)
        if data.get("kind") == "bs" and name != base_station
    ]
    g.remove_nodes_from(other_base_stations)

    if weight == "delay":
        def edge_weight(u: str, v: str, _data: dict) -> float:
            return link_delay_us(topology.link(u, v))
    elif weight == "hops":
        def edge_weight(u: str, v: str, _data: dict) -> float:
            return 1.0
    else:
        raise ValueError(f"unknown weight {weight!r} (expected 'delay' or 'hops')")

    try:
        generator = nx.shortest_simple_paths(
            g, base_station, compute_unit, weight=edge_weight
        )
        node_sequences = list(islice(generator, k))
    except nx.NetworkXNoPath:
        return []
    return [
        _build_path(topology, base_station, compute_unit, sequence)
        for sequence in node_sequences
    ]


def compute_path_sets(
    topology: NetworkTopology, k: int = 4, weight: str = "delay"
) -> PathSet:
    """Enumerate candidate paths for every (base station, compute unit) pair.

    This is the offline pre-computation step described in Section 2.1.2; the
    result is reused across decision epochs.
    """
    paths: dict[tuple[str, str], list[Path]] = {}
    for bs in topology.base_station_names:
        for cu in topology.compute_unit_names:
            candidates = k_shortest_paths(topology, bs, cu, k=k, weight=weight)
            if candidates:
                paths[(bs, cu)] = candidates
    return PathSet(paths)
