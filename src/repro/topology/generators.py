"""Synthetic operator-topology generator.

The paper evaluates its orchestration algorithms on confidential urban
networks from three European operators (Romania, Switzerland, Italy).  We
cannot redistribute those graphs, so this module generates synthetic
topologies calibrated to the aggregate statistics the paper reports in
Section 4.3.1 and Fig. 4:

* number of base stations (198 / 197 / 200 clusters),
* path redundancy (mean 6.6 candidate paths per BS-CU pair in the Romanian
  network vs. 1.6 in the Italian one),
* link technology mixes (fiber+copper+wireless / mostly wireless / mostly
  fiber) and the resulting 2-200 Gb/s capacity spread,
* base-station-to-edge-cloud distances from 0.1 to 20 km,
* an edge compute unit with ``20 x B`` CPU cores and a core compute unit
  five times larger, reachable over an uncongested 20 ms backhaul.

The generated networks therefore exercise exactly the heterogeneity that the
paper's evaluation attributes its results to (radio-constrained vs.
transport-constrained vs. compute-constrained regimes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.topology.elements import (
    BaseStation,
    ComputeUnit,
    ComputeUnitKind,
    LinkTechnology,
    TransportLink,
    TransportSwitch,
)
from repro.topology.network import NetworkTopology
from repro.utils.rng import make_rng

# Capacity used for the "unlimited bandwidth" edge-to-core backhaul of the
# paper; large enough never to bind for any workload in the evaluation.
UNLIMITED_CAPACITY_MBPS = 1.0e7


@dataclass(frozen=True)
class OperatorProfile:
    """Statistical description of one operator's urban network.

    The three concrete profiles used in the paper live in
    :mod:`repro.topology.operators`; this dataclass keeps the generator
    reusable for sensitivity studies (e.g. sweeping path redundancy).
    """

    name: str
    num_base_stations: int
    num_aggregation_switches: int
    num_hubs: int
    # Candidate numbers of aggregation switches each BS attaches to, and the
    # probability of each choice.  Higher degrees yield more path diversity.
    bs_degree_choices: tuple[int, ...]
    bs_degree_weights: tuple[float, ...]
    # Radio capacity of each BS, drawn uniformly from this range (MHz).
    bs_capacity_mhz_range: tuple[float, float]
    # Radius of the served urban area (km); BS-CU distances span (0, radius].
    city_radius_km: float
    # Access-link technology mix: (technology, probability) pairs.
    access_technology_mix: tuple[tuple[LinkTechnology, float], ...]
    # Capacity range (Mb/s) of access links, per technology.
    access_capacity_mbps: dict[LinkTechnology, tuple[float, float]]
    # Aggregation-ring and hub uplink characteristics.
    aggregation_capacity_mbps: tuple[float, float]
    aggregation_technology: LinkTechnology
    hub_capacity_mbps: tuple[float, float]
    hub_technology: LinkTechnology
    # Whether aggregation switches are chained into a ring.  A ring adds
    # alternative (protection) paths and therefore path redundancy; tree-like
    # metro networks (the Italian operator, mean 1.6 candidate paths) do not
    # have it.
    aggregation_ring: bool = True
    # Compute dimensioning (Section 4.3.1): edge CU has 20 CPUs per BS, the
    # core CU is ``core_capacity_factor`` times larger and 20 ms away.
    edge_cpus_per_bs: float = 20.0
    core_capacity_factor: float = 5.0
    core_latency_ms: float = 20.0
    # Spectral efficiency (Mb/s per MHz); 7.5 reproduces eta_b = 20/150.
    spectral_efficiency_mbps_per_mhz: float = 7.5
    # Transport protocol overhead eta_e (the paper neglects it, i.e. 1.0).
    transport_overhead: float = 1.0

    def __post_init__(self) -> None:
        if self.num_base_stations <= 0:
            raise ValueError("num_base_stations must be positive")
        if self.num_aggregation_switches <= 0:
            raise ValueError("num_aggregation_switches must be positive")
        if self.num_hubs <= 0:
            raise ValueError("num_hubs must be positive")
        if len(self.bs_degree_choices) != len(self.bs_degree_weights):
            raise ValueError("degree choices and weights must have equal length")
        if not math.isclose(sum(self.bs_degree_weights), 1.0, abs_tol=1e-6):
            raise ValueError("bs_degree_weights must sum to 1")
        total_prob = sum(prob for _tech, prob in self.access_technology_mix)
        if not math.isclose(total_prob, 1.0, abs_tol=1e-6):
            raise ValueError("access_technology_mix probabilities must sum to 1")

    def scaled(self, num_base_stations: int, name_suffix: str = "-reduced") -> "OperatorProfile":
        """Return a profile with fewer base stations but the same structure.

        The aggregation layer is shrunk proportionally (at least two switches
        are kept so some path diversity remains) and the aggregation/hub link
        capacities are rescaled so that the ratio between the traffic funnelled
        through each aggregation switch and its uplink capacity is preserved.
        This keeps the radio-constrained / transport-constrained /
        compute-constrained regimes of the full-size networks intact, which is
        what drives the paper's qualitative results.  Used by the benchmark
        harness, where running the exact 198-BS networks through a MILP per
        epoch would take hours.
        """
        if num_base_stations <= 0:
            raise ValueError("num_base_stations must be positive")
        ratio = num_base_stations / self.num_base_stations
        aggregation = max(2, int(round(self.num_aggregation_switches * ratio)))
        # Preserve (BSs per aggregation switch) / (uplink capacity): the
        # shrunken network funnels fewer BSs through each switch, so the
        # uplink capacity shrinks by the same factor.
        bs_per_agg_original = self.num_base_stations / self.num_aggregation_switches
        bs_per_agg_scaled = num_base_stations / aggregation
        capacity_scale = bs_per_agg_scaled / bs_per_agg_original
        return OperatorProfile(
            name=self.name + name_suffix,
            num_base_stations=num_base_stations,
            num_aggregation_switches=aggregation,
            num_hubs=self.num_hubs,
            bs_degree_choices=self.bs_degree_choices,
            bs_degree_weights=self.bs_degree_weights,
            bs_capacity_mhz_range=self.bs_capacity_mhz_range,
            city_radius_km=self.city_radius_km,
            access_technology_mix=self.access_technology_mix,
            access_capacity_mbps=dict(self.access_capacity_mbps),
            aggregation_capacity_mbps=tuple(
                cap * capacity_scale for cap in self.aggregation_capacity_mbps
            ),
            aggregation_technology=self.aggregation_technology,
            hub_capacity_mbps=tuple(
                cap * capacity_scale for cap in self.hub_capacity_mbps
            ),
            hub_technology=self.hub_technology,
            aggregation_ring=self.aggregation_ring,
            edge_cpus_per_bs=self.edge_cpus_per_bs,
            core_capacity_factor=self.core_capacity_factor,
            core_latency_ms=self.core_latency_ms,
            spectral_efficiency_mbps_per_mhz=self.spectral_efficiency_mbps_per_mhz,
            transport_overhead=self.transport_overhead,
        )


def _uniform(rng: np.random.Generator, bounds: tuple[float, float]) -> float:
    low, high = bounds
    if high < low:
        raise ValueError(f"invalid range {bounds}")
    if math.isclose(low, high):
        return float(low)
    return float(rng.uniform(low, high))


def _ring_positions(count: int, radius_km: float) -> list[tuple[float, float]]:
    return [
        (
            radius_km * math.cos(2.0 * math.pi * i / count),
            radius_km * math.sin(2.0 * math.pi * i / count),
        )
        for i in range(count)
    ]


def _distance(a: tuple[float, float], b: tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


def degrade_link_capacities(
    topology: NetworkTopology,
    link_keys: list[tuple[str, str]],
    capacity_factor: float,
) -> NetworkTopology:
    """Scale down the capacity of the given links in place and return the topology.

    Models the degraded-capacity ("link failure") episodes of the generated
    scenario families: a microwave hop in rain fade or a partial fibre cut
    leaves the graph intact but shrinks the usable bandwidth of the affected
    links by ``capacity_factor``.  The topology is re-validated so a scenario
    can never start from a network where some base station lost all
    connectivity to the compute units.
    """
    from dataclasses import replace as dataclass_replace

    if not 0.0 < capacity_factor <= 1.0:
        raise ValueError(
            f"capacity_factor must be in (0, 1], got {capacity_factor!r}"
        )
    for key in link_keys:
        link = topology.link(*key)
        topology.replace_link(
            dataclass_replace(link, capacity_mbps=link.capacity_mbps * capacity_factor)
        )
    topology.validate()
    return topology


def generate_operator_topology(
    profile: OperatorProfile, seed: int | None = None
) -> NetworkTopology:
    """Generate one synthetic operator network from a statistical profile.

    The layout mirrors a typical metro aggregation network:

    * one (or two) hub switches co-located with the edge compute unit,
    * a ring of aggregation switches around the hub, each dual-homed to the
      hub(s) and chained to its ring neighbours (this is where path diversity
      comes from),
    * base stations scattered over the urban area, each attached to its
      nearest aggregation switch(es),
    * an edge compute unit behind the hub and a core compute unit behind an
      uncongested 20 ms backhaul link.
    """
    rng = make_rng(seed)
    topology = NetworkTopology(name=profile.name)

    # --- Compute units -------------------------------------------------- #
    edge_capacity = profile.edge_cpus_per_bs * profile.num_base_stations
    edge_cu = ComputeUnit(
        name="edge-cu",
        capacity_cpus=edge_capacity,
        kind=ComputeUnitKind.EDGE,
        position_km=(0.0, 0.0),
    )
    core_cu = ComputeUnit(
        name="core-cu",
        capacity_cpus=edge_capacity * profile.core_capacity_factor,
        kind=ComputeUnitKind.CORE,
        position_km=(profile.city_radius_km * 3.0, 0.0),
        access_latency_ms=profile.core_latency_ms,
    )
    topology.add_compute_unit(edge_cu)
    topology.add_compute_unit(core_cu)

    # --- Hub switches ---------------------------------------------------- #
    hub_names: list[str] = []
    for i in range(profile.num_hubs):
        hub = TransportSwitch(name=f"hub-{i}", position_km=(0.05 * i, 0.05 * i))
        topology.add_switch(hub)
        hub_names.append(hub.name)
    for hub_name in hub_names:
        for cu in (edge_cu, core_cu):
            topology.add_link(
                TransportLink(
                    endpoint_a=hub_name,
                    endpoint_b=cu.name,
                    capacity_mbps=UNLIMITED_CAPACITY_MBPS,
                    length_km=0.1,
                    technology=LinkTechnology.FIBER,
                    overhead=profile.transport_overhead,
                )
            )
    if len(hub_names) > 1:
        for a, b in zip(hub_names, hub_names[1:]):
            topology.add_link(
                TransportLink(
                    endpoint_a=a,
                    endpoint_b=b,
                    capacity_mbps=UNLIMITED_CAPACITY_MBPS,
                    length_km=0.1,
                    technology=LinkTechnology.FIBER,
                    overhead=profile.transport_overhead,
                )
            )

    # --- Aggregation ring ------------------------------------------------ #
    agg_radius = profile.city_radius_km * 0.4
    agg_positions = _ring_positions(profile.num_aggregation_switches, agg_radius)
    agg_names: list[str] = []
    for i, position in enumerate(agg_positions):
        switch = TransportSwitch(name=f"agg-{i}", position_km=position)
        topology.add_switch(switch)
        agg_names.append(switch.name)
        hub_name = hub_names[i % len(hub_names)]
        topology.add_link(
            TransportLink(
                endpoint_a=switch.name,
                endpoint_b=hub_name,
                capacity_mbps=_uniform(rng, profile.hub_capacity_mbps),
                length_km=max(0.1, _distance(position, (0.0, 0.0))),
                technology=profile.hub_technology,
                overhead=profile.transport_overhead,
            )
        )
    # Ring links between neighbouring aggregation switches.
    if profile.aggregation_ring and len(agg_names) > 1:
        for i in range(len(agg_names)):
            a = agg_names[i]
            b = agg_names[(i + 1) % len(agg_names)]
            if len(agg_names) == 2 and i == 1:
                break  # avoid duplicating the single pair
            topology.add_link(
                TransportLink(
                    endpoint_a=a,
                    endpoint_b=b,
                    capacity_mbps=_uniform(rng, profile.aggregation_capacity_mbps),
                    length_km=max(0.1, _distance(agg_positions[i], agg_positions[(i + 1) % len(agg_positions)])),
                    technology=profile.aggregation_technology,
                    overhead=profile.transport_overhead,
                )
            )

    # --- Base stations ---------------------------------------------------- #
    technologies = [tech for tech, _prob in profile.access_technology_mix]
    tech_probs = [prob for _tech, prob in profile.access_technology_mix]
    degree_choices = list(profile.bs_degree_choices)
    degree_probs = list(profile.bs_degree_weights)

    for i in range(profile.num_base_stations):
        # Radial placement; sqrt keeps the density uniform over the disk, and
        # the 0.1 km floor reproduces the "some BSs within 0.1 km" statement.
        radius = profile.city_radius_km * math.sqrt(rng.uniform(0.0025, 1.0))
        angle = rng.uniform(0.0, 2.0 * math.pi)
        position = (radius * math.cos(angle), radius * math.sin(angle))
        bs = BaseStation(
            name=f"bs-{i}",
            capacity_mhz=_uniform(rng, profile.bs_capacity_mhz_range),
            position_km=position,
            spectral_efficiency_mbps_per_mhz=profile.spectral_efficiency_mbps_per_mhz,
        )
        topology.add_base_station(bs)

        degree = int(rng.choice(degree_choices, p=degree_probs))
        degree = min(degree, len(agg_names))
        nearest = sorted(
            range(len(agg_names)), key=lambda idx: _distance(position, agg_positions[idx])
        )[:degree]
        technology = LinkTechnology(rng.choice([t.value for t in technologies], p=tech_probs))
        for agg_index in nearest:
            topology.add_link(
                TransportLink(
                    endpoint_a=bs.name,
                    endpoint_b=agg_names[agg_index],
                    capacity_mbps=_uniform(rng, profile.access_capacity_mbps[technology]),
                    length_km=max(0.05, _distance(position, agg_positions[agg_index])),
                    technology=technology,
                    overhead=profile.transport_overhead,
                )
            )

    topology.validate()
    return topology
