"""Physical elements of the mobile system data plane.

Capacities follow the notation of Section 2.1.2 of the paper:

* ``C_b`` -- radio capacity of a base station, in MHz of spectrum (the paper
  uses 20 MHz channels equal to 100 physical resource blocks).
* ``C_e`` -- transport link capacity, in Mb/s.
* ``C_c`` -- compute-unit capacity, in CPU cores (shares of the aggregated
  CPU pool).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.utils.validation import ensure_non_negative, ensure_positive


class LinkTechnology(str, enum.Enum):
    """Transport link technology, which drives capacity and propagation delay.

    The three operator networks in the paper mix fiber, copper and wireless
    backhaul links (Section 4.3.1); the technology determines the per-km
    propagation delay used by the store-and-forward delay model.
    """

    FIBER = "fiber"
    COPPER = "copper"
    WIRELESS = "wireless"

    @property
    def propagation_us_per_km(self) -> float:
        """Per-kilometre propagation delay in microseconds (footnote 11)."""
        if self is LinkTechnology.WIRELESS:
            return 5.0
        return 4.0


class ComputeUnitKind(str, enum.Enum):
    """Whether a compute unit sits at the network edge or in the core cloud."""

    EDGE = "edge"
    CORE = "core"


@dataclass(frozen=True)
class BaseStation:
    """A (possibly sliced) base station of the radio access network.

    Attributes
    ----------
    name:
        Unique identifier within the topology.
    capacity_mhz:
        Radio capacity ``C_b`` in MHz of spectrum.
    position_km:
        Planar coordinates in kilometres, used to derive link lengths.
    spectral_efficiency_mbps_per_mhz:
        Achievable throughput per MHz under the assumed channel conditions.
        The paper assumes ideal 2x2 MIMO conditions giving 150 Mb/s over a
        20 MHz channel, i.e. 7.5 Mb/s per MHz (so that eta_b = 20/150 MHz per
        Mb/s).
    """

    name: str
    capacity_mhz: float
    position_km: tuple[float, float] = (0.0, 0.0)
    spectral_efficiency_mbps_per_mhz: float = 7.5

    def __post_init__(self) -> None:
        ensure_positive(self.capacity_mhz, "capacity_mhz")
        ensure_positive(
            self.spectral_efficiency_mbps_per_mhz, "spectral_efficiency_mbps_per_mhz"
        )

    @property
    def capacity_mbps(self) -> float:
        """Maximum aggregate throughput of the BS in Mb/s."""
        return self.capacity_mhz * self.spectral_efficiency_mbps_per_mhz

    @property
    def capacity_prbs(self) -> float:
        """Radio capacity expressed in LTE physical resource blocks (PRBs).

        A 20 MHz LTE channel has 100 PRBs, i.e. 5 PRBs per MHz.
        """
        return self.capacity_mhz * 5.0

    def mhz_for_bitrate(self, mbps: float) -> float:
        """Spectrum (MHz) needed to carry ``mbps`` of traffic (eta_{tau,b})."""
        ensure_non_negative(mbps, "mbps")
        return mbps / self.spectral_efficiency_mbps_per_mhz


@dataclass(frozen=True)
class ComputeUnit:
    """A compute unit (CU): an edge or core cloud with a pool of CPU cores."""

    name: str
    capacity_cpus: float
    kind: ComputeUnitKind = ComputeUnitKind.EDGE
    position_km: tuple[float, float] = (0.0, 0.0)
    # Extra one-way latency to reach the CU beyond the transport path itself
    # (the paper emulates the core CU behind a 20 ms backhaul link).
    access_latency_ms: float = 0.0

    def __post_init__(self) -> None:
        ensure_positive(self.capacity_cpus, "capacity_cpus")
        ensure_non_negative(self.access_latency_ms, "access_latency_ms")


@dataclass(frozen=True)
class TransportSwitch:
    """A transport-network switch/router (black dots in Fig. 4)."""

    name: str
    position_km: tuple[float, float] = (0.0, 0.0)


@dataclass(frozen=True)
class TransportLink:
    """An undirected transport link ``e`` between two data-plane nodes.

    Attributes
    ----------
    endpoint_a, endpoint_b:
        Names of the two nodes the link connects (base stations, switches or
        compute units).
    capacity_mbps:
        Link capacity ``C_e`` in Mb/s.
    length_km:
        Physical length, used by the propagation-delay model.
    technology:
        Fiber / copper / wireless; determines per-km propagation delay.
    overhead:
        Transport protocol overhead factor ``eta_e`` (VLAN/MPLS/GTP framing).
        A value of 1.05 means each service bit consumes 1.05 bits on the link.
    """

    endpoint_a: str
    endpoint_b: str
    capacity_mbps: float
    length_km: float = 1.0
    technology: LinkTechnology = LinkTechnology.FIBER
    overhead: float = 1.0

    def __post_init__(self) -> None:
        ensure_positive(self.capacity_mbps, "capacity_mbps")
        ensure_non_negative(self.length_km, "length_km")
        if self.overhead < 1.0:
            raise ValueError(f"overhead must be >= 1.0, got {self.overhead}")
        if self.endpoint_a == self.endpoint_b:
            raise ValueError("a link cannot connect a node to itself")

    @property
    def key(self) -> tuple[str, str]:
        """Canonical (sorted) endpoint pair identifying the undirected link."""
        return tuple(sorted((self.endpoint_a, self.endpoint_b)))  # type: ignore[return-value]

    def other_endpoint(self, node: str) -> str:
        """Return the endpoint opposite to ``node``."""
        if node == self.endpoint_a:
            return self.endpoint_b
        if node == self.endpoint_b:
            return self.endpoint_a
        raise KeyError(f"{node!r} is not an endpoint of link {self.key}")


@dataclass
class DomainCapacities:
    """Snapshot of the capacities of every resource in the system.

    Convenience container consumed by the AC-RR problem builder; it decouples
    the optimisation layer from the topology object so that tests can build
    tiny hand-crafted instances.
    """

    radio_mhz: dict[str, float] = field(default_factory=dict)
    transport_mbps: dict[tuple[str, str], float] = field(default_factory=dict)
    compute_cpus: dict[str, float] = field(default_factory=dict)

    def copy(self) -> "DomainCapacities":
        return DomainCapacities(
            radio_mhz=dict(self.radio_mhz),
            transport_mbps=dict(self.transport_mbps),
            compute_cpus=dict(self.compute_cpus),
        )
