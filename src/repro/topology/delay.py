"""Store-and-forward delay model for transport paths.

The paper (footnote 11, Section 4.3.1) computes per-path delays assuming
store-and-forward switching with:

* a transmission delay of ``12000 / C_e`` per link (a 12 000-bit frame, i.e.
  a 1500-byte packet, serialised at the link rate),
* a propagation delay of 4 us/km on cable (fiber/copper) and 5 us/km on
  wireless links,
* a fixed 5 us per hop for processing.

All delays are expressed in microseconds; link capacities in Mb/s (so a
12 000-bit frame on a 1 Gb/s = 1000 Mb/s link takes 12 us).
"""

from __future__ import annotations

from typing import Iterable

from repro.topology.elements import TransportLink

FRAME_BITS = 12_000.0
PER_HOP_PROCESSING_US = 5.0


def link_delay_us(link: TransportLink) -> float:
    """One-hop store-and-forward delay of a transport link, in microseconds."""
    transmission = FRAME_BITS / link.capacity_mbps  # Mb/s == bits/us
    propagation = link.length_km * link.technology.propagation_us_per_km
    return transmission + propagation + PER_HOP_PROCESSING_US


def path_delay_us(links: Iterable[TransportLink], extra_latency_ms: float = 0.0) -> float:
    """Total one-way delay of a path, in microseconds.

    ``extra_latency_ms`` accounts for latency beyond the transport network
    itself, e.g. the 20 ms emulated backhaul in front of the core compute
    unit in the paper's evaluation.
    """
    total = sum(link_delay_us(link) for link in links)
    return total + extra_latency_ms * 1000.0
