"""The three operator networks of the evaluation, plus the Section 5 testbed.

The profiles below are synthetic stand-ins for the confidential operator
topologies used in the paper (see DESIGN.md, substitution table).  They are
calibrated to the aggregate statistics of Section 4.3.1:

``Romanian`` (N1)
    198 base stations at 20 MHz, mixed fiber / copper / wireless backhaul
    with capacities spanning 2-200 Gb/s, and high path redundancy (each BS is
    multi-homed, giving ~6+ candidate paths towards the compute units).
    Radio is the binding resource for broadband slices.

``Swiss`` (N2)
    197 base stations at 20 MHz with a mostly wireless backhaul whose
    aggregation uplinks are an order of magnitude smaller, so the transport
    network binds before the radio does.

``Italian`` (N3)
    1497 radio units clustered into 200 macro base stations of 80-100 MHz,
    an almost entirely fiber backhaul, and very low path redundancy (most
    clusters are single-homed, ~1.6 candidate paths).  Radio and transport
    are abundant; the (unchanged) compute capacity becomes the bottleneck
    for machine-type slices.

All three share the compute dimensioning of the paper: an edge compute unit
with 20 CPU cores per base station and a core compute unit five times larger
behind an uncongested 20 ms backhaul.
"""

from __future__ import annotations

from typing import Callable

from repro.topology.elements import (
    BaseStation,
    ComputeUnit,
    ComputeUnitKind,
    LinkTechnology,
    TransportLink,
    TransportSwitch,
)
from repro.topology.generators import (
    OperatorProfile,
    UNLIMITED_CAPACITY_MBPS,
    generate_operator_topology,
)
from repro.topology.network import NetworkTopology

ROMANIAN_PROFILE = OperatorProfile(
    name="romanian",
    num_base_stations=198,
    num_aggregation_switches=12,
    num_hubs=2,
    bs_degree_choices=(2, 3),
    bs_degree_weights=(0.4, 0.6),
    bs_capacity_mhz_range=(20.0, 20.0),
    city_radius_km=10.0,
    access_technology_mix=(
        (LinkTechnology.FIBER, 0.45),
        (LinkTechnology.COPPER, 0.30),
        (LinkTechnology.WIRELESS, 0.25),
    ),
    access_capacity_mbps={
        LinkTechnology.FIBER: (10_000.0, 200_000.0),
        LinkTechnology.COPPER: (2_000.0, 10_000.0),
        LinkTechnology.WIRELESS: (2_000.0, 5_000.0),
    },
    aggregation_capacity_mbps=(20_000.0, 100_000.0),
    aggregation_technology=LinkTechnology.FIBER,
    hub_capacity_mbps=(50_000.0, 200_000.0),
    hub_technology=LinkTechnology.FIBER,
)

SWISS_PROFILE = OperatorProfile(
    name="swiss",
    num_base_stations=197,
    num_aggregation_switches=12,
    num_hubs=2,
    bs_degree_choices=(1, 2),
    bs_degree_weights=(0.35, 0.65),
    bs_capacity_mhz_range=(20.0, 20.0),
    city_radius_km=8.0,
    access_technology_mix=(
        (LinkTechnology.WIRELESS, 0.85),
        (LinkTechnology.FIBER, 0.15),
    ),
    access_capacity_mbps={
        LinkTechnology.WIRELESS: (300.0, 1_000.0),
        LinkTechnology.FIBER: (2_000.0, 10_000.0),
    },
    # Wireless aggregation uplinks: roughly 1-2.5 Gb/s shared by ~16 BSs, so
    # a handful of 50 Mb/s broadband SLAs saturate the transport domain.
    aggregation_capacity_mbps=(800.0, 1_500.0),
    aggregation_technology=LinkTechnology.WIRELESS,
    hub_capacity_mbps=(1_000.0, 2_500.0),
    hub_technology=LinkTechnology.WIRELESS,
)

ITALIAN_PROFILE = OperatorProfile(
    name="italian",
    num_base_stations=200,
    num_aggregation_switches=20,
    num_hubs=1,
    bs_degree_choices=(1, 2),
    bs_degree_weights=(0.8, 0.2),
    bs_capacity_mhz_range=(80.0, 100.0),
    city_radius_km=20.0,
    access_technology_mix=((LinkTechnology.FIBER, 1.0),),
    access_capacity_mbps={LinkTechnology.FIBER: (10_000.0, 200_000.0)},
    aggregation_capacity_mbps=(50_000.0, 200_000.0),
    aggregation_technology=LinkTechnology.FIBER,
    hub_capacity_mbps=(100_000.0, 200_000.0),
    hub_technology=LinkTechnology.FIBER,
    # Mostly single-homed clusters on a tree-shaped fiber metro: very low path
    # redundancy (the paper reports a mean of 1.6 candidate paths).
    aggregation_ring=False,
)


def romanian_topology(
    num_base_stations: int | None = None, seed: int | None = None
) -> NetworkTopology:
    """Synthetic Romanian network (N1).  ``num_base_stations`` scales it down."""
    return _build(ROMANIAN_PROFILE, num_base_stations, seed)


def swiss_topology(
    num_base_stations: int | None = None, seed: int | None = None
) -> NetworkTopology:
    """Synthetic Swiss network (N2).  ``num_base_stations`` scales it down."""
    return _build(SWISS_PROFILE, num_base_stations, seed)


def italian_topology(
    num_base_stations: int | None = None, seed: int | None = None
) -> NetworkTopology:
    """Synthetic Italian network (N3).  ``num_base_stations`` scales it down."""
    return _build(ITALIAN_PROFILE, num_base_stations, seed)


def _build(
    profile: OperatorProfile, num_base_stations: int | None, seed: int | None
) -> NetworkTopology:
    if num_base_stations is not None and num_base_stations != profile.num_base_stations:
        profile = profile.scaled(num_base_stations)
    return generate_operator_topology(profile, seed=seed)


OPERATOR_FACTORIES: dict[str, Callable[..., NetworkTopology]] = {
    "romanian": romanian_topology,
    "swiss": swiss_topology,
    "italian": italian_topology,
}

OPERATOR_PROFILES: dict[str, OperatorProfile] = {
    "romanian": ROMANIAN_PROFILE,
    "swiss": SWISS_PROFILE,
    "italian": ITALIAN_PROFILE,
}


def testbed_topology() -> NetworkTopology:
    """The experimental proof-of-concept testbed of Section 5 (Fig. 7).

    Two 20 MHz base stations, one OpenFlow switch with 1 Gb/s ports, an edge
    compute unit with 16 CPU cores and a core compute unit with 64 CPU cores
    behind an emulated wide-area backhaul.  The paper emulates a 30 ms
    backhaul and still anchors 30 ms-tolerant mMTC slices behind it; because
    our delay model adds the transport-network delay on top of the emulated
    backhaul, we use 28 ms so that the end-to-end path delay stays within the
    30 ms tolerance and the intended slice placement is preserved.
    """
    topology = NetworkTopology(name="testbed")
    topology.add_switch(TransportSwitch(name="openflow-switch"))
    topology.add_compute_unit(
        ComputeUnit(
            name="edge-cu", capacity_cpus=16.0, kind=ComputeUnitKind.EDGE
        )
    )
    topology.add_compute_unit(
        ComputeUnit(
            name="core-cu",
            capacity_cpus=64.0,
            kind=ComputeUnitKind.CORE,
            access_latency_ms=28.0,
        )
    )
    for i in range(2):
        topology.add_base_station(
            BaseStation(name=f"bs-{i}", capacity_mhz=20.0, position_km=(0.5 * (i + 1), 0.0))
        )
        topology.add_link(
            TransportLink(
                endpoint_a=f"bs-{i}",
                endpoint_b="openflow-switch",
                capacity_mbps=1_000.0,
                length_km=0.5,
                technology=LinkTechnology.COPPER,
            )
        )
    # One 1 Gb/s link from the switch towards each compute unit ("Link 0" and
    # "Link 1" in Fig. 8(c)).
    topology.add_link(
        TransportLink(
            endpoint_a="openflow-switch",
            endpoint_b="edge-cu",
            capacity_mbps=1_000.0,
            length_km=0.1,
            technology=LinkTechnology.COPPER,
        )
    )
    topology.add_link(
        TransportLink(
            endpoint_a="openflow-switch",
            endpoint_b="core-cu",
            capacity_mbps=1_000.0,
            length_km=0.1,
            technology=LinkTechnology.COPPER,
        )
    )
    topology.validate()
    return topology
