"""Radio-domain models: spectrum, physical resource blocks and RAN sharing."""

from repro.radio.spectral import (
    RadioModel,
    IDEAL_RADIO_MODEL,
    prbs_per_mhz,
    bitrate_to_mhz,
    mhz_to_bitrate,
)
from repro.radio.ran_sharing import RanSlicingEnforcer, RadioShare

__all__ = [
    "RadioModel",
    "IDEAL_RADIO_MODEL",
    "prbs_per_mhz",
    "bitrate_to_mhz",
    "mhz_to_bitrate",
    "RanSlicingEnforcer",
    "RadioShare",
]
