"""Spectrum / bitrate conversion (the eta_{tau,b} factors of the paper).

The orchestration problem reserves *bitrate* ``z`` for each slice, but the
radio constraint (4) is expressed in spectrum: ``eta_{tau,b}`` maps the
bitrate carried for tenant ``tau`` at base station ``b`` into MHz of radio
spectrum (equivalently, physical resource blocks).  The paper assumes ideal
channel conditions with 2x2 MIMO where a 20 MHz carrier yields 150 Mb/s,
i.e. ``eta = 20/150`` MHz per Mb/s; this module also provides a configurable
model so degraded channel qualities can be explored.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import ensure_in_range, ensure_non_negative, ensure_positive

#: LTE numerology: a 20 MHz carrier contains 100 physical resource blocks.
PRBS_PER_MHZ = 5.0


def prbs_per_mhz() -> float:
    """Physical resource blocks contained in one MHz of LTE spectrum."""
    return PRBS_PER_MHZ


@dataclass(frozen=True)
class RadioModel:
    """Maps bitrate to spectrum for a given average channel quality.

    ``peak_spectral_efficiency`` is the throughput per MHz under ideal
    conditions; ``channel_quality`` in (0, 1] scales it down to model the
    average signal quality observed by the monitoring system (Section 2.2.2
    notes that eta depends mostly on the average signal quality between the
    users and the BS).
    """

    peak_spectral_efficiency_mbps_per_mhz: float = 7.5
    channel_quality: float = 1.0

    def __post_init__(self) -> None:
        ensure_positive(
            self.peak_spectral_efficiency_mbps_per_mhz,
            "peak_spectral_efficiency_mbps_per_mhz",
        )
        ensure_in_range(self.channel_quality, 1e-6, 1.0, "channel_quality")

    @property
    def effective_efficiency(self) -> float:
        """Achievable Mb/s per MHz at the current channel quality."""
        return self.peak_spectral_efficiency_mbps_per_mhz * self.channel_quality

    def eta_mhz_per_mbps(self) -> float:
        """The eta factor: MHz of spectrum needed per Mb/s of service load."""
        return 1.0 / self.effective_efficiency

    def bitrate_to_mhz(self, mbps: float) -> float:
        """Spectrum (MHz) required to serve ``mbps`` of traffic."""
        ensure_non_negative(mbps, "mbps")
        return mbps * self.eta_mhz_per_mbps()

    def bitrate_to_prbs(self, mbps: float) -> float:
        """Physical resource blocks required to serve ``mbps`` of traffic."""
        return self.bitrate_to_mhz(mbps) * PRBS_PER_MHZ

    def mhz_to_bitrate(self, mhz: float) -> float:
        """Traffic (Mb/s) that ``mhz`` of spectrum can carry."""
        ensure_non_negative(mhz, "mhz")
        return mhz * self.effective_efficiency


#: The ideal-conditions model used throughout the paper's simulations
#: (20 MHz -> 150 Mb/s, i.e. eta_b = 20/150).
IDEAL_RADIO_MODEL = RadioModel()


def bitrate_to_mhz(mbps: float, model: RadioModel = IDEAL_RADIO_MODEL) -> float:
    """Module-level convenience wrapper around :meth:`RadioModel.bitrate_to_mhz`."""
    return model.bitrate_to_mhz(mbps)


def mhz_to_bitrate(mhz: float, model: RadioModel = IDEAL_RADIO_MODEL) -> float:
    """Module-level convenience wrapper around :meth:`RadioModel.mhz_to_bitrate`."""
    return model.mhz_to_bitrate(mhz)
