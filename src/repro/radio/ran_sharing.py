"""RAN slicing enforcement: allocating PRB shares of a base station to slices.

The paper's testbed uses commercial base stations whose proprietary interface
grants shares of physical resource blocks (PRBs) to different mobile networks
(one PLMN-id per slice).  This module reproduces that behaviour for the
simulated data plane: the RAN controller converts the orchestrator's bitrate
reservations into PRB shares, and the enforcer verifies they fit into the
carrier and computes the per-slice radio utilisation shown in Fig. 8(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.radio.spectral import PRBS_PER_MHZ, RadioModel, IDEAL_RADIO_MODEL
from repro.utils.validation import ensure_non_negative, ensure_positive


@dataclass(frozen=True)
class RadioShare:
    """A PRB share granted to one slice on one base station."""

    slice_name: str
    base_station: str
    prbs: float

    def __post_init__(self) -> None:
        ensure_non_negative(self.prbs, "prbs")


@dataclass
class RanSlicingEnforcer:
    """Tracks per-slice PRB shares of one base station and enforces capacity.

    Mirrors the base-station-local behaviour: the sum of the granted shares
    can never exceed the carrier size, and traffic beyond a slice's share is
    reported as radio-limited (it will be shaped by the middlebox upstream).
    """

    base_station: str
    capacity_mhz: float
    radio_model: RadioModel = IDEAL_RADIO_MODEL
    _shares: dict[str, RadioShare] = field(default_factory=dict)

    def __post_init__(self) -> None:
        ensure_positive(self.capacity_mhz, "capacity_mhz")

    @property
    def capacity_prbs(self) -> float:
        return self.capacity_mhz * PRBS_PER_MHZ

    @property
    def allocated_prbs(self) -> float:
        return sum(share.prbs for share in self._shares.values())

    @property
    def free_prbs(self) -> float:
        return self.capacity_prbs - self.allocated_prbs

    def shares(self) -> dict[str, RadioShare]:
        return dict(self._shares)

    def grant_bitrate(self, slice_name: str, mbps: float) -> RadioShare:
        """Grant (or update) a slice's share sized for ``mbps`` of traffic.

        Raises ``ValueError`` when the requested share does not fit in the
        remaining carrier capacity; the orchestrator's admission control is
        responsible for never issuing such a grant.
        """
        ensure_non_negative(mbps, "mbps")
        prbs = self.radio_model.bitrate_to_prbs(mbps)
        currently = self._shares.get(slice_name)
        available = self.free_prbs + (currently.prbs if currently else 0.0)
        if prbs > available + 1e-9:
            raise ValueError(
                f"cannot grant {prbs:.1f} PRBs to {slice_name!r} on "
                f"{self.base_station!r}: only {available:.1f} PRBs available"
            )
        share = RadioShare(slice_name=slice_name, base_station=self.base_station, prbs=prbs)
        self._shares[slice_name] = share
        return share

    def revoke(self, slice_name: str) -> None:
        """Release the share of a departed slice (no-op if it has none)."""
        self._shares.pop(slice_name, None)

    def served_bitrate(self, slice_name: str, offered_mbps: float) -> float:
        """Traffic actually carried over the air for a slice.

        The air interface cannot exceed the granted share, so the served
        traffic is the offered load clipped to the share's bitrate.
        """
        ensure_non_negative(offered_mbps, "offered_mbps")
        share = self._shares.get(slice_name)
        if share is None:
            return 0.0
        share_mbps = self.radio_model.mhz_to_bitrate(share.prbs / PRBS_PER_MHZ)
        return min(offered_mbps, share_mbps)

    def utilisation(self, offered_mbps: dict[str, float]) -> dict[str, float]:
        """Per-slice PRB usage given each slice's offered load (Fig. 8(b))."""
        usage: dict[str, float] = {}
        for slice_name, share in self._shares.items():
            offered = offered_mbps.get(slice_name, 0.0)
            served = self.served_bitrate(slice_name, offered)
            usage[slice_name] = self.radio_model.bitrate_to_prbs(served)
        return usage
