"""Convenience helpers for running scenarios and comparing policies."""

from __future__ import annotations

from repro.core.baseline import NoOverbookingSolver
from repro.core.benders import BendersSolver
from repro.core.kac import KACSolver
from repro.core.milp_solver import DirectMILPSolver
from repro.simulation.engine import SimulationEngine, SimulationResult
from repro.simulation.scenario import Scenario

#: Orchestration policies available to the experiments and benchmarks.
#:
#: ``optimal`` uses the direct HiGHS MILP, which returns the same decisions as
#: the Benders method (both are exact) but considerably faster on the
#: evaluation instances; the Benders implementation is exercised explicitly by
#: the ``benders`` policy and by the solver ablation benchmark.
POLICIES = ("optimal", "benders", "kac", "no-overbooking")


def make_solver(policy: str):
    """Instantiate the solver behind a named orchestration policy."""
    if policy == "optimal":
        return DirectMILPSolver()
    if policy == "benders":
        return BendersSolver()
    if policy == "kac":
        return KACSolver()
    if policy == "no-overbooking":
        return NoOverbookingSolver()
    raise KeyError(f"unknown policy {policy!r}; expected one of {POLICIES}")


def run_scenario(
    scenario: Scenario,
    policy: str = "optimal",
    stop_on_converged_revenue: bool = False,
) -> SimulationResult:
    """Run one scenario under one policy and return the simulation result."""
    engine = SimulationEngine(scenario, make_solver(policy), policy_name=policy)
    return engine.run(stop_on_converged_revenue=stop_on_converged_revenue)


def compare_policies(
    scenario: Scenario, policies: tuple[str, ...] = ("optimal", "no-overbooking")
) -> dict[str, SimulationResult]:
    """Run the same scenario under several policies (fresh engine per policy)."""
    return {policy: run_scenario(scenario, policy) for policy in policies}


def relative_revenue_gain(
    result: SimulationResult, baseline: SimulationResult
) -> float:
    """Percentage net-revenue gain of a policy over a baseline (Fig. 5 y-axis)."""
    from repro.utils.stats import relative_gain

    return relative_gain(result.net_revenue, baseline.net_revenue)
