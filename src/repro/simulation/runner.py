"""Convenience helpers for running scenarios and comparing policies.

Every run here drives the control plane through the northbound
:class:`~repro.api.broker.SliceBroker` facade (via
:class:`~repro.simulation.engine.SimulationEngine`): the policies differ only
in the solver plugged into the broker's orchestrator.
"""

from __future__ import annotations

from typing import Any

from repro.core.baseline import NoOverbookingSolver
from repro.core.benders import BendersSolver
from repro.core.kac import KACSolver
from repro.core.milp_solver import DirectMILPSolver
from repro.dataplane.usage import DomainUsage
from repro.simulation.engine import SimulationEngine, SimulationResult
from repro.simulation.scenario import Scenario
from repro.utils.executors import resolve_executor

#: Orchestration policies available to the experiments and benchmarks.
#:
#: ``optimal`` uses the direct HiGHS MILP, which returns the same decisions as
#: the Benders method (both are exact) but considerably faster on the
#: evaluation instances; the Benders implementation is exercised explicitly by
#: the ``benders`` policy and by the solver ablation benchmark.
POLICIES = ("optimal", "benders", "kac", "no-overbooking")


def make_solver(policy: str):
    """Instantiate the solver behind a named orchestration policy."""
    if policy == "optimal":
        return DirectMILPSolver()
    if policy == "benders":
        return BendersSolver()
    if policy == "kac":
        return KACSolver()
    if policy == "no-overbooking":
        return NoOverbookingSolver()
    raise KeyError(f"unknown policy {policy!r}; expected one of {POLICIES}")


def run_scenario(
    scenario: Scenario,
    policy: str = "optimal",
    stop_on_converged_revenue: bool = False,
) -> SimulationResult:
    """Run one scenario under one policy and return the simulation result."""
    engine = SimulationEngine(scenario, make_solver(policy), policy_name=policy)
    return engine.run(stop_on_converged_revenue=stop_on_converged_revenue)


def _run_policy_job(job: tuple[Scenario, str, bool]) -> SimulationResult:
    """Module-level map function so process-pool executors can pickle it."""
    scenario, policy, stop_on_converged_revenue = job
    return run_scenario(
        scenario, policy=policy, stop_on_converged_revenue=stop_on_converged_revenue
    )


def compare_policies(
    scenario: Scenario,
    policies: tuple[str, ...] = ("optimal", "no-overbooking"),
    executor=None,
    workers: int | None = None,
    stop_on_converged_revenue: bool = False,
) -> dict[str, SimulationResult]:
    """Run the same scenario under several policies (fresh engine per policy).

    The per-policy runs are independent, so they fan out through the campaign
    executor layer (:mod:`repro.utils.executors`): serial by default, a
    process pool when ``workers > 1`` or an explicit ``executor`` is given.
    Every policy replays the same scenario object -- and therefore the same
    seed-derived demand traces -- so the comparison stays paired whichever
    executor runs it.

    ``stop_on_converged_revenue`` interacts with the campaign cache upstream:
    an early-stopped run covers fewer epochs than a full one, so the flag is
    part of :class:`repro.experiments.campaign.RunSpec` and hence of the
    cache key.  A record produced with the stopping rule enabled is never
    returned for a full-run spec (or vice versa); here, where nothing is
    cached, the flag simply propagates to every policy's engine.
    """
    executor = resolve_executor(executor, workers)
    jobs = [(scenario, policy, stop_on_converged_revenue) for policy in policies]
    results = executor.map(_run_policy_job, jobs)
    return dict(zip(policies, results))


def relative_revenue_gain(
    result: SimulationResult, baseline: SimulationResult
) -> float:
    """Percentage net-revenue gain of a policy over a baseline (Fig. 5 y-axis)."""
    from repro.utils.stats import relative_gain

    return relative_gain(result.net_revenue, baseline.net_revenue)


# --------------------------------------------------------------------- #
# Result serialization (campaign persistence hooks)
# --------------------------------------------------------------------- #
def _usage_as_dict(usage: DomainUsage) -> dict[str, Any]:
    return {
        "capacity": usage.capacity,
        "reserved": usage.reserved,
        "used": usage.used,
        "per_slice_reserved": dict(usage.per_slice_reserved),
        "per_slice_used": dict(usage.per_slice_used),
    }


def _usage_key(key: str | tuple[str, str]) -> str:
    """JSON-safe resource key (transport links are (a, b) tuples)."""
    return key if isinstance(key, str) else f"{key[0]}--{key[1]}"


def simulation_record(result: SimulationResult) -> dict[str, Any]:
    """Serialise a :class:`SimulationResult` into a JSON-safe run record.

    Returns ``{"summary": ..., "extras": ...}`` as consumed by the campaign
    layer: the flat numeric summary plus the per-epoch series the figure
    reduce steps need (net-revenue timeline, admission outcome and -- for
    scenarios that record usage, e.g. the Fig. 8 testbed -- the per-domain
    reservation/utilisation timelines).
    """
    extras: dict[str, Any] = {
        "scenario_name": result.scenario_name,
        "policy": result.policy,
        "num_epochs": len(result.epoch_records),
        "per_epoch_net": [record.net_revenue for record in result.epoch_records],
        "final_admitted": list(result.final_admitted),
        "final_rejected": list(result.final_rejected),
    }
    if any(
        record.radio_usage or record.transport_usage or record.compute_usage
        for record in result.epoch_records
    ):
        extras["epoch_usage"] = [
            {
                "epoch": record.epoch,
                "radio": {
                    _usage_key(k): _usage_as_dict(u)
                    for k, u in record.radio_usage.items()
                },
                "transport": {
                    _usage_key(k): _usage_as_dict(u)
                    for k, u in record.transport_usage.items()
                },
                "compute": {
                    _usage_key(k): _usage_as_dict(u)
                    for k, u in record.compute_usage.items()
                },
            }
            for record in result.epoch_records
        ]
    return {"summary": result.summary(), "extras": extras}
