"""Net-revenue and SLA-violation accounting.

The paper reports, for every scenario, the operator's *net revenue* in
monetary units and the footprint of overbooking on the tenants (probability
of an SLA violation and the share of traffic affected when one happens).
The accounting rules, consistent with the reward/penalty calibration of
Section 4.3.2 (``K = m R / Lambda``: failing to serve 10 % of the SLA costs
``10 % * m`` of the reward), are:

* an admitted slice accrues its reward ``R`` uniformly over its lifetime
  (``R / L`` per active epoch);
* in every epoch and at every base station, the peak amount of SLA-conformant
  traffic that the (work-conserving) data plane could not serve -- see
  :class:`repro.dataplane.multiplexing.SliceMultiplexer` -- is charged at
  ``K / (L * B)`` per Mb/s, so a slice that is shorted by 10 % of its SLA at
  every site for its whole lifetime pays back ``0.1 * m * R``;
* SLA-violation statistics are tracked per monitoring sample, matching the
  paper's "% of samples" reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.slices import SliceRequest

_VIOLATION_TOLERANCE_MBPS = 1e-6


@dataclass(frozen=True)
class EpochRevenue:
    """Revenue earned (and penalties paid) during one decision epoch."""

    epoch: int
    reward: float
    penalty: float
    active_slices: int

    @property
    def net(self) -> float:
        return self.reward - self.penalty


@dataclass
class RevenueReport:
    """Aggregate of a whole simulation run."""

    epochs: list[EpochRevenue] = field(default_factory=list)
    violated_samples: int = 0
    total_samples: int = 0
    drop_fractions: list[float] = field(default_factory=list)
    per_slice_reward: dict[str, float] = field(default_factory=dict)
    per_slice_penalty: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def total_reward(self) -> float:
        return float(sum(e.reward for e in self.epochs))

    @property
    def total_penalty(self) -> float:
        return float(sum(e.penalty for e in self.epochs))

    @property
    def net_revenue(self) -> float:
        """Total net revenue in monetary units (the paper's headline metric)."""
        return self.total_reward - self.total_penalty

    @property
    def per_epoch_net(self) -> np.ndarray:
        return np.array([e.net for e in self.epochs])

    @property
    def violation_probability(self) -> float:
        """Fraction of monitoring samples in which an SLA violation occurred."""
        if self.total_samples == 0:
            return 0.0
        return self.violated_samples / self.total_samples

    @property
    def mean_drop_fraction(self) -> float:
        """Average share of conformant traffic affected, over violated samples."""
        if not self.drop_fractions:
            return 0.0
        return float(np.mean(self.drop_fractions))

    @property
    def max_drop_fraction(self) -> float:
        if not self.drop_fractions:
            return 0.0
        return float(np.max(self.drop_fractions))

    def summary(self) -> dict[str, float]:
        return {
            "net_revenue": self.net_revenue,
            "total_reward": self.total_reward,
            "total_penalty": self.total_penalty,
            "violation_probability": self.violation_probability,
            "mean_drop_fraction": self.mean_drop_fraction,
            "max_drop_fraction": self.max_drop_fraction,
            "epochs": float(len(self.epochs)),
        }


class RevenueAccountant:
    """Accumulates revenue and SLA-violation statistics epoch by epoch."""

    def __init__(self, num_base_stations: int):
        if num_base_stations <= 0:
            raise ValueError("num_base_stations must be positive")
        self.num_base_stations = num_base_stations
        self.report = RevenueReport()

    # ------------------------------------------------------------------ #
    def record_epoch(
        self,
        epoch: int,
        active_requests: list[SliceRequest],
        offered_samples_mbps: dict[tuple[str, str], np.ndarray],
        unserved_samples_mbps: dict[tuple[str, str], np.ndarray],
    ) -> EpochRevenue:
        """Account for one epoch.

        Parameters
        ----------
        active_requests:
            The admitted slices that were active (provisioned) this epoch.
        offered_samples_mbps:
            SLA-conformant offered load samples per (slice name, base
            station) observed during the epoch.
        unserved_samples_mbps:
            For the same keys, how much of each sample the data plane could
            not serve (the overbooking deficit after statistical multiplexing).
        """
        reward = 0.0
        penalty = 0.0
        # Group the offered keys by slice name up front (and convert each
        # sample array to float64 exactly once) instead of rescanning -- and
        # reconverting -- the whole dict for every active request.
        offered_by_name: dict[str, list[tuple[tuple[str, str], np.ndarray]]] = {}
        for key, samples in offered_samples_mbps.items():
            offered_by_name.setdefault(key[0], []).append(
                (key, np.asarray(samples, dtype=float))
            )
        for request in active_requests:
            slice_reward = request.reward / request.duration_epochs
            reward += slice_reward
            self.report.per_slice_reward[request.name] = (
                self.report.per_slice_reward.get(request.name, 0.0) + slice_reward
            )
            penalty_rate = request.penalty_rate_per_mbps / (
                request.duration_epochs * self.num_base_stations
            )
            for (name, bs), samples in offered_by_name.get(request.name, []):
                if samples.size == 0:
                    continue
                unserved = np.asarray(
                    unserved_samples_mbps.get((name, bs), np.zeros_like(samples)),
                    dtype=float,
                )
                deficit = float(unserved.max()) if unserved.size else 0.0
                slice_penalty = penalty_rate * deficit
                penalty += slice_penalty
                self.report.per_slice_penalty[request.name] = (
                    self.report.per_slice_penalty.get(request.name, 0.0) + slice_penalty
                )
                # Per-sample SLA-violation statistics.
                violated = unserved > _VIOLATION_TOLERANCE_MBPS
                self.report.total_samples += int(samples.size)
                self.report.violated_samples += int(np.count_nonzero(violated))
                for sample, missing in zip(samples[violated], unserved[violated]):
                    self.report.drop_fractions.append(
                        float(missing / sample) if sample > 0 else 0.0
                    )

        epoch_revenue = EpochRevenue(
            epoch=epoch,
            reward=reward,
            penalty=penalty,
            active_slices=len(active_requests),
        )
        self.report.epochs.append(epoch_revenue)
        return epoch_revenue
