"""Decision-epoch simulation engine used to reproduce the paper's evaluation.

A :class:`~repro.simulation.scenario.Scenario` bundles a topology, a set of
slice workloads (request + demand behaviour) and the simulation knobs; the
:class:`~repro.simulation.engine.SimulationEngine` drives the end-to-end
orchestrator epoch by epoch, pushes the tenants' traffic through the
(simulated) data plane, and the
:class:`~repro.simulation.revenue.RevenueAccountant` turns the outcome into
the net-revenue and SLA-violation metrics the paper reports.
"""

from repro.simulation.revenue import RevenueAccountant, RevenueReport, EpochRevenue
from repro.simulation.scenario import (
    Scenario,
    SliceWorkload,
    homogeneous_scenario,
    heterogeneous_scenario,
    testbed_scenario,
)
from repro.simulation.engine import SimulationEngine, SimulationResult, EpochRecord
from repro.simulation.runner import run_scenario, compare_policies, make_solver

__all__ = [
    "RevenueAccountant",
    "RevenueReport",
    "EpochRevenue",
    "Scenario",
    "SliceWorkload",
    "homogeneous_scenario",
    "heterogeneous_scenario",
    "testbed_scenario",
    "SimulationEngine",
    "SimulationResult",
    "EpochRecord",
    "run_scenario",
    "compare_policies",
    "make_solver",
]
