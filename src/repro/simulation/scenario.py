"""Scenario definitions for the evaluation.

A scenario bundles a topology, a workload (slice requests plus their demand
behaviour) and the simulation knobs.  Three constructors mirror the paper's
evaluation set-ups:

* :func:`homogeneous_scenario` -- Fig. 5: all tenants use the same slice
  template, demand has mean ``alpha * Lambda`` and standard deviation
  ``sigma``, and the penalty factor ``m`` is shared;
* :func:`heterogeneous_scenario` -- Fig. 6: two slice types mixed with ratio
  ``beta`` at fixed mean load ``0.2 * Lambda``;
* :func:`testbed_scenario` -- Section 5 / Fig. 8: nine slices (3 uRLLC,
  3 mMTC, 3 eMBB) arriving every two hours on the two-BS testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.slices import (
    EMBB_TEMPLATE,
    MMTC_TEMPLATE,
    SliceRequest,
    SliceTemplate,
    URLLC_TEMPLATE,
)
from repro.topology.network import NetworkTopology
from repro.topology.operators import (
    OPERATOR_FACTORIES,
    testbed_topology,
)
from repro.traffic.patterns import DemandSpec
from repro.utils.validation import ensure_choice, ensure_in_range, ensure_positive_int

#: Tenant counts used in the paper's simulations (75 for the Italian network
#: because it has much more radio/transport capacity).
PAPER_TENANT_COUNTS = {"romanian": 10, "swiss": 10, "italian": 75}


@dataclass(frozen=True)
class SliceWorkload:
    """One tenant: its slice request and the demand it will generate."""

    request: SliceRequest
    demand: DemandSpec

    @property
    def name(self) -> str:
        return self.request.name


@dataclass(frozen=True)
class LinkFailureEvent:
    """A mid-run capacity-loss episode.

    At the start of ``epoch``'s admission round every link in ``links``
    permanently drops to ``capacity_factor`` times its current capacity
    (links never vanish outright -- a transport link needs positive
    capacity).  Slices whose reservations no longer fit are displaced and
    re-admitted through the orchestrator's re-homing path.
    """

    epoch: int
    links: tuple[tuple[str, str], ...]
    capacity_factor: float

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {self.epoch!r}")
        if not self.links:
            raise ValueError("a link-failure event needs at least one link")
        if not 0.0 < self.capacity_factor < 1.0:
            raise ValueError(
                f"capacity_factor must lie in (0, 1), got {self.capacity_factor!r}"
            )
        object.__setattr__(
            self,
            "links",
            tuple(tuple(sorted((str(a), str(b)))) for a, b in self.links),
        )


@dataclass(frozen=True)
class Scenario:
    """A complete simulation configuration."""

    name: str
    topology: NetworkTopology
    workloads: tuple[SliceWorkload, ...]
    num_epochs: int = 24
    epochs_per_day: int = 24
    samples_per_epoch: int = 12
    candidate_paths_per_pair: int = 3
    # "oracle" derives forecasts from the demand statistics (the Fig. 5/6
    # steady-state evaluation); "online" learns them from monitoring data
    # (the Fig. 8 testbed behaviour).
    forecast_mode: str = "oracle"
    record_usage: bool = False
    seed: int | None = None
    #: Mid-run capacity-loss episodes, applied by whatever drives the
    #: scenario (the simulation engine schedules them on the broker; the
    #: differential oracle folds past episodes into the epoch's instance).
    link_failures: tuple[LinkFailureEvent, ...] = ()

    def __post_init__(self) -> None:
        ensure_positive_int(self.num_epochs, "num_epochs")
        ensure_positive_int(self.epochs_per_day, "epochs_per_day")
        ensure_positive_int(self.samples_per_epoch, "samples_per_epoch")
        ensure_positive_int(self.candidate_paths_per_pair, "candidate_paths_per_pair")
        ensure_choice(self.forecast_mode, ("oracle", "online"), "forecast_mode")
        if not self.workloads:
            raise ValueError("a scenario needs at least one slice workload")
        names = [w.name for w in self.workloads]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"workload slice names must be unique, got duplicates {duplicates}")
        known_links = {link.key for link in self.topology.links}
        for event in self.link_failures:
            if event.epoch >= self.num_epochs:
                raise ValueError(
                    f"link failure at epoch {event.epoch} lies outside the "
                    f"{self.num_epochs}-epoch horizon"
                )
            unknown = sorted(set(event.links) - known_links)
            if unknown:
                raise ValueError(f"link failure names unknown links: {unknown}")

    @property
    def requests(self) -> list[SliceRequest]:
        return [w.request for w in self.workloads]

    def workload(self, name: str) -> SliceWorkload:
        for candidate in self.workloads:
            if candidate.name == name:
                return candidate
        raise KeyError(f"unknown workload {name!r}")

    def with_name(self, name: str) -> "Scenario":
        return replace(self, name=name)


# --------------------------------------------------------------------- #
# Scenario constructors
# --------------------------------------------------------------------- #
def _resolve_topology(
    operator: str | NetworkTopology,
    num_base_stations: int | None,
    seed: int | None,
) -> NetworkTopology:
    if isinstance(operator, NetworkTopology):
        return operator
    try:
        factory = OPERATOR_FACTORIES[operator]
    except KeyError as exc:
        raise KeyError(
            f"unknown operator {operator!r}; expected one of {sorted(OPERATOR_FACTORIES)}"
        ) from exc
    return factory(num_base_stations=num_base_stations, seed=seed)


def homogeneous_scenario(
    operator: str | NetworkTopology,
    template: SliceTemplate,
    num_tenants: int,
    mean_load_fraction: float,
    relative_std: float = 0.25,
    penalty_factor: float = 1.0,
    num_epochs: int = 24,
    num_base_stations: int | None = None,
    seed: int | None = None,
    forecast_mode: str = "oracle",
) -> Scenario:
    """The homogeneous scenarios of Fig. 5.

    ``mean_load_fraction`` is the paper's ``alpha`` (mean load over SLA) and
    ``relative_std`` is ``sigma / lambda_bar`` (0, 1/4 or 1/2 in the paper).
    """
    ensure_in_range(mean_load_fraction, 0.0, 1.0, "mean_load_fraction")
    ensure_positive_int(num_tenants, "num_tenants")
    topology = _resolve_topology(operator, num_base_stations, seed)
    spec = DemandSpec(mean_fraction=mean_load_fraction, relative_std=relative_std)
    workloads = tuple(
        SliceWorkload(
            request=SliceRequest(
                name=f"{template.name}-{i}",
                template=template,
                duration_epochs=num_epochs,
                penalty_factor=penalty_factor,
                arrival_epoch=0,
            ),
            demand=spec,
        )
        for i in range(num_tenants)
    )
    operator_name = topology.name
    return Scenario(
        name=(
            f"fig5:{operator_name}:{template.name}:alpha={mean_load_fraction:.2f}:"
            f"rel_std={relative_std:.2f}:m={penalty_factor:g}"
        ),
        topology=topology,
        workloads=workloads,
        num_epochs=num_epochs,
        forecast_mode=forecast_mode,
        seed=seed,
    )


def heterogeneous_scenario(
    operator: str | NetworkTopology,
    template_a: SliceTemplate,
    template_b: SliceTemplate,
    num_tenants: int,
    fraction_b: float,
    mean_load_fraction: float = 0.2,
    relative_std: float = 0.25,
    penalty_factor: float = 1.0,
    num_epochs: int = 24,
    num_base_stations: int | None = None,
    seed: int | None = None,
    forecast_mode: str = "oracle",
) -> Scenario:
    """The heterogeneous scenarios of Fig. 6.

    ``fraction_b`` is the paper's ``beta``: the share of tenants using
    ``template_b`` (the remaining tenants use ``template_a``).  The mean load
    is fixed to ``0.2 * Lambda`` in the paper.
    """
    ensure_in_range(fraction_b, 0.0, 1.0, "fraction_b")
    ensure_positive_int(num_tenants, "num_tenants")
    topology = _resolve_topology(operator, num_base_stations, seed)
    spec = DemandSpec(mean_fraction=mean_load_fraction, relative_std=relative_std)
    count_b = int(round(fraction_b * num_tenants))
    count_a = num_tenants - count_b
    workloads: list[SliceWorkload] = []
    for i in range(count_a):
        workloads.append(
            SliceWorkload(
                request=SliceRequest(
                    name=f"{template_a.name}-{i}",
                    template=template_a,
                    duration_epochs=num_epochs,
                    penalty_factor=penalty_factor,
                ),
                demand=spec,
            )
        )
    for i in range(count_b):
        workloads.append(
            SliceWorkload(
                request=SliceRequest(
                    name=f"{template_b.name}-{i}",
                    template=template_b,
                    duration_epochs=num_epochs,
                    penalty_factor=penalty_factor,
                ),
                demand=spec,
            )
        )
    return Scenario(
        name=(
            f"fig6:{topology.name}:{template_a.name}+{template_b.name}:"
            f"beta={fraction_b:.2f}:m={penalty_factor:g}"
        ),
        topology=topology,
        workloads=tuple(workloads),
        num_epochs=num_epochs,
        forecast_mode=forecast_mode,
        seed=seed,
    )


def testbed_scenario(
    num_epochs: int = 18,
    penalty_factor: float = 1.0,
    mean_load_fraction: float = 0.5,
    relative_std: float = 0.1,
    seed: int | None = None,
) -> Scenario:
    """The dynamic proof-of-concept experiment of Section 5 (Fig. 8).

    Nine slice requests -- three uRLLC, then three mMTC, then three eMBB --
    arrive every two epochs (the paper's epochs are one hour long, starting
    at 06:00).  Demand has mean ``Lambda / 2`` and a standard deviation of
    10 % of the mean; forecasts are learnt online from monitoring data.
    """
    topology = testbed_topology()
    spec = DemandSpec(
        mean_fraction=mean_load_fraction, relative_std=relative_std, seasonal=False
    )
    arrival_plan: list[tuple[SliceTemplate, str]] = [
        (URLLC_TEMPLATE, "uRLLC1"),
        (URLLC_TEMPLATE, "uRLLC2"),
        (URLLC_TEMPLATE, "uRLLC3"),
        (MMTC_TEMPLATE, "mMTC1"),
        (MMTC_TEMPLATE, "mMTC2"),
        (MMTC_TEMPLATE, "mMTC3"),
        (EMBB_TEMPLATE, "eMBB1"),
        (EMBB_TEMPLATE, "eMBB2"),
        (EMBB_TEMPLATE, "eMBB3"),
    ]
    workloads = []
    for index, (template, name) in enumerate(arrival_plan):
        arrival = 2 * index
        workloads.append(
            SliceWorkload(
                request=SliceRequest(
                    name=name,
                    template=template,
                    duration_epochs=num_epochs,
                    penalty_factor=penalty_factor,
                    arrival_epoch=arrival,
                ),
                demand=spec,
            )
        )
    return Scenario(
        name="fig8:testbed",
        topology=topology,
        workloads=tuple(workloads),
        num_epochs=num_epochs,
        forecast_mode="online",
        record_usage=True,
        seed=seed,
    )
