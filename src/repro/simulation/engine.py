"""The decision-epoch simulation engine.

The engine wires the pieces of the reproduction together exactly as the
paper's architecture prescribes (Fig. 2): tenants' requests flow through the
northbound :class:`~repro.api.broker.SliceBroker` into the control plane;
every decision epoch the broker drives admission control & resource
reservation and pushes the result to the domain controllers; the tenants'
traffic is then pushed through the per-slice rate-control middleboxes;
monitoring samples flow back through the broker into the time-series store
and drive the next epoch's forecasts.  The revenue accountant keeps the
score.

The engine is one *driver* of the broker among several (examples, future
trace replayers / RL environments): every control-plane mutation here goes
through the facade, never the orchestrator directly.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.api.broker import SliceBroker
from repro.controlplane.orchestrator import OrchestratorConfig
from repro.core.forecast_inputs import ForecastInput
from repro.dataplane.middlebox import RateControlMiddlebox
from repro.dataplane.multiplexing import SliceMultiplexer
from repro.dataplane.usage import DomainUsage, UsageAccountant
from repro.simulation.revenue import RevenueAccountant, RevenueReport
from repro.simulation.scenario import Scenario, SliceWorkload
from repro.traffic.demand import DemandModel
from repro.traffic.patterns import demand_for_template
from repro.utils.rng import derive_seed
from repro.utils.stats import standard_error_below

#: Number of synthetic epochs drawn when deriving "oracle" forecasts from the
#: demand statistics (the steady-state knowledge assumed by Fig. 5 / Fig. 6).
_ORACLE_SAMPLE_EPOCHS = 200
#: Monitoring period in seconds (the paper samples every 5 minutes).
_SAMPLE_PERIOD_S = 300.0


@dataclass(frozen=True)
class EpochRecord:
    """What happened during one simulated decision epoch."""

    epoch: int
    accepted_slices: tuple[str, ...]
    active_slices: tuple[str, ...]
    net_revenue: float
    reward: float
    penalty: float
    solver_runtime_s: float
    #: Master iterations the epoch's solve took (0 when the decision was
    #: reused outright) and how many warm-start cuts seeded it -- the
    #: steady-state trajectory the warm-start benchmarks track.
    solver_iterations: int = 0
    solver_warm_cuts: int = 0
    radio_usage: dict[str, DomainUsage] = field(default_factory=dict)
    transport_usage: dict[tuple[str, str], DomainUsage] = field(default_factory=dict)
    compute_usage: dict[str, DomainUsage] = field(default_factory=dict)


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    scenario_name: str
    policy: str
    revenue: RevenueReport
    epoch_records: list[EpochRecord]
    final_admitted: tuple[str, ...]
    final_rejected: tuple[str, ...]

    @property
    def net_revenue(self) -> float:
        return self.revenue.net_revenue

    @property
    def violation_probability(self) -> float:
        return self.revenue.violation_probability

    @property
    def mean_drop_fraction(self) -> float:
        return self.revenue.mean_drop_fraction

    @property
    def num_admitted(self) -> int:
        return len(self.final_admitted)

    @property
    def per_epoch_net_revenue(self) -> np.ndarray:
        return self.revenue.per_epoch_net

    def summary(self) -> dict[str, float]:
        summary = self.revenue.summary()
        summary["num_admitted"] = float(self.num_admitted)
        return summary


class SimulationEngine:
    """Runs one scenario against one orchestration policy (solver)."""

    def __init__(self, scenario: Scenario, solver, policy_name: str | None = None):
        self.scenario = scenario
        self.solver = solver
        self.policy_name = policy_name or getattr(solver, "__class__").__name__
        config = OrchestratorConfig(
            epochs_per_day=scenario.epochs_per_day,
            samples_per_epoch=scenario.samples_per_epoch,
            candidate_paths_per_pair=scenario.candidate_paths_per_pair,
        )
        # Link-failure episodes damage the topology in place; run them on a
        # private copy so the (frozen, reusable) scenario keeps describing
        # the intact network and a second engine sees no scars.
        self.topology = (
            copy.deepcopy(scenario.topology)
            if scenario.link_failures
            else scenario.topology
        )
        self.broker = SliceBroker(
            topology=self.topology, solver=solver, config=config
        )
        #: The wrapped orchestrator, kept for benchmarks/tests that tweak its
        #: configuration in place; the engine itself only drives the broker.
        self.orchestrator = self.broker.orchestrator
        self.broker.submit_batch([workload.request for workload in scenario.workloads])
        if scenario.forecast_mode == "oracle":
            self.broker.set_forecast_overrides(self._oracle_forecasts())
        self._demand_models: dict[tuple[str, str], DemandModel] = {}
        self._middleboxes: dict[tuple[str, str], RateControlMiddlebox] = {}
        self.accountant = RevenueAccountant(
            num_base_stations=len(scenario.topology.base_station_names)
        )

    # ------------------------------------------------------------------ #
    # Demand plumbing
    # ------------------------------------------------------------------ #
    def _demand_model(self, workload: SliceWorkload, base_station: str) -> DemandModel:
        key = (workload.name, base_station)
        if key not in self._demand_models:
            self._demand_models[key] = demand_for_template(
                workload.request.template,
                workload.demand,
                seed=self.scenario.seed,
                label=f"{workload.name}:{base_station}",
            )
        return self._demand_models[key]

    def _middlebox(self, workload: SliceWorkload, base_station: str) -> RateControlMiddlebox:
        key = (workload.name, base_station)
        if key not in self._middleboxes:
            self._middleboxes[key] = RateControlMiddlebox(
                slice_name=workload.name,
                sla_mbps=workload.request.sla_mbps,
                reservation_mbps=0.0,
            )
        return self._middleboxes[key]

    def _oracle_forecasts(self) -> dict[str, ForecastInput]:
        """Derive per-slice forecasts directly from the demand statistics.

        The Fig. 5 / Fig. 6 evaluation assumes the orchestrator has already
        learnt each slice's steady-state behaviour; this helper reproduces
        that by sampling the demand model offline and summarising the
        distribution of per-epoch peaks.
        """
        forecasts: dict[str, ForecastInput] = {}
        for workload in self.scenario.workloads:
            probe = demand_for_template(
                workload.request.template,
                workload.demand,
                seed=derive_seed(self.scenario.seed, "oracle", workload.name),
                label=f"{workload.name}:oracle",
            )
            peaks = probe.peak_series(
                _ORACLE_SAMPLE_EPOCHS, self.scenario.samples_per_epoch
            )
            mean_peak = float(np.mean(peaks))
            spread = float(np.std(peaks)) / mean_peak if mean_peak > 0 else 1.0
            forecasts[workload.name] = ForecastInput(
                lambda_hat_mbps=mean_peak,
                sigma_hat=float(np.clip(spread, 0.0, 1.0)),
            ).clamped(workload.request.sla_mbps)
        return forecasts

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(
        self,
        stop_on_converged_revenue: bool = False,
        convergence_threshold: float = 0.02,
        min_epochs_for_convergence: int = 8,
    ) -> SimulationResult:
        """Simulate the scenario and return the aggregated result.

        With ``stop_on_converged_revenue`` the run ends early once the
        standard error of the per-epoch net revenue drops below
        ``convergence_threshold`` (the paper's 2 % stopping rule), but never
        before ``min_epochs_for_convergence`` epochs.
        """
        records: list[EpochRecord] = []
        for epoch in range(self.scenario.num_epochs):
            records.append(self._run_one_epoch(epoch))
            if (
                stop_on_converged_revenue
                and len(records) >= min_epochs_for_convergence
                and standard_error_below(
                    [r.net_revenue for r in records], convergence_threshold
                )
            ):
                break

        admitted = tuple(sorted(self.broker.admitted_names()))
        rejected = tuple(sorted(self.broker.rejected_names()))
        return SimulationResult(
            scenario_name=self.scenario.name,
            policy=self.policy_name,
            revenue=self.accountant.report,
            epoch_records=records,
            final_admitted=admitted,
            final_rejected=rejected,
        )

    # ------------------------------------------------------------------ #
    def _run_one_epoch(self, epoch: int) -> EpochRecord:
        for event in self.scenario.link_failures:
            if event.epoch == epoch:
                self.broker.inject_link_failure(event.links, event.capacity_factor)
        report = self.broker.advance_epoch(epoch)
        decision = self.broker.last_decision
        active_records = self.broker.active_slices(epoch)
        active_names = report.active

        offered: dict[tuple[str, str], np.ndarray] = {}
        served_mean: dict[tuple[str, str], float] = {}
        active_requests = []
        active_allocations = {}
        for record in active_records:
            workload = self.scenario.workload(record.name)
            active_requests.append(record.request)
            allocation = decision.allocations.get(record.name)
            if allocation is not None and allocation.accepted:
                active_allocations[record.name] = allocation
            for bs in self.topology.base_station_names:
                demand = self._demand_model(workload, bs)
                # Convert to float64 once here; the multiplexer and the
                # revenue accountant consume the arrays as-is.
                samples = np.asarray(
                    demand.sample_epoch(epoch, self.scenario.samples_per_epoch).samples_mbps,
                    dtype=float,
                )
                offered[(record.name, bs)] = samples
                self.broker.report_load(record.name, bs, epoch, samples)

        # Work-conserving data plane: traffic above a slice's reservation is
        # only lost when a resource it traverses actually saturates.
        multiplexer = SliceMultiplexer(self.topology, active_allocations)
        load_result = multiplexer.unserved_traffic(offered)
        for (name, bs), samples in offered.items():
            unserved = load_result.unserved_mbps.get((name, bs), np.zeros_like(samples))
            served = np.maximum(samples - unserved, 0.0)
            served_mean[(name, bs)] = float(np.mean(served)) if samples.size else 0.0

        revenue = self.accountant.record_epoch(
            epoch=epoch,
            active_requests=active_requests,
            offered_samples_mbps=offered,
            unserved_samples_mbps=load_result.unserved_mbps,
        )

        radio_usage: dict[str, DomainUsage] = {}
        transport_usage: dict[tuple[str, str], DomainUsage] = {}
        compute_usage: dict[str, DomainUsage] = {}
        if self.scenario.record_usage and self.broker.last_problem is not None:
            accountant = UsageAccountant(self.broker.last_problem, decision)
            radio_usage = accountant.radio_usage(served_mean)
            transport_usage = accountant.transport_usage(served_mean)
            compute_usage = accountant.compute_usage(served_mean)

        return EpochRecord(
            epoch=epoch,
            accepted_slices=report.accepted,
            active_slices=active_names,
            net_revenue=revenue.net,
            reward=revenue.reward,
            penalty=revenue.penalty,
            solver_runtime_s=report.solver_runtime_s,
            solver_iterations=report.solver_iterations,
            solver_warm_cuts=report.solver_warm_cuts,
            radio_usage=radio_usage,
            transport_usage=transport_usage,
            compute_usage=compute_usage,
        )
