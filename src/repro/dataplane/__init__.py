"""Simulated data plane: network services, rate-control middlebox and usage.

The paper's data plane (Fig. 1) wraps each tenant's vertical service into an
ETSI network service whose traffic traverses a rate-control middlebox before
reaching the users.  The middlebox is what makes overbooking transparent: it
forwards traffic that fits the reservation, buffers traffic that exceeds the
reservation but respects the SLA, and drops traffic beyond the SLA.  This
package simulates that behaviour and accounts for per-domain resource usage,
which is what the testbed experiment (Fig. 8) measures.
"""

from repro.dataplane.middlebox import RateControlMiddlebox, MiddleboxReport
from repro.dataplane.network_service import (
    NetworkFunction,
    NetworkService,
    build_network_service,
)
from repro.dataplane.usage import DomainUsage, UsageAccountant

__all__ = [
    "RateControlMiddlebox",
    "MiddleboxReport",
    "NetworkFunction",
    "NetworkService",
    "build_network_service",
    "DomainUsage",
    "UsageAccountant",
]
