"""ETSI-style network services: the per-slice chain of functions of Fig. 1.

Each admitted slice is materialised as a *network service* (NS): a chain of
physical network functions (slices of base stations and switches), the
virtual network functions that connect users to the tenant's vertical
service (EPC components, middleboxes) and the vertical service itself.  The
orchestrator hands the NS descriptor to the domain controllers, which deploy
its pieces in their own domain.

The simulation does not execute the functions, but the NS object carries the
placement (which compute unit hosts the virtual functions), the per-function
CPU requirements, and the path each base station uses -- which is everything
the controllers need to account for resources and everything Fig. 8 reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.slices import SliceRequest
from repro.core.solution import TenantAllocation
from repro.utils.validation import ensure_non_negative


class FunctionKind(str, enum.Enum):
    """Role of a network function inside the slice's chain."""

    PNF_RADIO = "pnf-radio"          # slice of a base station
    PNF_TRANSPORT = "pnf-transport"  # slice of a switch / link
    VNF_CORE = "vnf-core"            # virtual EPC components (GTP gateways, MME...)
    VNF_MIDDLEBOX = "vnf-middlebox"  # the rate-control TCP proxy
    VERTICAL_SERVICE = "vertical-service"


@dataclass(frozen=True)
class NetworkFunction:
    """One element of a slice's network service chain."""

    name: str
    kind: FunctionKind
    location: str
    cpu_cores: float = 0.0

    def __post_init__(self) -> None:
        ensure_non_negative(self.cpu_cores, "cpu_cores")

    @property
    def is_virtual(self) -> bool:
        return self.kind in (
            FunctionKind.VNF_CORE,
            FunctionKind.VNF_MIDDLEBOX,
            FunctionKind.VERTICAL_SERVICE,
        )


@dataclass(frozen=True)
class NetworkService:
    """The deployed network service of one admitted slice."""

    slice_name: str
    compute_unit: str
    functions: tuple[NetworkFunction, ...]
    # Per base station: the transport path (as node names) the slice uses.
    paths_by_base_station: dict[str, tuple[str, ...]] = field(default_factory=dict)

    @property
    def total_cpu_cores(self) -> float:
        return float(sum(f.cpu_cores for f in self.functions))

    @property
    def virtual_functions(self) -> tuple[NetworkFunction, ...]:
        return tuple(f for f in self.functions if f.is_virtual)

    @property
    def physical_functions(self) -> tuple[NetworkFunction, ...]:
        return tuple(f for f in self.functions if not f.is_virtual)

    def function(self, name: str) -> NetworkFunction:
        for candidate in self.functions:
            if candidate.name == name:
                return candidate
        raise KeyError(f"network service {self.slice_name!r} has no function {name!r}")


# Fixed split of a slice's CPU budget across its virtual functions.  The
# vertical service receives the dominant share; the EPC and middlebox VNFs
# receive small fixed fractions, mirroring the testbed deployment where the
# OpenEPC and proxy VMs are small compared to the tenant's VMs.
_VS_SHARE = 0.8
_EPC_SHARE = 0.15
_MIDDLEBOX_SHARE = 0.05


def build_network_service(
    request: SliceRequest, allocation: TenantAllocation
) -> NetworkService:
    """Materialise the network service of an admitted slice.

    Raises ``ValueError`` for rejected allocations: there is nothing to
    deploy for a slice that was not admitted.
    """
    if not allocation.accepted or allocation.compute_unit is None:
        raise ValueError(
            f"cannot build a network service for rejected slice {request.name!r}"
        )
    total_cpus = allocation.reserved_cpus
    functions: list[NetworkFunction] = []
    for bs_name in sorted(allocation.paths):
        functions.append(
            NetworkFunction(
                name=f"{request.name}:ran:{bs_name}",
                kind=FunctionKind.PNF_RADIO,
                location=bs_name,
            )
        )
    for bs_name, path in sorted(allocation.paths.items()):
        for node in path.nodes[1:-1]:
            functions.append(
                NetworkFunction(
                    name=f"{request.name}:transport:{bs_name}:{node}",
                    kind=FunctionKind.PNF_TRANSPORT,
                    location=node,
                )
            )
    functions.append(
        NetworkFunction(
            name=f"{request.name}:epc",
            kind=FunctionKind.VNF_CORE,
            location=allocation.compute_unit,
            cpu_cores=total_cpus * _EPC_SHARE,
        )
    )
    functions.append(
        NetworkFunction(
            name=f"{request.name}:middlebox",
            kind=FunctionKind.VNF_MIDDLEBOX,
            location=allocation.compute_unit,
            cpu_cores=total_cpus * _MIDDLEBOX_SHARE,
        )
    )
    functions.append(
        NetworkFunction(
            name=f"{request.name}:vertical-service",
            kind=FunctionKind.VERTICAL_SERVICE,
            location=allocation.compute_unit,
            cpu_cores=total_cpus * _VS_SHARE,
        )
    )
    return NetworkService(
        slice_name=request.name,
        compute_unit=allocation.compute_unit,
        functions=tuple(functions),
        paths_by_base_station={
            bs: path.nodes for bs, path in allocation.paths.items()
        },
    )
