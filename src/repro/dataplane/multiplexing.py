"""Work-conserving statistical multiplexing of admitted slices.

Overbooking is profitable because reserved-but-unused capacity is not wasted:
the data plane is work-conserving, so a slice whose instantaneous load
exceeds its reservation is still served as long as the *aggregate* load on
every resource it traverses fits the physical capacity.  Only when a
resource saturates does the rate-control middlebox clamp the overbooked
slices back towards their reservations -- and only those slices: traffic
within a slice's reservation is always protected (that is the isolation
guarantee the reservation encodes).

This module computes, for the monitoring samples of one epoch, how much of
each slice's SLA-conformant traffic could not be served.  That quantity
drives both the SLA-violation statistics ("% of samples affected", "share of
traffic dropped") and the penalty charged to the operator.

The implementation is vectorized over the whole sample axis (see DESIGN.md,
"Vectorized data plane"): offered loads are stacked into one
``(num_keys, num_samples)`` array, the per-resource membership (which keys
load each radio / transport / compute resource, with which multiplier) is
compiled once per epoch into a sparse matrix, per-resource demand is a single
sparse-dense matrix product, and the overload attribution runs on whole
sample vectors at once.  All member-axis reductions accumulate sequentially
in membership order, so the results are bit-for-bit identical to the
straight-line per-sample formulation (kept as a reference implementation in
``tests/property/test_multiplexer_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.solution import TenantAllocation
from repro.topology.network import NetworkTopology

_EPSILON = 1e-12


@dataclass(frozen=True)
class ResourceLoadResult:
    """Unserved traffic per (slice, base station) for one epoch of samples."""

    unserved_mbps: dict[tuple[str, str], np.ndarray]
    overloaded_resources: tuple[str, ...]

    def total_unserved(self) -> float:
        return float(sum(arr.sum() for arr in self.unserved_mbps.values()))


@dataclass(frozen=True)
class _ResourceMembership:
    """Membership of every resource, compiled once per epoch.

    ``matrix`` is the sparse ``(num_resources, num_keys)`` multiplier matrix:
    ``matrix[r, k]`` is how many resource units one Mb/s of key ``k``'s
    traffic consumes on resource ``r`` (1 for radio, the link overhead for
    transport, CPUs-per-Mb/s for compute).  ``base`` holds the load-independent
    demand (baseline CPUs), ``capacity`` the physical capacities and ``labels``
    the resource names.  The CSR layout doubles as the per-resource member
    table: row ``r``'s indices/data are exactly the member keys and their
    multipliers, in membership (insertion) order.
    """

    matrix: sparse.csr_matrix
    base: np.ndarray
    capacity: np.ndarray
    labels: tuple[str, ...]

    @property
    def num_resources(self) -> int:
        return len(self.labels)

    def members(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """(member key indices, multipliers) of one resource row."""
        start, stop = self.matrix.indptr[row], self.matrix.indptr[row + 1]
        return self.matrix.indices[start:stop], self.matrix.data[start:stop]


class SliceMultiplexer:
    """Shares physical capacity among admitted slices, protecting reservations."""

    def __init__(
        self,
        topology: NetworkTopology,
        allocations: dict[str, TenantAllocation],
    ):
        self.topology = topology
        self.allocations = {
            name: alloc for name, alloc in allocations.items() if alloc.accepted
        }
        self._capacities = topology.capacities()

    # ------------------------------------------------------------------ #
    def unserved_traffic(
        self, offered_samples_mbps: dict[tuple[str, str], np.ndarray]
    ) -> ResourceLoadResult:
        """Compute per-(slice, BS) unserved traffic for one epoch.

        ``offered_samples_mbps`` holds the SLA-conformant offered load samples
        per (slice name, base station).  The returned arrays have the same
        shape; entry ``i`` is how much of sample ``i`` could not be served
        because some resource along the slice's path was saturated.
        """
        keys = list(offered_samples_mbps.keys())
        if not keys:
            return ResourceLoadResult(unserved_mbps={}, overloaded_resources=())

        # Stack the offered loads into one (num_keys, num_samples) matrix;
        # each key's samples are converted to float64 exactly once.
        loads = np.stack(
            [np.asarray(offered_samples_mbps[key], dtype=float) for key in keys]
        )
        num_keys, num_samples = loads.shape

        membership = self._membership(keys)
        reservations = self._reservations(keys)

        # Per-resource demand for every sample in one sparse matrix product:
        # demand[r, s] = base[r] + sum_k matrix[r, k] * loads[k, s].
        demand = membership.base[:, np.newaxis] + membership.matrix.dot(loads)
        overload = demand - membership.capacity[:, np.newaxis]

        unserved = np.zeros((num_keys, num_samples))
        overloaded: list[str] = []
        for row in range(membership.num_resources):
            hot = overload[row] > _EPSILON
            if not hot.any():
                continue
            overloaded.append(membership.labels[row])
            member_idx, multipliers = membership.members(row)
            cols = np.flatnonzero(hot)
            shortfall = _attribute_overload(
                overload[row, cols],
                loads[np.ix_(member_idx, cols)],
                reservations[member_idx][:, np.newaxis],
                multipliers[:, np.newaxis],
            )
            # Bottleneck-max semantics: a slice crossing several saturated
            # resources loses the max of the per-resource shortfalls.
            target = unserved[np.ix_(member_idx, cols)]
            unserved[np.ix_(member_idx, cols)] = np.maximum(target, shortfall)

        return ResourceLoadResult(
            unserved_mbps={key: unserved[k] for k, key in enumerate(keys)},
            overloaded_resources=tuple(sorted(overloaded)),
        )

    # ------------------------------------------------------------------ #
    # Resource membership tables
    # ------------------------------------------------------------------ #
    def _reservations(self, keys) -> np.ndarray:
        """Per-key reservation in Mb/s (0 for keys without an allocation)."""
        reservations = np.zeros(len(keys))
        for k, (name, bs) in enumerate(keys):
            allocation = self.allocations.get(name)
            if allocation is not None:
                reservations[k] = allocation.reservations_mbps.get(bs, 0.0)
        return reservations

    def _membership(self, keys) -> _ResourceMembership:
        """Compile the sparse resource-membership tables for one epoch."""
        key_index = {key: k for k, key in enumerate(keys)}
        resources: list[tuple[str, float, list[tuple[int, float, float]]]] = []
        for group in (
            self._radio_members(keys),
            self._link_members(keys),
            self._compute_members(keys),
        ):
            for resource, capacity, members in group:
                resources.append(
                    (
                        resource,
                        capacity,
                        [
                            (key_index[key], multiplier, constant)
                            for key, multiplier, constant in members
                        ],
                    )
                )

        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        base = np.zeros(len(resources))
        capacity = np.zeros(len(resources))
        labels: list[str] = []
        for row, (resource, cap, members) in enumerate(resources):
            labels.append(resource)
            capacity[row] = cap
            base[row] = sum(constant for (_k, _mult, constant) in members)
            for k, multiplier, _constant in members:
                rows.append(row)
                cols.append(k)
                vals.append(multiplier)
        # coo -> csr keeps each row's entries in insertion order because the
        # member key indices are strictly increasing within a resource (the
        # builders iterate ``keys`` in order); the CSR row slices therefore
        # reproduce the scalar implementation's member iteration order.
        matrix = sparse.csr_matrix(
            (
                np.asarray(vals, dtype=float),
                (np.asarray(rows, dtype=int), np.asarray(cols, dtype=int)),
            ),
            shape=(len(resources), len(keys)),
        )
        return _ResourceMembership(
            matrix=matrix,
            base=base,
            capacity=capacity,
            labels=tuple(labels),
        )

    def _radio_members(self, keys):
        """Radio domain: per BS, every slice served there loads it 1:1 (Mb/s)."""
        members: dict[str, list] = {}
        for name, bs in keys:
            allocation = self.allocations.get(name)
            if allocation is None or bs not in allocation.paths:
                continue
            members.setdefault(bs, []).append(((name, bs), 1.0, 0.0))
        capacities = {
            bs.name: bs.capacity_mbps for bs in self.topology.base_stations
        }
        return [
            (f"radio:{bs}", capacities[bs], member_list)
            for bs, member_list in members.items()
        ]

    def _link_members(self, keys):
        members: dict[tuple[str, str], list] = {}
        for name, bs in keys:
            allocation = self.allocations.get(name)
            if allocation is None or bs not in allocation.paths:
                continue
            for link in allocation.paths[bs].links:
                members.setdefault(link.key, []).append(((name, bs), link.overhead, 0.0))
        return [
            (
                f"transport:{key[0]}--{key[1]}",
                self._capacities.transport_mbps[key],
                member_list,
            )
            for key, member_list in members.items()
        ]

    def _compute_members(self, keys):
        members: dict[str, list] = {}
        for name, bs in keys:
            allocation = self.allocations.get(name)
            if allocation is None or bs not in allocation.paths:
                continue
            request = allocation.request
            members.setdefault(allocation.compute_unit, []).append(
                ((name, bs), request.compute_cpus_per_mbps, request.compute_baseline_cpus)
            )
        return [
            (f"compute:{cu}", self._capacities.compute_cpus[cu], member_list)
            for cu, member_list in members.items()
        ]


def _attribute_overload(
    overload: np.ndarray,
    loads: np.ndarray,
    reservations: np.ndarray,
    multipliers: np.ndarray,
) -> np.ndarray:
    """Split one resource's overload among the slices exceeding their reservation.

    Vectorized over the sample axis: ``overload`` has shape ``(num_hot,)`` and
    ``loads`` ``(num_members, num_hot)``; returns the per-member shortfall in
    the slice's own traffic units (Mb/s of its conformant demand), clipped to
    its demand.  Slices at or below their reservation are protected; if the
    protected traffic alone exceeds capacity (only possible under the big-M
    deficit relaxation), the remainder is shared proportionally to demand.

    Member-axis sums accumulate sequentially so the arithmetic matches the
    scalar formulation operation for operation.
    """
    multipliers_safe = np.maximum(multipliers, _EPSILON)

    # Overload measured in resource units; convert slice excess into resource
    # units via its multiplier.
    excess_units = np.maximum(0.0, loads - reservations) * multipliers_safe
    total_excess = _sequential_sum(excess_units)
    shortfall = np.zeros_like(loads)

    proportional = total_excess > _EPSILON
    absorbed = np.minimum(overload, total_excess)
    with np.errstate(divide="ignore", invalid="ignore"):
        share = absorbed * (excess_units / total_excess)
    np.copyto(shortfall, share / multipliers_safe, where=proportional)
    remaining = np.where(proportional, overload - absorbed, overload)

    spill = remaining > _EPSILON
    if spill.any():
        demand_units = loads * multipliers_safe
        total_demand = _sequential_sum(demand_units)
        spill &= total_demand > _EPSILON
        with np.errstate(divide="ignore", invalid="ignore"):
            extra = remaining * (demand_units / total_demand)
        shortfall = np.where(spill, shortfall + extra / multipliers_safe, shortfall)

    # A slice can never lose more traffic than it offered, and a non-positive
    # shortfall leaves the sample untouched.
    return np.maximum(np.minimum(shortfall, loads), 0.0)


def _sequential_sum(matrix: np.ndarray) -> np.ndarray:
    """Sum over the member axis in order, matching ``sum()`` of scalars.

    ``np.sum`` may use pairwise accumulation, which changes the floating-point
    rounding relative to the scalar reference; an explicit left-to-right fold
    keeps the two implementations bit-for-bit identical.
    """
    total = np.zeros(matrix.shape[1])
    for row in matrix:
        total += row
    return total
