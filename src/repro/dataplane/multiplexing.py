"""Work-conserving statistical multiplexing of admitted slices.

Overbooking is profitable because reserved-but-unused capacity is not wasted:
the data plane is work-conserving, so a slice whose instantaneous load
exceeds its reservation is still served as long as the *aggregate* load on
every resource it traverses fits the physical capacity.  Only when a
resource saturates does the rate-control middlebox clamp the overbooked
slices back towards their reservations -- and only those slices: traffic
within a slice's reservation is always protected (that is the isolation
guarantee the reservation encodes).

This module computes, for the monitoring samples of one epoch, how much of
each slice's SLA-conformant traffic could not be served.  That quantity
drives both the SLA-violation statistics ("% of samples affected", "share of
traffic dropped") and the penalty charged to the operator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.solution import TenantAllocation
from repro.topology.network import NetworkTopology

_EPSILON = 1e-12


@dataclass(frozen=True)
class ResourceLoadResult:
    """Unserved traffic per (slice, base station) for one epoch of samples."""

    unserved_mbps: dict[tuple[str, str], np.ndarray]
    overloaded_resources: tuple[str, ...]

    def total_unserved(self) -> float:
        return float(sum(arr.sum() for arr in self.unserved_mbps.values()))


class SliceMultiplexer:
    """Shares physical capacity among admitted slices, protecting reservations."""

    def __init__(
        self,
        topology: NetworkTopology,
        allocations: dict[str, TenantAllocation],
    ):
        self.topology = topology
        self.allocations = {
            name: alloc for name, alloc in allocations.items() if alloc.accepted
        }
        self._capacities = topology.capacities()

    # ------------------------------------------------------------------ #
    def unserved_traffic(
        self, offered_samples_mbps: dict[tuple[str, str], np.ndarray]
    ) -> ResourceLoadResult:
        """Compute per-(slice, BS) unserved traffic for one epoch.

        ``offered_samples_mbps`` holds the SLA-conformant offered load samples
        per (slice name, base station).  The returned arrays have the same
        shape; entry ``i`` is how much of sample ``i`` could not be served
        because some resource along the slice's path was saturated.
        """
        keys = list(offered_samples_mbps.keys())
        if not keys:
            return ResourceLoadResult(unserved_mbps={}, overloaded_resources=())
        num_samples = len(next(iter(offered_samples_mbps.values())))
        unserved = {key: np.zeros(num_samples) for key in keys}
        overloaded: set[str] = set()

        # Pre-compute which (slice, bs) keys load each resource and with what
        # multiplier (1 for radio/bitrate domains, the overhead for links,
        # CPUs-per-Mb/s for compute).
        radio_members = self._radio_members(keys)
        link_members = self._link_members(keys)
        compute_members = self._compute_members(keys)

        for sample_index in range(num_samples):
            loads = {
                key: float(np.asarray(offered_samples_mbps[key])[sample_index])
                for key in keys
            }
            for resource, capacity, members in self._iter_resources(
                radio_members, link_members, compute_members
            ):
                base_load = sum(
                    constant for (_key, _mult, constant) in members
                )
                demand = base_load + sum(
                    loads[key] * multiplier for (key, multiplier, _constant) in members
                )
                overload = demand - capacity
                if overload <= _EPSILON:
                    continue
                overloaded.add(resource)
                shortfall = self._attribute_overload(
                    overload, members, loads, sample_index
                )
                for key, unserved_mbps in shortfall.items():
                    unserved[key][sample_index] = max(
                        unserved[key][sample_index], unserved_mbps
                    )

        return ResourceLoadResult(
            unserved_mbps=unserved, overloaded_resources=tuple(sorted(overloaded))
        )

    # ------------------------------------------------------------------ #
    # Resource membership tables
    # ------------------------------------------------------------------ #
    def _radio_members(self, keys):
        """Radio domain: per BS, every slice served there loads it 1:1 (Mb/s)."""
        members: dict[str, list] = {}
        for name, bs in keys:
            allocation = self.allocations.get(name)
            if allocation is None or bs not in allocation.paths:
                continue
            members.setdefault(bs, []).append(((name, bs), 1.0, 0.0))
        capacities = {
            bs.name: bs.capacity_mbps for bs in self.topology.base_stations
        }
        return [
            (f"radio:{bs}", capacities[bs], member_list)
            for bs, member_list in members.items()
        ]

    def _link_members(self, keys):
        members: dict[tuple[str, str], list] = {}
        for name, bs in keys:
            allocation = self.allocations.get(name)
            if allocation is None or bs not in allocation.paths:
                continue
            for link in allocation.paths[bs].links:
                members.setdefault(link.key, []).append(((name, bs), link.overhead, 0.0))
        return [
            (
                f"transport:{key[0]}--{key[1]}",
                self._capacities.transport_mbps[key],
                member_list,
            )
            for key, member_list in members.items()
        ]

    def _compute_members(self, keys):
        members: dict[str, list] = {}
        for name, bs in keys:
            allocation = self.allocations.get(name)
            if allocation is None or bs not in allocation.paths:
                continue
            request = allocation.request
            members.setdefault(allocation.compute_unit, []).append(
                ((name, bs), request.compute_cpus_per_mbps, request.compute_baseline_cpus)
            )
        return [
            (f"compute:{cu}", self._capacities.compute_cpus[cu], member_list)
            for cu, member_list in members.items()
        ]

    @staticmethod
    def _iter_resources(*groups):
        for group in groups:
            yield from group

    # ------------------------------------------------------------------ #
    def _attribute_overload(self, overload, members, loads, sample_index):
        """Split a resource overload among the slices exceeding their reservation.

        The shortfall is expressed in the slice's own traffic units (Mb/s of
        its conformant demand).  Slices at or below their reservation are
        protected; if the protected traffic alone exceeds capacity (only
        possible under the big-M deficit relaxation), the remainder is shared
        proportionally to demand.
        """
        excess: dict[tuple[str, str], float] = {}
        multipliers: dict[tuple[str, str], float] = {}
        demands: dict[tuple[str, str], float] = {}
        for key, multiplier, _constant in members:
            name, bs = key
            allocation = self.allocations[name]
            reservation = allocation.reservations_mbps.get(bs, 0.0)
            load = loads[key]
            demands[key] = load
            multipliers[key] = multiplier
            excess[key] = max(0.0, load - reservation)

        shortfall: dict[tuple[str, str], float] = {}
        # Overload measured in resource units; convert slice excess into
        # resource units via its multiplier.
        excess_resource_units = {
            key: excess[key] * max(multipliers[key], _EPSILON) for key in excess
        }
        total_excess = sum(excess_resource_units.values())
        remaining = overload
        if total_excess > _EPSILON:
            absorbed = min(remaining, total_excess)
            for key, excess_units in excess_resource_units.items():
                share = absorbed * (excess_units / total_excess)
                shortfall[key] = share / max(multipliers[key], _EPSILON)
            remaining -= absorbed
        if remaining > _EPSILON:
            demand_units = {
                key: demands[key] * max(multipliers[key], _EPSILON) for key in demands
            }
            total_demand = sum(demand_units.values())
            if total_demand > _EPSILON:
                for key, units in demand_units.items():
                    extra = remaining * (units / total_demand)
                    shortfall[key] = shortfall.get(key, 0.0) + extra / max(
                        multipliers[key], _EPSILON
                    )
        # A slice can never lose more traffic than it offered.
        return {
            key: min(value, demands[key]) for key, value in shortfall.items() if value > 0
        }
