"""The TCP-proxy rate-control middlebox of Section 2.1.3.

The middlebox splits every connection (Split TCP) so that the tenant's
transmitter never observes the operator's traffic-control actions directly.
Three regimes exist for the aggregate slice load:

* load <= reservation: packets are forwarded transparently;
* reservation < load <= SLA: packets are buffered and released at the
  reserved rate (an *SLA violation* caused by overbooking -- the tenant paid
  for the SLA rate but gets the reserved rate);
* load > SLA: the excess beyond the SLA is dropped (the tenant is simply
  exceeding its contract; no penalty is owed by the operator).

The simulation models rates per monitoring sample rather than per packet;
buffered traffic that cannot drain within the sample is counted as delayed
(and, beyond a configurable buffer depth, dropped).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import ensure_non_negative, ensure_positive


@dataclass(frozen=True)
class MiddleboxReport:
    """Outcome of pushing one monitoring sample through the middlebox."""

    offered_mbps: float
    forwarded_mbps: float
    buffered_mbps: float
    dropped_beyond_sla_mbps: float
    dropped_overflow_mbps: float

    @property
    def delivered_mbps(self) -> float:
        """Traffic delivered to users at line rate during the sample."""
        return self.forwarded_mbps

    @property
    def sla_violation_mbps(self) -> float:
        """Traffic within the SLA that could not be served at the SLA rate."""
        return self.buffered_mbps + self.dropped_overflow_mbps

    @property
    def violated(self) -> bool:
        return self.sla_violation_mbps > 1e-9

    @property
    def violation_fraction(self) -> float:
        """Share of the offered (SLA-conformant) traffic that was not forwarded."""
        conformant = self.offered_mbps - self.dropped_beyond_sla_mbps
        if conformant <= 0:
            return 0.0
        return min(1.0, self.sla_violation_mbps / conformant)


@dataclass
class RateControlMiddlebox:
    """Per-slice middlebox enforcing the reserved rate transparently.

    Parameters
    ----------
    sla_mbps:
        The slice's contracted bitrate Lambda.
    reservation_mbps:
        The bitrate currently reserved by the orchestrator (z <= Lambda under
        overbooking).  Updated every decision epoch via :meth:`update_reservation`.
    buffer_capacity_mb:
        How much SLA-conformant excess traffic can be absorbed (per sample)
        before the middlebox starts dropping; models the proxy's buffer.
    """

    slice_name: str
    sla_mbps: float
    reservation_mbps: float
    buffer_capacity_mb: float = 50.0
    _buffer_mb: float = 0.0

    def __post_init__(self) -> None:
        ensure_positive(self.sla_mbps, "sla_mbps")
        ensure_non_negative(self.reservation_mbps, "reservation_mbps")
        ensure_non_negative(self.buffer_capacity_mb, "buffer_capacity_mb")

    @property
    def buffer_occupancy_mb(self) -> float:
        return self._buffer_mb

    def update_reservation(self, reservation_mbps: float) -> None:
        """Apply a new reservation decided by the orchestrator."""
        self.reservation_mbps = ensure_non_negative(reservation_mbps, "reservation_mbps")

    def process_sample(self, offered_mbps: float, sample_seconds: float = 300.0) -> MiddleboxReport:
        """Shape one monitoring sample of offered load.

        ``sample_seconds`` is the monitoring period (the paper samples every
        5 minutes); it converts between rates (Mb/s) and buffered volume (Mb).
        """
        ensure_non_negative(offered_mbps, "offered_mbps")
        ensure_positive(sample_seconds, "sample_seconds")

        dropped_beyond_sla = max(0.0, offered_mbps - self.sla_mbps)
        conformant = offered_mbps - dropped_beyond_sla

        # The reservation drains both the fresh conformant traffic and any
        # backlog from previous samples.
        capacity = self.reservation_mbps
        backlog_rate = self._buffer_mb / sample_seconds
        total_to_serve = conformant + backlog_rate
        forwarded = min(conformant, capacity)
        leftover_capacity = max(0.0, capacity - forwarded)
        drained_backlog = min(backlog_rate, leftover_capacity)
        excess = max(0.0, conformant - forwarded)

        # Buffer the excess, up to the buffer capacity; beyond that, drop.
        new_backlog_mb = (backlog_rate - drained_backlog + excess) * sample_seconds
        overflow_mb = max(0.0, new_backlog_mb - self.buffer_capacity_mb)
        self._buffer_mb = new_backlog_mb - overflow_mb
        dropped_overflow = overflow_mb / sample_seconds

        buffered = max(0.0, excess - dropped_overflow)
        del total_to_serve  # kept for readability of the derivation above
        return MiddleboxReport(
            offered_mbps=offered_mbps,
            forwarded_mbps=forwarded,
            buffered_mbps=buffered,
            dropped_beyond_sla_mbps=dropped_beyond_sla,
            dropped_overflow_mbps=dropped_overflow,
        )

    def reset(self) -> None:
        """Flush the buffer (used when a slice is torn down or re-deployed)."""
        self._buffer_mb = 0.0
