"""Per-slice demand models.

Every model produces, for each decision epoch ``t``, the sequence of
monitoring samples ``lambda^(theta)`` collected by the monitoring block
(Section 2.2.2).  The orchestrator only consumes the *peak* of those samples
(``lambda^(t) = max_theta lambda^(theta)``), which is what the admission
control compares against the reservation ``z`` when accounting for SLA
violations.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import make_rng
from repro.utils.validation import ensure_non_negative, ensure_positive


@dataclass(frozen=True)
class EpochDemand:
    """Demand observed for one slice during one decision epoch."""

    epoch: int
    samples_mbps: tuple[float, ...]

    @property
    def peak_mbps(self) -> float:
        """The per-epoch peak load lambda^(t) used by the AC-RR problem."""
        return max(self.samples_mbps) if self.samples_mbps else 0.0

    @property
    def mean_mbps(self) -> float:
        return float(np.mean(self.samples_mbps)) if self.samples_mbps else 0.0


class DemandModel(abc.ABC):
    """Interface of a slice demand generator.

    Implementations must be deterministic given their seed so that the whole
    evaluation harness is reproducible.
    """

    def __init__(self, sla_mbps: float, seed: int | None = None):
        self.sla_mbps = ensure_positive(sla_mbps, "sla_mbps")
        self._rng = make_rng(seed)

    @abc.abstractmethod
    def mean_mbps(self, epoch: int) -> float:
        """Expected load during ``epoch`` (before clipping to the SLA)."""

    @abc.abstractmethod
    def std_mbps(self, epoch: int) -> float:
        """Standard deviation of the load during ``epoch``."""

    def sample_epoch(self, epoch: int, num_samples: int) -> EpochDemand:
        """Draw the monitoring samples observed during one epoch.

        The tenant's traffic is shaped by the middlebox so it never exceeds
        the SLA bitrate; samples are clipped to ``[0, sla_mbps]`` accordingly.
        """
        if num_samples <= 0:
            raise ValueError(f"num_samples must be positive, got {num_samples}")
        mean = self.mean_mbps(epoch)
        std = self.std_mbps(epoch)
        if std == 0.0:
            raw = np.full(num_samples, mean)
        else:
            raw = self._rng.normal(loc=mean, scale=std, size=num_samples)
        clipped = np.clip(raw, 0.0, self.sla_mbps)
        return EpochDemand(epoch=epoch, samples_mbps=tuple(float(v) for v in clipped))

    def peak_series(self, num_epochs: int, samples_per_epoch: int) -> np.ndarray:
        """Convenience helper: per-epoch peak loads for ``num_epochs`` epochs."""
        return np.array(
            [
                self.sample_epoch(epoch, samples_per_epoch).peak_mbps
                for epoch in range(num_epochs)
            ]
        )


class GaussianDemand(DemandModel):
    """Stationary Gaussian demand: the paper's simulation workload.

    Section 4.3.2: "the actual traffic demand follows a Gaussian distribution
    with variable mean and standard deviation sigma", with the mean set to
    ``alpha * Lambda`` in the homogeneous/heterogeneous scenarios.
    """

    def __init__(
        self,
        mean_mbps: float,
        std_mbps: float,
        sla_mbps: float,
        seed: int | None = None,
    ):
        super().__init__(sla_mbps=sla_mbps, seed=seed)
        self._mean = ensure_non_negative(mean_mbps, "mean_mbps")
        self._std = ensure_non_negative(std_mbps, "std_mbps")

    def mean_mbps(self, epoch: int) -> float:
        return self._mean

    def std_mbps(self, epoch: int) -> float:
        return self._std


class DeterministicDemand(GaussianDemand):
    """Constant demand with no variability (the mMTC template, sigma = 0)."""

    def __init__(self, mean_mbps: float, sla_mbps: float, seed: int | None = None):
        super().__init__(mean_mbps=mean_mbps, std_mbps=0.0, sla_mbps=sla_mbps, seed=seed)


class OnOffDemand(DemandModel):
    """Bursty on/off demand used in robustness and ablation studies.

    During "on" epochs the load is Gaussian around ``on_mean_mbps``; during
    "off" epochs it drops to ``off_mean_mbps``.  The on/off state follows a
    two-state Markov chain, which produces the kind of abrupt load changes
    that stress the forecasting block.
    """

    def __init__(
        self,
        on_mean_mbps: float,
        off_mean_mbps: float,
        std_mbps: float,
        sla_mbps: float,
        p_on_to_off: float = 0.2,
        p_off_to_on: float = 0.2,
        seed: int | None = None,
    ):
        super().__init__(sla_mbps=sla_mbps, seed=seed)
        self._on_mean = ensure_non_negative(on_mean_mbps, "on_mean_mbps")
        self._off_mean = ensure_non_negative(off_mean_mbps, "off_mean_mbps")
        self._std = ensure_non_negative(std_mbps, "std_mbps")
        if not 0.0 <= p_on_to_off <= 1.0 or not 0.0 <= p_off_to_on <= 1.0:
            raise ValueError("transition probabilities must be in [0, 1]")
        self._p_on_to_off = p_on_to_off
        self._p_off_to_on = p_off_to_on
        self._state_cache: dict[int, bool] = {}

    def _state(self, epoch: int) -> bool:
        """True when the source is 'on' during ``epoch`` (memoised chain)."""
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        if epoch in self._state_cache:
            return self._state_cache[epoch]
        # Build the chain forward from the last known epoch for determinism.
        start = max(self._state_cache) + 1 if self._state_cache else 0
        state = self._state_cache.get(start - 1, True)
        for e in range(start, epoch + 1):
            flip = self._rng.random()
            if state:
                state = flip >= self._p_on_to_off
            else:
                state = flip < self._p_off_to_on
            self._state_cache[e] = state
        return self._state_cache[epoch]

    def mean_mbps(self, epoch: int) -> float:
        return self._on_mean if self._state(epoch) else self._off_mean

    def std_mbps(self, epoch: int) -> float:
        return self._std
