"""Seasonal (diurnal) demand traces.

Mobile traffic exhibits strong daily periodicity (the paper cites this as the
reason for adopting triple exponential smoothing / Holt-Winters forecasting
rather than double exponential smoothing).  This module provides a diurnal
load profile and a demand model that modulates a Gaussian demand with it, so
the forecasting experiments have genuine seasonality to exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traffic.demand import DemandModel
from repro.utils.validation import ensure_in_range, ensure_non_negative


@dataclass(frozen=True)
class DiurnalProfile:
    """A 24-value multiplicative daily profile (one multiplier per hour).

    Multipliers are relative to the daily mean load; they are normalised at
    construction so their average is exactly 1, which keeps the configured
    mean load meaningful.
    """

    hourly_multipliers: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.hourly_multipliers) != 24:
            raise ValueError("a diurnal profile needs exactly 24 hourly multipliers")
        if any(m < 0 for m in self.hourly_multipliers):
            raise ValueError("multipliers must be non-negative")
        total = sum(self.hourly_multipliers)
        if total == 0:
            raise ValueError("profile cannot be identically zero")

    @classmethod
    def normalised(cls, multipliers: tuple[float, ...] | list[float]) -> "DiurnalProfile":
        arr = np.asarray(multipliers, dtype=float)
        if arr.size != 24:
            raise ValueError("a diurnal profile needs exactly 24 hourly multipliers")
        return cls(hourly_multipliers=tuple(arr / arr.mean()))

    def multiplier(self, hour_of_day: float) -> float:
        """Interpolated multiplier at a (possibly fractional) hour of day."""
        hour = float(hour_of_day) % 24.0
        low = int(np.floor(hour)) % 24
        high = (low + 1) % 24
        frac = hour - np.floor(hour)
        return float(
            (1.0 - frac) * self.hourly_multipliers[low]
            + frac * self.hourly_multipliers[high]
        )

    def as_array(self) -> np.ndarray:
        return np.asarray(self.hourly_multipliers)


#: A typical urban mobile-traffic daily shape: quiet at night, morning ramp,
#: midday plateau and an evening peak.  Normalised to a mean of 1.
DEFAULT_DIURNAL_PROFILE = DiurnalProfile.normalised(
    [
        0.30, 0.22, 0.18, 0.15, 0.15, 0.20,  # 00h - 05h
        0.40, 0.70, 1.00, 1.15, 1.20, 1.25,  # 06h - 11h
        1.30, 1.25, 1.20, 1.20, 1.25, 1.35,  # 12h - 17h
        1.55, 1.70, 1.75, 1.60, 1.10, 0.60,  # 18h - 23h
    ]
)


class SeasonalDemand(DemandModel):
    """Gaussian demand modulated by a diurnal profile.

    ``epochs_per_day`` defines how decision epochs map onto wall-clock hours
    (the paper's testbed uses 1-hour epochs, i.e. 24 epochs per day).
    """

    def __init__(
        self,
        base_mean_mbps: float,
        relative_std: float,
        sla_mbps: float,
        profile: DiurnalProfile = DEFAULT_DIURNAL_PROFILE,
        epochs_per_day: int = 24,
        start_hour: float = 0.0,
        seed: int | None = None,
    ):
        super().__init__(sla_mbps=sla_mbps, seed=seed)
        self._base_mean = ensure_non_negative(base_mean_mbps, "base_mean_mbps")
        self._relative_std = ensure_in_range(relative_std, 0.0, 1.0, "relative_std")
        if epochs_per_day <= 0:
            raise ValueError("epochs_per_day must be positive")
        self._profile = profile
        self._epochs_per_day = epochs_per_day
        self._start_hour = float(start_hour)

    def hour_of_epoch(self, epoch: int) -> float:
        """Wall-clock hour corresponding to the start of ``epoch``."""
        hours_per_epoch = 24.0 / self._epochs_per_day
        return (self._start_hour + epoch * hours_per_epoch) % 24.0

    def mean_mbps(self, epoch: int) -> float:
        multiplier = self._profile.multiplier(self.hour_of_epoch(epoch))
        return self._base_mean * multiplier

    def std_mbps(self, epoch: int) -> float:
        return self._relative_std * self.mean_mbps(epoch)
