"""Demand factories tied to the slice templates of Table 1.

The evaluation parameterises each slice's demand relative to its SLA: the
mean load is ``alpha * Lambda`` and the standard deviation is expressed as a
fraction of that mean (0, 1/4 or 1/2 in Fig. 5).  The mMTC template is the
exception: its load is deterministic.  This module builds the right demand
model for a given template so that scenario code stays declarative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.slices import SliceRequest, SliceTemplate
from repro.traffic.demand import (
    DemandModel,
    DeterministicDemand,
    GaussianDemand,
    OnOffDemand,
)
from repro.traffic.seasonal import DEFAULT_DIURNAL_PROFILE, DiurnalProfile, SeasonalDemand
from repro.utils.rng import derive_seed
from repro.utils.validation import ensure_in_range, ensure_probability


@dataclass(frozen=True)
class DemandSpec:
    """Declarative description of a slice's traffic behaviour.

    Attributes
    ----------
    mean_fraction:
        The paper's ``alpha``: mean load as a fraction of the SLA bitrate.
    relative_std:
        Standard deviation as a fraction of the mean load (``sigma = rel *
        lambda_bar``); ignored for deterministic templates.
    seasonal:
        When True the mean follows the diurnal profile (used by the testbed
        experiment and the forecasting ablation); otherwise it is stationary.
    bursty:
        When True the mean regime-switches through a two-state Markov chain
        (:class:`repro.traffic.demand.OnOffDemand`): "on" epochs load at
        ``mean_fraction * Lambda``, "off" epochs drop to ``off_mean_fraction
        * Lambda``.  Used by the generated scenario families to stress the
        forecasting block; mutually exclusive with ``seasonal``.
    off_mean_fraction:
        Mean load (as a fraction of the SLA) during "off" epochs of a bursty
        spec; must not exceed ``mean_fraction``.
    p_on_to_off / p_off_to_on:
        Per-epoch transition probabilities of the bursty regime chain.
    """

    mean_fraction: float = 0.5
    relative_std: float = 0.25
    seasonal: bool = False
    profile: DiurnalProfile = DEFAULT_DIURNAL_PROFILE
    epochs_per_day: int = 24
    bursty: bool = False
    off_mean_fraction: float = 0.05
    p_on_to_off: float = 0.2
    p_off_to_on: float = 0.2

    def __post_init__(self) -> None:
        ensure_in_range(self.mean_fraction, 0.0, 1.0, "mean_fraction")
        ensure_in_range(self.relative_std, 0.0, 1.0, "relative_std")
        ensure_in_range(self.off_mean_fraction, 0.0, 1.0, "off_mean_fraction")
        if self.bursty:
            # Only a bursty spec interprets off_mean_fraction; the "off" regime
            # must not carry more load than the "on" regime.
            ensure_in_range(
                self.off_mean_fraction, 0.0, self.mean_fraction, "off_mean_fraction"
            )
        ensure_probability(self.p_on_to_off, "p_on_to_off")
        ensure_probability(self.p_off_to_on, "p_off_to_on")
        if self.seasonal and self.bursty:
            raise ValueError(
                "a demand spec cannot be both seasonal and bursty; pick one regime"
            )


def demand_for_template(
    template: SliceTemplate,
    spec: DemandSpec,
    seed: int | None = None,
    label: str | int = 0,
) -> DemandModel:
    """Build the demand model of one slice instance.

    ``label`` differentiates the random streams of otherwise identical slices
    (each tenant's demand is independent in the paper's scenarios).
    """
    slice_seed = derive_seed(seed, template.name, label)
    mean = spec.mean_fraction * template.sla_mbps
    deterministic = template.default_relative_std == 0.0
    relative_std = 0.0 if deterministic else spec.relative_std
    if deterministic:
        return DeterministicDemand(
            mean_mbps=mean, sla_mbps=template.sla_mbps, seed=slice_seed
        )
    if spec.bursty:
        return OnOffDemand(
            on_mean_mbps=mean,
            off_mean_mbps=spec.off_mean_fraction * template.sla_mbps,
            std_mbps=relative_std * mean,
            sla_mbps=template.sla_mbps,
            p_on_to_off=spec.p_on_to_off,
            p_off_to_on=spec.p_off_to_on,
            seed=slice_seed,
        )
    if spec.seasonal:
        return SeasonalDemand(
            base_mean_mbps=mean,
            relative_std=relative_std,
            sla_mbps=template.sla_mbps,
            profile=spec.profile,
            epochs_per_day=spec.epochs_per_day,
            seed=slice_seed,
        )
    return GaussianDemand(
        mean_mbps=mean,
        std_mbps=relative_std * mean,
        sla_mbps=template.sla_mbps,
        seed=slice_seed,
    )


def demand_for_request(
    request: SliceRequest, spec: DemandSpec, seed: int | None = None
) -> DemandModel:
    """Demand model for a concrete slice request (seeded by its name)."""
    return demand_for_template(request.template, spec, seed=seed, label=request.name)
