"""Synthetic slice traffic demand.

The paper drives its evaluation with per-slice traffic whose monitoring-epoch
peaks follow a Gaussian distribution with configurable mean (``alpha * Lambda``)
and standard deviation (``sigma``), plus diurnal patterns in the testbed
experiment.  This package generates those traces reproducibly.
"""

from repro.traffic.demand import (
    DemandModel,
    GaussianDemand,
    DeterministicDemand,
    OnOffDemand,
    EpochDemand,
)
from repro.traffic.seasonal import DiurnalProfile, SeasonalDemand, DEFAULT_DIURNAL_PROFILE
from repro.traffic.patterns import demand_for_template, DemandSpec

__all__ = [
    "DemandModel",
    "GaussianDemand",
    "DeterministicDemand",
    "OnOffDemand",
    "EpochDemand",
    "DiurnalProfile",
    "SeasonalDemand",
    "DEFAULT_DIURNAL_PROFILE",
    "demand_for_template",
    "DemandSpec",
]
