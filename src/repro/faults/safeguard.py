"""Safeguarded solver chain and the broker health state machine.

The shape follows the safeguarded augmented-Lagrangian pattern (Kanzow &
Krueger, see PAPERS.md): an aggressive primary optimizer wrapped in
safeguards that guarantee a valid -- possibly conservative -- outcome even
when the primary path fails.  The tiers, strongest first:

``primary``
    The configured solver (Benders).  Transient failures are retried up to
    ``max_retries`` times; a success here is bit-identical to an
    unsafeguarded run.
``warm_replay``
    Replay the last *certified* decision (produced by a successful primary
    solve) -- only when the problem's structure signature, topology
    signature and request set are unchanged, so the replayed reservations
    are still capacity-feasible.  May be stale w.r.t. this epoch's
    forecasts; never overbooks physical resources beyond what was
    certified.
``no_overbooking``
    Solve the no-overbooking variant exactly (full-SLA reservations).
    Bit-identical to :class:`~repro.core.baseline.NoOverbookingSolver` on
    the same instance -- the fault-matrix sweep pins this.  Used only if it
    keeps every committed slice admitted.
``reject_all``
    Safe mode: committed slices stay admitted (lifecycle is never corrupted)
    but with their data-plane reservations suspended; every new request is
    rejected.  Trivially feasible, always available.

The :class:`HealthMonitor` tracks the broker-visible health state:
HEALTHY -> DEGRADED on any non-primary tier, degraded commit or failed
epoch; DEGRADED -> HEALTHY after ``recovery_epochs`` consecutive clean
primary epochs; reject-all puts the broker in SAFE_MODE, where the chain
skips the primary except for a recovery probe every ``probe_interval``-th
solve (a successful probe re-enters DEGRADED and starts the clean streak).
"""

from __future__ import annotations

import enum
from dataclasses import replace

from repro.core.baseline import NoOverbookingSolver
from repro.core.problem import ACRRProblem, topology_signature
from repro.core.solution import (
    OrchestrationDecision,
    SolverStats,
    TenantAllocation,
)
from repro.faults.plan import SolverBudgetExceededError, TransientSolverError

TIER_PRIMARY = "primary"
TIER_WARM_REPLAY = "warm_replay"
TIER_NO_OVERBOOKING = "no_overbooking"
TIER_REJECT_ALL = "reject_all"

#: Fallback order, strongest tier first.
TIER_ORDER = (TIER_PRIMARY, TIER_WARM_REPLAY, TIER_NO_OVERBOOKING, TIER_REJECT_ALL)


class BrokerHealth(str, enum.Enum):
    HEALTHY = "healthy"
    DEGRADED = "degraded"
    SAFE_MODE = "safe_mode"


class HealthMonitor:
    """Tracks broker health across epochs (never rolled back with an epoch:
    a fault that forced a rollback still *happened* and must count)."""

    def __init__(self, recovery_epochs: int = 3, probe_interval: int = 4):
        if recovery_epochs < 1:
            raise ValueError("recovery_epochs must be at least 1")
        if probe_interval < 1:
            raise ValueError("probe_interval must be at least 1")
        self.recovery_epochs = recovery_epochs
        self.probe_interval = probe_interval
        self.state = BrokerHealth.HEALTHY
        #: Consecutive clean (primary-tier, undegraded) epochs so far.
        self.clean_streak = 0
        self._safe_solves = 0

    def should_probe(self) -> bool:
        """Whether the next solve may try the primary tier.

        Always true outside SAFE_MODE.  In SAFE_MODE, every
        ``probe_interval``-th solve is a recovery probe; the others go
        straight to reject-all.
        """
        if self.state is not BrokerHealth.SAFE_MODE:
            return True
        self._safe_solves += 1
        return self._safe_solves % self.probe_interval == 0

    def note_outcome(self, tier: str, degraded: bool) -> None:
        """Fold one committed epoch's solve outcome into the health state."""
        if tier == TIER_REJECT_ALL:
            if self.state is not BrokerHealth.SAFE_MODE:
                self._safe_solves = 0
            self.state = BrokerHealth.SAFE_MODE
            self.clean_streak = 0
        elif tier != TIER_PRIMARY or degraded:
            self.state = BrokerHealth.DEGRADED
            self.clean_streak = 0
        else:
            self.clean_streak += 1
            if self.clean_streak >= self.recovery_epochs:
                self.state = BrokerHealth.HEALTHY
            elif self.state is BrokerHealth.SAFE_MODE:
                # Successful recovery probe: leave safe mode, keep counting
                # clean epochs towards HEALTHY.
                self.state = BrokerHealth.DEGRADED

    def note_failed_epoch(self) -> None:
        """A rolled-back epoch: reset the streak, leave HEALTHY if there."""
        self.clean_streak = 0
        if self.state is BrokerHealth.HEALTHY:
            self.state = BrokerHealth.DEGRADED


class SafeguardedSolver:
    """Solver wrapper that always returns a valid admission decision.

    Drop-in for any ``solve(problem)`` solver.  On a clean primary solve the
    returned decision is the primary's, untouched -- a zero-fault run
    through the chain is byte-identical to an unsafeguarded run.  On
    failure the chain falls through the tiers documented in the module
    docstring, stamping the active tier, retry count and fallback reason
    into ``decision.stats``.
    """

    #: Exception types the retry tier treats as transient.
    TRANSIENT_TYPES = (TransientSolverError,)

    def __init__(
        self,
        primary,
        baseline: NoOverbookingSolver | None = None,
        max_retries: int = 2,
        health: HealthMonitor | None = None,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.primary = primary
        self.baseline = baseline or NoOverbookingSolver()
        self.max_retries = max_retries
        self.health = health or HealthMonitor()
        #: Last certified decision: (structure signature, topology
        #: signature, decision) of the most recent successful primary solve.
        self._certified: tuple[tuple, tuple, OrchestrationDecision] | None = None

    # ------------------------------------------------------------------ #
    def solve(self, problem: ACRRProblem) -> OrchestrationDecision:
        if not self.health.should_probe():
            decision = self._reject_all(
                problem, retries=0, reason="safe mode (awaiting recovery probe)"
            )
            self.health.note_outcome(TIER_REJECT_ALL, degraded=True)
            return decision

        retries = 0
        reason = ""
        while True:
            try:
                decision = self.primary.solve(problem)
            except self.TRANSIENT_TYPES as error:
                if retries < self.max_retries:
                    retries += 1
                    continue
                reason = f"transient failures exhausted {retries} retries: {error}"
                break
            except SolverBudgetExceededError as error:
                reason = str(error)
                break
            except (ValueError, RuntimeError) as error:
                reason = f"{type(error).__name__}: {error}"
                break
            self._certify(problem, decision)
            if retries:
                decision = self._with_stats(
                    decision, tier=TIER_PRIMARY, retries=retries, reason=""
                )
            self.health.note_outcome(TIER_PRIMARY, degraded=bool(retries))
            return decision

        replay = self._warm_replay(problem)
        if replay is not None:
            decision = OrchestrationDecision(
                allocations=replay.allocations,
                objective_value=replay.objective_value,
                stats=replace(
                    replay.stats,
                    runtime_s=0.0,
                    iterations=0,
                    cuts_optimality=0,
                    cuts_feasibility=0,
                    message="replayed last certified decision",
                    tier=TIER_WARM_REPLAY,
                    retries=retries,
                    fallback_reason=reason,
                ),
                deficits=replay.deficits,
            )
            self.health.note_outcome(TIER_WARM_REPLAY, degraded=True)
            return decision
        reason += "; no certified decision to replay"

        try:
            decision = self.baseline.solve(problem)
        except (ValueError, RuntimeError) as error:
            reason += f"; baseline failed: {type(error).__name__}: {error}"
        else:
            if self._keeps_committed(problem, decision):
                decision = self._with_stats(
                    decision, tier=TIER_NO_OVERBOOKING, retries=retries, reason=reason
                )
                self.health.note_outcome(TIER_NO_OVERBOOKING, degraded=True)
                return decision
            reason += "; baseline dropped a committed slice"

        decision = self._reject_all(problem, retries=retries, reason=reason)
        self.health.note_outcome(TIER_REJECT_ALL, degraded=True)
        return decision

    # ------------------------------------------------------------------ #
    # Cross-epoch state (duck-typed to the orchestrator's epoch checkpoint)
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        inner = getattr(self.primary, "snapshot_state", None)
        return {
            "primary": inner() if inner is not None else None,
            "certified": self._certified,
        }

    def restore_state(self, snapshot: dict | None) -> None:
        if snapshot is None:
            return
        restore = getattr(self.primary, "restore_state", None)
        if restore is not None:
            restore(snapshot["primary"])
        self._certified = snapshot["certified"]

    # ------------------------------------------------------------------ #
    def _certify(self, problem: ACRRProblem, decision: OrchestrationDecision) -> None:
        self._certified = (
            problem.structure_signature(),
            topology_signature(problem.topology),
            decision,
        )

    def _warm_replay(self, problem: ACRRProblem) -> OrchestrationDecision | None:
        """The last certified decision, if still provably capacity-feasible.

        The structure signature pins the request set and options; the
        topology signature pins every capacity.  With both unchanged, the
        certified reservations still fit the network -- only the forecasts
        may have moved, which affects optimality, never feasibility of a
        fixed reservation vector.
        """
        if self._certified is None:
            return None
        structure, topo, decision = self._certified
        if structure != problem.structure_signature():
            return None
        if topo != topology_signature(problem.topology):
            return None
        return decision

    def _keeps_committed(
        self, problem: ACRRProblem, decision: OrchestrationDecision
    ) -> bool:
        return all(
            decision.is_accepted(request.name)
            for request in problem.requests
            if request.committed
        )

    def _reject_all(
        self, problem: ACRRProblem, retries: int, reason: str
    ) -> OrchestrationDecision:
        """Tier 4: keep committed slices admitted (reservations suspended),
        reject everything else.  Never raises."""
        allocations: dict[str, TenantAllocation] = {}
        for request in problem.requests:
            if request.committed:
                allocations[request.name] = TenantAllocation(
                    request=request,
                    accepted=True,
                    compute_unit=request.metadata.get("preferred_compute_unit"),
                    paths={},
                    reservations_mbps={},
                )
            else:
                allocations[request.name] = TenantAllocation(
                    request=request, accepted=False, compute_unit=None
                )
        return OrchestrationDecision(
            allocations=allocations,
            objective_value=0.0,
            stats=SolverStats(
                solver="safeguard",
                optimal=False,
                message="reject-all safe mode",
                tier=TIER_REJECT_ALL,
                retries=retries,
                fallback_reason=reason,
            ),
        )

    @staticmethod
    def _with_stats(
        decision: OrchestrationDecision, tier: str, retries: int, reason: str
    ) -> OrchestrationDecision:
        return OrchestrationDecision(
            allocations=decision.allocations,
            objective_value=decision.objective_value,
            stats=replace(
                decision.stats, tier=tier, retries=retries, fallback_reason=reason
            ),
            deficits=decision.deficits,
        )
