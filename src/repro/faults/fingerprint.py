"""Byte-level fingerprint of the orchestrator's mutable control-plane state.

``control_plane_fingerprint`` digests everything the epoch checkpoint covers
-- registry records and archive, the three controllers' enforced
reservations, the intake queue, and the solver layer's cross-epoch
warm-start state -- into one SHA-256 hex string.  The crash-consistency
tests assert that a rolled-back epoch restores the *same* fingerprint as
before the epoch ran, and that a clean recovery epoch after a fault reaches
the same fingerprint as a never-faulted twin.

Deliberately excluded: monitoring history and forecast overrides (run_epoch
never mutates them), the topology (injected link damage persists across a
rollback -- the network really is degraded), and the health monitor (a
fault that forced a rollback still happened and must count).
"""

from __future__ import annotations

import hashlib
import json
import re

#: CPython reprs embed object addresses (``<PathSet object at 0x7f...>``);
#: the decision-reuse signature holds such objects.  Masking the address
#: keeps the digest stable across process runs and equal between twin
#: brokers in the same state -- the objects' *content* is already covered by
#: the other payload sections (capacities, requests, decisions).
_ADDRESS = re.compile(r"0x[0-9a-fA-F]+")


def _stable_repr(obj) -> str:
    return _ADDRESS.sub("0x", repr(obj))


def _digest_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _request_payload(request) -> list:
    return [
        request.name,
        request.template.name,
        request.duration_epochs,
        request.penalty_factor,
        request.arrival_epoch,
        request.committed,
        sorted((str(k), repr(v)) for k, v in request.metadata.items()),
    ]


def _record_payload(record) -> list:
    return [
        _request_payload(record.request),
        record.state.value,
        record.admitted_epoch,
        record.compute_unit,
        sorted(record.last_reservations_mbps.items()),
    ]


def _solver_state_payload(solver) -> object:
    """Order-insensitive digest of the solver's warm-start snapshot."""
    snapshot_state = getattr(solver, "snapshot_state", None)
    if snapshot_state is None:
        return None
    return _snapshot_payload(snapshot_state())


def _snapshot_payload(snapshot) -> object:
    if snapshot is None:
        return None
    if "entries" in snapshot:  # a CutPool snapshot
        entries = []
        for key, entry in sorted(snapshot["entries"].items(), key=lambda kv: repr(kv[0])):
            digest = hashlib.sha256()
            for mu, is_optimality in entry.multipliers:
                digest.update(mu.tobytes())
                digest.update(b"\x01" if is_optimality else b"\x00")
            entries.append(
                [
                    repr(key),
                    entry.num_rows,
                    len(entry.multipliers),
                    digest.hexdigest(),
                    _digest_bytes(entry.best_x.tobytes())
                    if entry.best_x is not None
                    else None,
                    entry.instance_token.hex()
                    if entry.instance_token is not None
                    else None,
                    repr(entry.best_stats),
                ]
            )
        return {
            "entries": entries,
            "seeded_total": snapshot["seeded_total"],
            "dropped_total": snapshot["dropped_total"],
        }
    if "primary" in snapshot:  # a SafeguardedSolver snapshot
        certified = snapshot.get("certified")
        return {
            "primary": _snapshot_payload(snapshot["primary"]),
            "certified": None
            if certified is None
            else [repr(certified[0]), repr(certified[1]), _decision_payload(certified[2])],
        }
    return repr(snapshot)


def _decision_payload(decision) -> object:
    if decision is None:
        return None
    return [
        decision.objective_value,
        sorted(
            (
                name,
                alloc.accepted,
                alloc.compute_unit,
                sorted(alloc.reservations_mbps.items()),
            )
            for name, alloc in decision.allocations.items()
        ),
        sorted(decision.deficits.items()),
    ]


def control_plane_fingerprint(orchestrator) -> str:
    """SHA-256 over the orchestrator's mutable control-plane state."""
    registry = orchestrator.registry
    controllers = orchestrator.controllers
    last_solve = orchestrator._last_solve
    payload = {
        "records": sorted(
            (name, _record_payload(record))
            for name, record in (
                (record.name, record) for record in registry.all_records()
            )
        ),
        "archive": sorted(
            (record.name, [_record_payload(old) for old in registry.archived_records(record.name)])
            for record in registry.all_records()
            if registry.renewal_count(record.name)
        ),
        "pending": [
            _request_payload(request)
            for request in orchestrator.slice_manager.pending_requests
        ],
        "ran": sorted(
            (bs, sorted((name, share.prbs) for name, share in shares.items()))
            for bs, shares in controllers.ran.snapshot().items()
        ),
        "transport": sorted(
            ("|".join(key), sorted(slices.items()))
            for key, slices in controllers.transport.snapshot().items()
        ),
        "cloud": sorted(
            (cu, sorted(slices.items()))
            for cu, slices in controllers.cloud.snapshot().items()
        ),
        "solver": _solver_state_payload(orchestrator.solver),
        "last_solve": None
        if last_solve is None
        else [_stable_repr(last_solve[0]), _decision_payload(last_solve[1])],
        "last_decision": _decision_payload(orchestrator.last_decision),
    }
    blob = json.dumps(payload, sort_keys=True, default=_stable_repr, separators=(",", ":"))
    return _digest_bytes(blob.encode("utf-8"))
