"""Seeded, content-hashed fault-plan DSL.

A :class:`FaultPlan` is a declarative description of *which* faults hit
*which* control-plane hook points at *which* epochs.  Plans are pure data:
deterministic (the same plan against the same scenario produces the same
run, fault for fault), content-hashed (two structurally identical plans hash
identically, so sweeps can be cached and failures replayed from a hash), and
serialisable (``to_dict``/``from_dict`` round-trip losslessly).

The hook-point catalogue (see DESIGN.md, "Fault model & degraded modes"):

========================  ====================================================
hook point                where it fires
========================  ====================================================
``solver.solve``          the primary solver invocation inside the epoch solve
``controller.ran.apply``  right before the RAN controller enforces a decision
``controller.transport.apply``  right before the transport controller applies
``controller.cloud.apply``      right before the cloud controller applies
``forecast.forecast_for`` entry of the forecasting block for one slice
``topology.pre_epoch``    start of ``run_epoch``, before expiries are
                          processed (mid-epoch link capacity loss)
========================  ====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.utils.rng import normalize_spec, spec_hash

HOOK_SOLVER = "solver.solve"
HOOK_RAN_APPLY = "controller.ran.apply"
HOOK_TRANSPORT_APPLY = "controller.transport.apply"
HOOK_CLOUD_APPLY = "controller.cloud.apply"
HOOK_FORECAST = "forecast.forecast_for"
HOOK_TOPOLOGY = "topology.pre_epoch"

#: Every hook point the chaos layer knows, in firing order within an epoch.
ALL_HOOKS = (
    HOOK_TOPOLOGY,
    HOOK_FORECAST,
    HOOK_SOLVER,
    HOOK_RAN_APPLY,
    HOOK_TRANSPORT_APPLY,
    HOOK_CLOUD_APPLY,
)


class FaultKind(str, enum.Enum):
    """What happens when a fault fires at its hook point."""

    #: Retryable solver exception -- the safeguard chain's retry tier clears
    #: it once the spec's ``times`` budget is exhausted.
    TRANSIENT = "transient"
    #: Non-retryable exception raised at the hook point.
    CRASH = "crash"
    #: Solver iteration budget exhausted without an incumbent.
    BUDGET = "budget"
    #: Mid-epoch link capacity loss (params: ``factor`` in (0, 1), and either
    #: an explicit ``links`` list or a ``fraction`` of links to degrade).
    LINK_DOWN = "link_down"


class InjectedFaultError(RuntimeError):
    """A fault deliberately raised by the chaos layer."""


class TransientSolverError(InjectedFaultError):
    """An injected solver failure that a retry may clear."""


class SolverBudgetExceededError(InjectedFaultError):
    """The solver's iteration budget ran out before an incumbent existed.

    Not retryable: re-running the same instance under the same budget fails
    identically, so the safeguard chain falls straight to the next tier.
    """


#: Hook points each fault kind may legally target.
_KIND_HOOKS: dict[FaultKind, tuple[str, ...]] = {
    FaultKind.TRANSIENT: (HOOK_SOLVER,),
    FaultKind.BUDGET: (HOOK_SOLVER,),
    FaultKind.CRASH: (
        HOOK_SOLVER,
        HOOK_RAN_APPLY,
        HOOK_TRANSPORT_APPLY,
        HOOK_CLOUD_APPLY,
        HOOK_FORECAST,
    ),
    FaultKind.LINK_DOWN: (HOOK_TOPOLOGY,),
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault: a kind, a hook point, an epoch, and a firing budget.

    ``times`` is the number of consecutive invocations of the hook (within
    the epoch) the fault covers: a ``TRANSIENT`` spec with ``times=2`` fails
    the first two solver attempts and lets the third through, which is how
    retry exhaustion is exercised deterministically.
    """

    hook: str
    epoch: int
    kind: FaultKind
    times: int = 1
    params: dict = field(default_factory=dict, hash=False)

    def __post_init__(self) -> None:
        if self.hook not in ALL_HOOKS:
            raise ValueError(
                f"unknown hook point {self.hook!r}; expected one of {ALL_HOOKS}"
            )
        if self.epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {self.epoch}")
        if self.times < 1:
            raise ValueError(f"times must be at least 1, got {self.times}")
        kind = FaultKind(self.kind)
        object.__setattr__(self, "kind", kind)
        if self.hook not in _KIND_HOOKS[kind]:
            raise ValueError(
                f"fault kind {kind.value!r} cannot target hook {self.hook!r}"
            )
        object.__setattr__(self, "params", dict(self.params))
        if kind is FaultKind.LINK_DOWN:
            factor = self.params.get("factor")
            if not isinstance(factor, (int, float)) or not 0.0 < factor < 1.0:
                raise ValueError(
                    "link_down faults need a capacity 'factor' in (0, 1), "
                    f"got {factor!r}"
                )
            if "links" not in self.params:
                fraction = self.params.get("fraction")
                if not isinstance(fraction, (int, float)) or not 0.0 < fraction <= 1.0:
                    raise ValueError(
                        "link_down faults need explicit 'links' or a "
                        f"'fraction' in (0, 1], got {fraction!r}"
                    )

    def payload(self) -> dict:
        return {
            "hook": self.hook,
            "epoch": self.epoch,
            "kind": self.kind.value,
            "times": self.times,
            "params": normalize_spec(self.params),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        try:
            return cls(
                hook=str(payload["hook"]),
                epoch=int(payload["epoch"]),
                kind=FaultKind(payload["kind"]),
                times=int(payload.get("times", 1)),
                params=dict(payload.get("params", {})),
            )
        except KeyError as missing:
            raise ValueError(
                f"fault spec payload is missing field {missing.args[0]!r}"
            ) from None


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, content-hashed set of fault specs plus a sampling seed.

    ``seed`` only feeds the *parameter sampling* of faults that need
    randomness (which links a fractional ``LINK_DOWN`` degrades); the firing
    schedule itself is fully determined by the specs.  ``FaultPlan.empty()``
    is the canonical zero-fault plan: a run driven through the chaos layer
    with an empty plan is byte-identical to an uninstrumented run.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def of(cls, *specs: FaultSpec, seed: int = 0) -> "FaultPlan":
        return cls(specs=tuple(specs), seed=seed)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def specs_for(self, hook: str, epoch: int) -> list[FaultSpec]:
        """The specs targeting one hook point at one epoch, in plan order."""
        return [
            spec
            for spec in self.specs
            if spec.hook == hook and spec.epoch == epoch
        ]

    @property
    def max_epoch(self) -> int:
        """Last epoch any spec targets (-1 for the empty plan)."""
        return max((spec.epoch for spec in self.specs), default=-1)

    def payload(self) -> dict:
        return {
            "schema_version": 1,
            "seed": self.seed,
            "specs": [spec.payload() for spec in self.specs],
        }

    def plan_hash(self) -> str:
        """Content hash: structurally identical plans hash identically."""
        return spec_hash(self.payload())

    def to_dict(self) -> dict:
        return self.payload()

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        version = payload.get("schema_version", 1)
        if version != 1:
            raise ValueError(f"unsupported fault-plan schema version {version!r}")
        return cls(
            specs=tuple(
                FaultSpec.from_dict(spec) for spec in payload.get("specs", [])
            ),
            seed=int(payload.get("seed", 0)),
        )
