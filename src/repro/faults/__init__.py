"""Chaos layer: deterministic fault injection and safeguarded degradation.

See DESIGN.md, "Fault model & degraded modes", for the hook-point catalogue,
the safeguard-chain tiers and their guarantees, and the health state
machine.
"""

from repro.faults.fingerprint import control_plane_fingerprint
from repro.faults.injector import (
    ChaosSolver,
    FaultInjector,
    FiredFault,
    attach_injector,
)
from repro.faults.plan import (
    ALL_HOOKS,
    HOOK_CLOUD_APPLY,
    HOOK_FORECAST,
    HOOK_RAN_APPLY,
    HOOK_SOLVER,
    HOOK_TOPOLOGY,
    HOOK_TRANSPORT_APPLY,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    SolverBudgetExceededError,
    TransientSolverError,
)
from repro.faults.safeguard import (
    TIER_NO_OVERBOOKING,
    TIER_ORDER,
    TIER_PRIMARY,
    TIER_REJECT_ALL,
    TIER_WARM_REPLAY,
    BrokerHealth,
    HealthMonitor,
    SafeguardedSolver,
)

__all__ = [
    "ALL_HOOKS",
    "HOOK_CLOUD_APPLY",
    "HOOK_FORECAST",
    "HOOK_RAN_APPLY",
    "HOOK_SOLVER",
    "HOOK_TOPOLOGY",
    "HOOK_TRANSPORT_APPLY",
    "TIER_NO_OVERBOOKING",
    "TIER_ORDER",
    "TIER_PRIMARY",
    "TIER_REJECT_ALL",
    "TIER_WARM_REPLAY",
    "BrokerHealth",
    "ChaosSolver",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    "HealthMonitor",
    "InjectedFaultError",
    "SafeguardedSolver",
    "SolverBudgetExceededError",
    "TransientSolverError",
    "attach_injector",
    "control_plane_fingerprint",
]
