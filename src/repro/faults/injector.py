"""Deterministic enactment of a :class:`~repro.faults.plan.FaultPlan`.

The :class:`FaultInjector` is the single stateful object of the chaos layer:
it tracks how many times each hook point was invoked in each epoch, decides
(purely from the plan) which invocations a fault covers, and keeps an append
-only log of every fault that actually fired -- the broker reads that log to
flag committed epochs as degraded, and the fault-matrix tests read it to
know whether an invariant about "the fault fired" applies at all (decision
reuse can legally skip the solver hook in a steady-state epoch).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.faults.plan import (
    HOOK_SOLVER,
    HOOK_TOPOLOGY,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    SolverBudgetExceededError,
    TransientSolverError,
)
from repro.utils.rng import derive_seed, make_rng


@dataclass(frozen=True)
class FiredFault:
    """One fault that actually fired (epoch, hook, kind)."""

    epoch: int
    hook: str
    kind: FaultKind


def _exception_for(spec: FaultSpec) -> InjectedFaultError:
    message = f"injected {spec.kind.value} fault at {spec.hook} (epoch {spec.epoch})"
    if spec.kind is FaultKind.TRANSIENT:
        return TransientSolverError(message)
    if spec.kind is FaultKind.BUDGET:
        return SolverBudgetExceededError(message)
    return InjectedFaultError(message)


class FaultInjector:
    """Fires the faults of one plan at the control plane's hook points.

    Wiring (see :func:`attach_injector`): the orchestrator calls
    :meth:`begin_epoch` at the top of ``run_epoch`` and
    :meth:`link_faults` for mid-epoch topology damage; ``ControllerSet`` and
    ``ForecastingBlock`` call :meth:`enact` (a ``Callable[[str], None]``)
    at their hook points; :class:`ChaosSolver` proxies the primary solver.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._epoch = 0
        #: (hook, epoch) -> number of invocations seen so far.
        self._invocations: dict[tuple[str, int], int] = {}
        #: Every fault that fired, in firing order.
        self.fired: list[FiredFault] = []
        #: Epochs whose LINK_DOWN specs were already resolved and applied --
        #: a rolled-back epoch's retry must not damage the topology twice.
        self._resolved_link_epochs: set[int] = set()

        #: Index into :attr:`fired` at the start of the current run_epoch
        #: attempt (a retried epoch begins a fresh attempt).
        self._attempt_mark = 0

    # ------------------------------------------------------------------ #
    def begin_epoch(self, epoch: int) -> None:
        """Anchor subsequent hook firings to ``epoch``.

        Also marks an attempt boundary: faults fired by a rolled-back
        attempt of the same epoch stay in :attr:`fired` (forensics) but are
        excluded from :meth:`fired_in_attempt`, so a clean retry's report is
        not flagged degraded by its predecessor's faults.
        """
        self._epoch = epoch
        self._attempt_mark = len(self.fired)

    @property
    def epoch(self) -> int:
        return self._epoch

    def fire(self, hook: str) -> FaultSpec | None:
        """Record one invocation of ``hook``; return the covering spec if any.

        Specs targeting the same (hook, epoch) cover consecutive invocation
        ranges in plan order: spec #1 with ``times=2`` covers invocations 1-2,
        a following spec covers invocation 3, and so on -- so a retry loop
        deterministically consumes a transient fault's budget.
        """
        key = (hook, self._epoch)
        count = self._invocations.get(key, 0) + 1
        self._invocations[key] = count
        cumulative = 0
        for spec in self.plan.specs_for(hook, self._epoch):
            cumulative += spec.times
            if count <= cumulative:
                self.fired.append(FiredFault(self._epoch, hook, spec.kind))
                return spec
        return None

    def enact(self, hook: str) -> None:
        """Hook-point callable: raise the covering fault, if any."""
        spec = self.fire(hook)
        if spec is not None:
            raise _exception_for(spec)

    def link_faults(self, epoch: int, topology) -> list[tuple[tuple[str, str], float]]:
        """Resolve this epoch's ``LINK_DOWN`` specs to (link key, factor) pairs.

        Explicit ``links`` params are taken verbatim; fractional specs sample
        ``ceil(fraction * num_links)`` links from the sorted key list with an
        rng derived from ``(plan.seed, "link_down", epoch, spec index)`` --
        the same plan against the same topology always damages the same
        links.  Each resolved spec is logged as fired.
        """
        if epoch in self._resolved_link_epochs:
            return []
        self._resolved_link_epochs.add(epoch)
        resolved: list[tuple[tuple[str, str], float]] = []
        specs = self.plan.specs_for(HOOK_TOPOLOGY, epoch)
        for index, spec in enumerate(specs):
            factor = float(spec.params["factor"])
            if "links" in spec.params:
                keys = [tuple(sorted(key)) for key in spec.params["links"]]
            else:
                all_keys = sorted(link.key for link in topology.links)
                count = min(
                    len(all_keys),
                    max(1, math.ceil(float(spec.params["fraction"]) * len(all_keys))),
                )
                rng = make_rng(derive_seed(self.plan.seed, "link_down", epoch, index))
                chosen = rng.choice(len(all_keys), size=count, replace=False)
                keys = [all_keys[i] for i in sorted(chosen)]
            resolved.extend((key, factor) for key in keys)
            if keys:
                self.fired.append(FiredFault(epoch, HOOK_TOPOLOGY, spec.kind))
        return resolved

    # ------------------------------------------------------------------ #
    def fired_in_epoch(self, epoch: int) -> list[FiredFault]:
        """Every fault fired at ``epoch``, across all attempts."""
        return [fault for fault in self.fired if fault.epoch == epoch]

    def fired_in_attempt(self) -> list[FiredFault]:
        """Faults fired since the last :meth:`begin_epoch` (current attempt)."""
        return list(self.fired[self._attempt_mark :])


class ChaosSolver:
    """Transparent solver proxy that injects ``solver.solve`` faults.

    Keeps the fault logic out of :class:`~repro.core.benders.BendersSolver`
    itself: production solves never pay for a chaos check, and any solver
    implementing ``solve(problem)`` can be proxied.  Snapshot/restore of
    cross-epoch warm-start state is delegated to the inner solver.
    """

    def __init__(self, inner, injector: FaultInjector):
        self.inner = inner
        self.injector = injector

    def solve(self, problem):
        self.injector.enact(HOOK_SOLVER)
        return self.inner.solve(problem)

    def snapshot_state(self):
        snapshot = getattr(self.inner, "snapshot_state", None)
        return snapshot() if snapshot is not None else None

    def restore_state(self, snapshot) -> None:
        restore = getattr(self.inner, "restore_state", None)
        if restore is not None:
            restore(snapshot)


def attach_injector(orchestrator, injector: FaultInjector) -> FaultInjector:
    """Bind an injector to an orchestrator's hook points.

    Sets the orchestrator's ``fault_injector`` (epoch anchoring + topology
    faults), the controller set's ``fault_hook`` and the forecasting block's
    ``fault_hook``.  The solver is *not* wrapped here -- build the solver
    stack explicitly (e.g. ``SafeguardedSolver(ChaosSolver(benders,
    injector), ...)``) so the chaos proxy sits exactly where the plan says
    faults should land.
    """
    orchestrator.fault_injector = injector
    orchestrator.controllers.fault_hook = injector.enact
    orchestrator.forecasting.fault_hook = injector.enact
    return injector
