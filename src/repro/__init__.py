"""Reproduction of *Overbooking Network Slices through Yield-driven
End-to-End Orchestration* (Salvat et al., CoNEXT 2018).

The package is organised around the paper's architecture:

* :mod:`repro.topology` -- the data-plane substrate (base stations, transport
  network, compute units) and the three synthetic operator networks used in
  the evaluation.
* :mod:`repro.radio` -- spectrum / physical-resource-block models.
* :mod:`repro.traffic` -- synthetic slice demand (Gaussian + diurnal traces).
* :mod:`repro.forecasting` -- Holt-Winters and simpler forecasters used by the
  orchestrator's Forecasting block.
* :mod:`repro.core` -- the paper's contribution: the AC-RR yield-management
  problem, the Benders decomposition solver, the KAC heuristic and the
  no-overbooking baseline.
* :mod:`repro.dataplane` -- simulated data plane (rate-control middlebox,
  network services, per-domain usage accounting).
* :mod:`repro.controlplane` -- slice manager, E2E orchestrator and domain
  controllers (the hierarchical control plane of Fig. 2).
* :mod:`repro.api` -- the northbound SliceBroker service API (versioned DTOs,
  error taxonomy, lifecycle events): the supported entry point to the control
  plane.
* :mod:`repro.simulation` -- the decision-epoch simulation engine and revenue
  accounting used to reproduce the evaluation.
* :mod:`repro.experiments` -- one module per table/figure of the paper.
"""

from repro.core.slices import (
    SliceTemplate,
    SliceRequest,
    EMBB_TEMPLATE,
    MMTC_TEMPLATE,
    URLLC_TEMPLATE,
)
from repro.core.problem import ACRRProblem
from repro.core.benders import BendersSolver
from repro.core.kac import KACSolver
from repro.core.baseline import NoOverbookingSolver
from repro.core.milp_solver import DirectMILPSolver
from repro.topology.network import NetworkTopology
from repro.topology.operators import (
    romanian_topology,
    swiss_topology,
    italian_topology,
)
from repro.controlplane.orchestrator import E2EOrchestrator
from repro.api import SliceBroker, SliceRequestV1
from repro.simulation.engine import SimulationEngine
from repro.simulation.scenario import Scenario

__version__ = "1.0.0"

__all__ = [
    "SliceTemplate",
    "SliceRequest",
    "EMBB_TEMPLATE",
    "MMTC_TEMPLATE",
    "URLLC_TEMPLATE",
    "ACRRProblem",
    "BendersSolver",
    "KACSolver",
    "NoOverbookingSolver",
    "DirectMILPSolver",
    "NetworkTopology",
    "romanian_topology",
    "swiss_topology",
    "italian_topology",
    "E2EOrchestrator",
    "SliceBroker",
    "SliceRequestV1",
    "SimulationEngine",
    "Scenario",
    "__version__",
]
