"""Forecasting block of the E2E orchestrator.

The orchestrator predicts each slice's peak load for the next decision epoch
and quantifies the prediction uncertainty; both feed the risk term of the
AC-RR objective.  The paper uses the multiplicative Holt-Winters method
(triple exponential smoothing) because mobile traffic is strongly seasonal;
simpler methods are provided as baselines for the forecasting ablation.
"""

from repro.forecasting.base import Forecaster, ForecastOutcome
from repro.forecasting.naive import NaiveForecaster, MeanForecaster, PeakForecaster
from repro.forecasting.exponential import (
    SingleExponentialForecaster,
    DoubleExponentialForecaster,
)
from repro.forecasting.holt_winters import HoltWintersForecaster

__all__ = [
    "Forecaster",
    "ForecastOutcome",
    "NaiveForecaster",
    "MeanForecaster",
    "PeakForecaster",
    "SingleExponentialForecaster",
    "DoubleExponentialForecaster",
    "HoltWintersForecaster",
]
