"""Naive forecasting baselines.

These exist for the forecasting ablation (how much does Holt-Winters buy over
trivial predictors?) and as safe fallbacks when a slice has too little history
for the smoothing methods.
"""

from __future__ import annotations

import numpy as np

from repro.forecasting.base import Forecaster, ForecastOutcome


class NaiveForecaster(Forecaster):
    """Predict that the next peak equals the last observed peak."""

    min_history = 1

    def forecast(self, history: np.ndarray, horizon: int = 1) -> ForecastOutcome:
        history = self._validate_history(history)
        horizon = self._validate_horizon(horizon)
        fitted = np.concatenate([[history[0]], history[:-1]])
        sigma = self._sigma_from_errors(history, fitted)
        value = float(history[-1])
        return ForecastOutcome(
            predictions=tuple([value] * horizon),
            sigma_hat=sigma,
            fitted=tuple(float(v) for v in fitted),
        )


class MeanForecaster(Forecaster):
    """Predict the historical mean peak."""

    min_history = 1

    def forecast(self, history: np.ndarray, horizon: int = 1) -> ForecastOutcome:
        history = self._validate_history(history)
        horizon = self._validate_horizon(horizon)
        # Expanding-window mean as the in-sample fit.
        fitted = np.cumsum(history) / np.arange(1, history.size + 1)
        fitted = np.concatenate([[history[0]], fitted[:-1]])
        sigma = self._sigma_from_errors(history, fitted)
        value = float(np.mean(history))
        return ForecastOutcome(
            predictions=tuple([value] * horizon),
            sigma_hat=sigma,
            fitted=tuple(float(v) for v in fitted),
        )


class PeakForecaster(Forecaster):
    """Predict the historical maximum (the most conservative predictor).

    Reserving for the historical peak essentially disables overbooking for
    bursty slices, so this baseline brackets the conservative end of the
    forecasting ablation.
    """

    min_history = 1

    def forecast(self, history: np.ndarray, horizon: int = 1) -> ForecastOutcome:
        history = self._validate_history(history)
        horizon = self._validate_horizon(horizon)
        fitted = np.maximum.accumulate(history)
        fitted = np.concatenate([[history[0]], fitted[:-1]])
        sigma = self._sigma_from_errors(history, fitted)
        value = float(np.max(history))
        return ForecastOutcome(
            predictions=tuple([value] * horizon),
            sigma_hat=sigma,
            fitted=tuple(float(v) for v in fitted),
        )
