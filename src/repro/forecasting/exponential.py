"""Single and double exponential smoothing.

The paper discusses (double) exponential smoothing as the common choice for
cloud resource provisioning and rejects it because it cannot model the
seasonality of mobile traffic; both are implemented here as comparison points
for the forecasting ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.forecasting.base import Forecaster, ForecastOutcome
from repro.utils.validation import ensure_in_range


class SingleExponentialForecaster(Forecaster):
    """Simple exponential smoothing (level only)."""

    min_history = 2

    def __init__(self, alpha: float = 0.4):
        self.alpha = ensure_in_range(alpha, 0.0, 1.0, "alpha")

    def forecast(self, history: np.ndarray, horizon: int = 1) -> ForecastOutcome:
        history = self._validate_history(history)
        horizon = self._validate_horizon(horizon)
        level = history[0]
        fitted = [level]
        for value in history[1:]:
            fitted.append(level)
            level = self.alpha * value + (1.0 - self.alpha) * level
        sigma = self._sigma_from_errors(history, np.asarray(fitted))
        return ForecastOutcome(
            predictions=tuple([float(level)] * horizon),
            sigma_hat=sigma,
            fitted=tuple(float(v) for v in fitted),
        )


class DoubleExponentialForecaster(Forecaster):
    """Holt's linear method: level + trend smoothing."""

    min_history = 3

    def __init__(self, alpha: float = 0.4, beta: float = 0.2):
        self.alpha = ensure_in_range(alpha, 0.0, 1.0, "alpha")
        self.beta = ensure_in_range(beta, 0.0, 1.0, "beta")

    def forecast(self, history: np.ndarray, horizon: int = 1) -> ForecastOutcome:
        history = self._validate_history(history)
        horizon = self._validate_horizon(horizon)
        level = history[0]
        trend = history[1] - history[0]
        fitted = [level]
        for value in history[1:]:
            fitted.append(level + trend)
            previous_level = level
            level = self.alpha * value + (1.0 - self.alpha) * (level + trend)
            trend = self.beta * (level - previous_level) + (1.0 - self.beta) * trend
        sigma = self._sigma_from_errors(history, np.asarray(fitted))
        predictions = [float(level + (h + 1) * trend) for h in range(horizon)]
        predictions = [max(0.0, p) for p in predictions]
        return ForecastOutcome(
            predictions=tuple(predictions),
            sigma_hat=sigma,
            fitted=tuple(float(v) for v in fitted),
        )
