"""Common interface of the forecasting algorithms.

A forecaster consumes the history of per-epoch peak loads of one slice and
produces the predicted peak for the next ``horizon`` epochs together with a
normalised uncertainty ``sigma_hat`` in (0, 1].  The uncertainty is what the
risk-cost function scales by, so every forecaster must report one; by default
it is derived from the normalised in-sample one-step-ahead error.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.forecast_inputs import MIN_SIGMA_HAT, ForecastInput


@dataclass(frozen=True)
class ForecastOutcome:
    """Prediction for the next epochs of one time series."""

    predictions: tuple[float, ...]
    sigma_hat: float
    fitted: tuple[float, ...] = ()

    @property
    def next_value(self) -> float:
        return self.predictions[0]

    def as_forecast_input(self, sla_mbps: float) -> ForecastInput:
        """Convert to the value object consumed by the AC-RR problem."""
        return ForecastInput(
            lambda_hat_mbps=max(0.0, self.next_value), sigma_hat=self.sigma_hat
        ).clamped(sla_mbps)


class Forecaster(abc.ABC):
    """Base class for all forecasting algorithms."""

    #: Smallest number of observations the algorithm needs to produce a
    #: meaningful forecast; below this the caller should fall back to a
    #: pessimistic (full-SLA) forecast.
    min_history: int = 1

    @abc.abstractmethod
    def forecast(self, history: np.ndarray, horizon: int = 1) -> ForecastOutcome:
        """Predict the next ``horizon`` values of ``history``."""

    def can_forecast(self, history: np.ndarray) -> bool:
        return len(np.atleast_1d(history)) >= self.min_history

    # ------------------------------------------------------------------ #
    @staticmethod
    def _sigma_from_errors(history: np.ndarray, fitted: np.ndarray) -> float:
        """Normalised one-step-ahead error used as the uncertainty estimate.

        sigma_hat = RMSE(fitted, observed) / mean(observed), clipped into
        (MIN_SIGMA_HAT, 1].  A perfectly predictable series (e.g. the mMTC
        template) therefore gets the minimum uncertainty, and a series whose
        errors are as large as its mean saturates at 1.
        """
        history = np.asarray(history, dtype=float)
        fitted = np.asarray(fitted, dtype=float)
        if history.size == 0 or fitted.size == 0:
            return 1.0
        size = min(history.size, fitted.size)
        errors = history[-size:] - fitted[-size:]
        mean = float(np.mean(np.abs(history))) or 1.0
        rmse = float(np.sqrt(np.mean(errors**2)))
        return float(np.clip(rmse / mean, MIN_SIGMA_HAT, 1.0))

    @staticmethod
    def _validate_history(history: np.ndarray) -> np.ndarray:
        arr = np.asarray(history, dtype=float).ravel()
        if arr.size == 0:
            raise ValueError("cannot forecast an empty history")
        if np.any(arr < 0):
            raise ValueError("load history must be non-negative")
        return arr

    @staticmethod
    def _validate_horizon(horizon: int) -> int:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        return int(horizon)
