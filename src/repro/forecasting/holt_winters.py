"""Multiplicative Holt-Winters forecasting (triple exponential smoothing).

This is the forecasting algorithm the paper's orchestrator uses: mobile
traffic has strong daily periodicity, so the seasonal component captures the
diurnal shape while the level/trend components track slower drift.  The
implementation follows the classic multiplicative formulation:

    level_t    = alpha * (x_t / season_{t-m}) + (1 - alpha) * (level_{t-1} + trend_{t-1})
    trend_t    = beta  * (level_t - level_{t-1}) + (1 - beta) * trend_{t-1}
    season_t   = gamma * (x_t / level_t) + (1 - gamma) * season_{t-m}
    forecast_{t+h} = (level_t + h * trend_t) * season_{t+h-m}

The multiplicative variant requires strictly positive observations; zero
samples are floored at a small epsilon (an idle slice simply forecasts an
almost-idle load).
"""

from __future__ import annotations

import numpy as np

from repro.forecasting.base import Forecaster, ForecastOutcome
from repro.utils.validation import ensure_in_range

_POSITIVE_FLOOR = 1e-6


class HoltWintersForecaster(Forecaster):
    """Multiplicative Holt-Winters with a fixed seasonal period."""

    def __init__(
        self,
        season_length: int = 24,
        alpha: float = 0.35,
        beta: float = 0.05,
        gamma: float = 0.25,
    ):
        if season_length < 2:
            raise ValueError("season_length must be at least 2")
        self.season_length = int(season_length)
        self.alpha = ensure_in_range(alpha, 0.0, 1.0, "alpha")
        self.beta = ensure_in_range(beta, 0.0, 1.0, "beta")
        self.gamma = ensure_in_range(gamma, 0.0, 1.0, "gamma")

    @property
    def min_history(self) -> int:  # type: ignore[override]
        """Two full seasons are needed to initialise level, trend and season."""
        return 2 * self.season_length

    # ------------------------------------------------------------------ #
    def _initial_state(self, history: np.ndarray) -> tuple[float, float, np.ndarray]:
        m = self.season_length
        first_season = history[:m]
        second_season = history[m : 2 * m]
        level = float(np.mean(first_season))
        trend = float((np.mean(second_season) - np.mean(first_season)) / m)
        season = first_season / max(level, _POSITIVE_FLOOR)
        season = np.clip(season, _POSITIVE_FLOOR, None)
        return level, trend, season

    def forecast(self, history: np.ndarray, horizon: int = 1) -> ForecastOutcome:
        history = self._validate_history(history)
        horizon = self._validate_horizon(horizon)
        if history.size < self.min_history:
            raise ValueError(
                f"Holt-Winters needs at least {self.min_history} observations "
                f"(two seasons of {self.season_length}), got {history.size}"
            )
        observations = np.clip(history, _POSITIVE_FLOOR, None)
        m = self.season_length
        level, trend, season = self._initial_state(observations)
        seasonals = list(season)
        fitted: list[float] = list(observations[:m])

        for t in range(m, observations.size):
            value = observations[t]
            seasonal_index = t - m
            seasonal = seasonals[seasonal_index]
            fitted.append((level + trend) * seasonal)
            previous_level = level
            level = self.alpha * (value / seasonal) + (1.0 - self.alpha) * (level + trend)
            trend = self.beta * (level - previous_level) + (1.0 - self.beta) * trend
            seasonals.append(
                self.gamma * (value / max(level, _POSITIVE_FLOOR))
                + (1.0 - self.gamma) * seasonal
            )

        predictions: list[float] = []
        for h in range(1, horizon + 1):
            seasonal = seasonals[len(seasonals) - m + ((h - 1) % m)]
            predictions.append(max(0.0, (level + h * trend) * seasonal))

        sigma = self._sigma_from_errors(observations[m:], np.asarray(fitted[m:]))
        return ForecastOutcome(
            predictions=tuple(predictions),
            sigma_hat=sigma,
            fitted=tuple(float(v) for v in fitted),
        )
