"""Stochastic scenario generation beyond the paper's three hand-built setups.

The paper evaluates overbooking on exactly three configurations (the
homogeneous Fig. 5 grid, the heterogeneous Fig. 6 grid and the two-BS
testbed of Fig. 8).  This package opens that workload space safely:

* :mod:`repro.scenarios.family` declares *scenario families* -- JSON-level,
  content-hashable distributions over topologies, tenant populations, demand
  regimes and failure episodes;
* :mod:`repro.scenarios.generator` samples concrete, valid
  :class:`repro.simulation.scenario.Scenario` objects from a family,
  deterministically per ``(family, seed)``;
* :mod:`repro.scenarios.oracle` is the differential-testing oracle: it checks
  the Benders decomposition against the exact MILP optimum and the
  no-overbooking baseline on any generated scenario;
* :mod:`repro.scenarios.campaigns` registers the ``generated`` campaign run
  kind so ``python -m repro.experiments run generated`` sweeps random
  scenario families with cached, resumable runs.
"""

from repro.scenarios.family import (
    CHURN_FAMILY,
    DIFFERENTIAL_FAMILY,
    FAILURE_FAMILY,
    FAMILIES,
    SEASONAL_ONLINE_FAMILY,
    ScenarioFamily,
)
from repro.scenarios.generator import (
    sample_scenario,
    sample_scenarios,
    scenario_fingerprint,
    scenario_payload,
)
from repro.scenarios.oracle import (
    DifferentialOutcome,
    MultiCutOutcome,
    WarmStartOutcome,
    decision_fingerprint,
    differential_check,
    multi_cut_check,
    problem_for_scenario,
    warm_start_check,
)

__all__ = [
    "CHURN_FAMILY",
    "DIFFERENTIAL_FAMILY",
    "DifferentialOutcome",
    "FAILURE_FAMILY",
    "FAMILIES",
    "MultiCutOutcome",
    "SEASONAL_ONLINE_FAMILY",
    "ScenarioFamily",
    "WarmStartOutcome",
    "decision_fingerprint",
    "differential_check",
    "multi_cut_check",
    "problem_for_scenario",
    "warm_start_check",
    "sample_scenario",
    "sample_scenarios",
    "scenario_fingerprint",
    "scenario_payload",
]
