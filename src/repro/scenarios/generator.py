"""Sampling concrete scenarios from a declarative family.

:func:`sample_scenario` maps ``(family, seed)`` to one valid
:class:`repro.simulation.scenario.Scenario`.  Determinism is the contract the
differential harness and the campaign cache lean on:

* every random draw comes from one :class:`numpy.random.Generator` seeded by
  ``derive_seed(seed, "generated-scenario", family_hash)``, so the sampled
  scenario is a pure function of the family content and the seed;
* the scenario's own ``seed`` (which drives the demand traces during
  simulation) is derived the same way, so two samples of the same
  ``(family, seed)`` replay identical traffic;
* :func:`scenario_fingerprint` hashes a canonical JSON serialisation of the
  sampled scenario (topology capacities, workloads, demand specs, knobs), so
  byte-determinism is checkable -- and checked, in
  ``tests/differential/test_generator_determinism.py``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Iterable

import numpy as np

from repro.core.slices import TEMPLATES, SliceRequest
from repro.scenarios.family import ScenarioFamily
from repro.simulation.scenario import LinkFailureEvent, Scenario, SliceWorkload
from repro.topology.generators import (
    OperatorProfile,
    degrade_link_capacities,
    generate_operator_topology,
)
from repro.topology.network import NetworkTopology
from repro.topology.operators import OPERATOR_PROFILES
from repro.traffic.patterns import DemandSpec
from repro.utils.rng import choice_without_replacement, derive_seed, make_rng, spec_hash

#: Path-redundancy presets: multi-homing degrees and the aggregation ring
#: flag, from single-homed trees (the Italian regime, ~1.6 candidate paths)
#: to dual/triple-homed rings (the Romanian regime, ~6.6 candidate paths).
_REDUNDANCY_PRESETS: dict[str, dict[str, Any]] = {
    "low": {
        "bs_degree_choices": (1,),
        "bs_degree_weights": (1.0,),
        "aggregation_ring": False,
    },
    "medium": {
        "bs_degree_choices": (1, 2),
        "bs_degree_weights": (0.5, 0.5),
        "aggregation_ring": True,
    },
    "high": {
        "bs_degree_choices": (2, 3),
        "bs_degree_weights": (0.4, 0.6),
        "aggregation_ring": True,
    },
}


def _uniform(rng: np.random.Generator, bounds: tuple[float, float]) -> float:
    low, high = bounds
    if low == high:
        return float(low)
    return float(rng.uniform(low, high))


def _randint(rng: np.random.Generator, bounds: tuple[int, int]) -> int:
    low, high = bounds
    return int(rng.integers(low, high + 1))


def _choice(rng: np.random.Generator, items: tuple, probabilities=None):
    index = int(rng.choice(len(items), p=probabilities))
    return items[index]


# --------------------------------------------------------------------- #
# Topology sampling
# --------------------------------------------------------------------- #
def _scaled_capacity_map(capacities: dict, factor: float) -> dict:
    return {
        technology: (low * factor, high * factor)
        for technology, (low, high) in capacities.items()
    }


def _sample_profile(family: ScenarioFamily, rng: np.random.Generator) -> OperatorProfile:
    base_name = _choice(rng, family.operator_profiles)
    base = OPERATOR_PROFILES[base_name]
    num_bs = _randint(rng, family.num_base_stations)
    profile = (
        base
        if num_bs == base.num_base_stations
        else base.scaled(num_bs, name_suffix=f"-gen{num_bs}")
    )
    redundancy = _choice(rng, family.redundancy_levels)
    spread = _uniform(rng, family.capacity_spread)
    return replace(
        profile,
        name=f"{profile.name}-{redundancy}",
        access_capacity_mbps=_scaled_capacity_map(profile.access_capacity_mbps, spread),
        aggregation_capacity_mbps=tuple(
            cap * spread for cap in profile.aggregation_capacity_mbps
        ),
        hub_capacity_mbps=tuple(cap * spread for cap in profile.hub_capacity_mbps),
        **_REDUNDANCY_PRESETS[redundancy],
    )


def _sample_topology(family: ScenarioFamily, rng: np.random.Generator) -> NetworkTopology:
    profile = _sample_profile(family, rng)
    topology = generate_operator_topology(
        profile, seed=int(rng.integers(0, 2**31 - 1))
    )
    if family.degradation_probability > 0 and rng.random() < family.degradation_probability:
        links = topology.links
        count = max(
            1, int(round(_uniform(rng, family.degraded_link_fraction) * len(links)))
        )
        count = min(count, len(links))
        degraded = choice_without_replacement(rng, [link.key for link in links], count)
        degrade_link_capacities(
            topology, degraded, _uniform(rng, family.degradation_factor)
        )
    return topology


# --------------------------------------------------------------------- #
# Workload sampling
# --------------------------------------------------------------------- #
def _sample_demand_spec(
    family: ScenarioFamily, rng: np.random.Generator
) -> DemandSpec:
    mean_fraction = _uniform(rng, family.mean_load_fraction)
    relative_std = _uniform(rng, family.relative_std)
    regime = rng.random()
    seasonal = regime < family.seasonal_probability
    bursty = (not seasonal) and regime < (
        family.seasonal_probability + family.bursty_probability
    )
    return DemandSpec(
        mean_fraction=mean_fraction,
        relative_std=relative_std,
        seasonal=seasonal,
        bursty=bursty,
        off_mean_fraction=min(0.05, mean_fraction),
        epochs_per_day=family.epochs_per_day,
    )


def _sample_workloads(
    family: ScenarioFamily, rng: np.random.Generator, num_epochs: int
) -> tuple[SliceWorkload, ...]:
    template_names = tuple(name for name, _weight in family.template_weights)
    weights = np.asarray([weight for _name, weight in family.template_weights])
    probabilities = weights / weights.sum()
    arrival_span = int(round(family.arrival_window_fraction * (num_epochs - 1)))

    workloads = []
    for index in range(_randint(rng, family.num_tenants)):
        template = TEMPLATES[_choice(rng, template_names, probabilities)]
        arrival = int(rng.integers(0, arrival_span + 1)) if arrival_span else 0
        horizon = num_epochs - arrival
        duration_fraction = _uniform(rng, (family.min_duration_fraction, 1.0))
        duration = max(1, int(round(duration_fraction * horizon)))
        workloads.append(
            SliceWorkload(
                request=SliceRequest(
                    name=f"{template.name}-{index}",
                    template=template,
                    duration_epochs=duration,
                    penalty_factor=_choice(rng, family.penalty_factors),
                    arrival_epoch=arrival,
                ),
                demand=_sample_demand_spec(family, rng),
            )
        )
    return tuple(workloads)


def _sample_link_failures(
    family: ScenarioFamily,
    rng: np.random.Generator,
    topology: NetworkTopology,
    num_epochs: int,
) -> tuple[LinkFailureEvent, ...]:
    """Sample the scenario's mid-run failure episode, if the family has one.

    Must consume *no* rng draws when the knob is inert, so families declared
    before the knob existed keep sampling byte-identical scenarios.
    """
    if family.link_failure_probability <= 0 or num_epochs < 2:
        return ()
    if rng.random() >= family.link_failure_probability:
        return ()
    window_lo, window_hi = family.link_failure_window
    span = num_epochs - 1
    epoch = int(round(_uniform(rng, (window_lo * span, window_hi * span))))
    epoch = max(1, min(span, epoch))
    links = topology.links
    count = max(
        1, int(round(_uniform(rng, family.failed_link_fraction) * len(links)))
    )
    count = min(count, len(links))
    failed = choice_without_replacement(rng, [link.key for link in links], count)
    factor = _uniform(rng, family.link_failure_factor)
    return (
        LinkFailureEvent(
            epoch=epoch, links=tuple(failed), capacity_factor=factor
        ),
    )


# --------------------------------------------------------------------- #
# Public API
# --------------------------------------------------------------------- #
def sample_scenario(family: ScenarioFamily, seed: int = 0) -> Scenario:
    """Sample one valid scenario; a pure function of ``(family, seed)``."""
    family_hash = family.family_hash
    rng = make_rng(derive_seed(seed, "generated-scenario", family_hash))
    num_epochs = _randint(rng, family.num_epochs)
    topology = _sample_topology(family, rng)
    workloads = _sample_workloads(family, rng, num_epochs)
    link_failures = _sample_link_failures(family, rng, topology, num_epochs)
    return Scenario(
        name=f"gen:{family.name}:{family_hash[:8]}:seed={seed}",
        topology=topology,
        workloads=workloads,
        num_epochs=num_epochs,
        epochs_per_day=family.epochs_per_day,
        samples_per_epoch=family.samples_per_epoch,
        candidate_paths_per_pair=family.candidate_paths_per_pair,
        forecast_mode=family.forecast_mode,
        record_usage=family.record_usage,
        seed=derive_seed(seed, "generated-demand", family_hash),
        link_failures=link_failures,
    )


def sample_scenarios(family: ScenarioFamily, seeds: Iterable[int]) -> list[Scenario]:
    """Sample one scenario per seed (the scenario-family sweep unit)."""
    return [sample_scenario(family, seed) for seed in seeds]


# --------------------------------------------------------------------- #
# Canonical serialisation / fingerprinting
# --------------------------------------------------------------------- #
def _demand_payload(spec: DemandSpec) -> dict[str, Any]:
    return {
        "mean_fraction": spec.mean_fraction,
        "relative_std": spec.relative_std,
        "seasonal": spec.seasonal,
        "bursty": spec.bursty,
        "off_mean_fraction": spec.off_mean_fraction,
        "p_on_to_off": spec.p_on_to_off,
        "p_off_to_on": spec.p_off_to_on,
        "epochs_per_day": spec.epochs_per_day,
        "profile": list(spec.profile.hourly_multipliers),
    }


def _topology_payload(topology: NetworkTopology) -> dict[str, Any]:
    return {
        "name": topology.name,
        "base_stations": [
            [bs.name, bs.capacity_mhz, bs.spectral_efficiency_mbps_per_mhz]
            for bs in topology.base_stations
        ],
        "compute_units": [
            [cu.name, cu.capacity_cpus, cu.kind.value, cu.access_latency_ms]
            for cu in topology.compute_units
        ],
        "switches": [switch.name for switch in topology.switches],
        "links": [
            [
                link.endpoint_a,
                link.endpoint_b,
                link.capacity_mbps,
                link.length_km,
                link.technology.value,
                link.overhead,
            ]
            for link in topology.links
        ],
    }


def scenario_payload(scenario: Scenario) -> dict[str, Any]:
    """Canonical JSON-level serialisation of a scenario.

    Everything that determines a simulation outcome is included: the full
    topology (element names and capacities), every workload (template,
    lifetime, penalty, demand spec) and the simulation knobs, seed included.
    Mid-run link failures are appended only when present, so every scenario
    sampled before the field existed keeps its fingerprint.
    """
    payload = {
        "name": scenario.name,
        "num_epochs": scenario.num_epochs,
        "epochs_per_day": scenario.epochs_per_day,
        "samples_per_epoch": scenario.samples_per_epoch,
        "candidate_paths_per_pair": scenario.candidate_paths_per_pair,
        "forecast_mode": scenario.forecast_mode,
        "record_usage": scenario.record_usage,
        "seed": scenario.seed,
        "topology": _topology_payload(scenario.topology),
        "workloads": [
            {
                "name": workload.name,
                "template": workload.request.template.name,
                "duration_epochs": workload.request.duration_epochs,
                "penalty_factor": workload.request.penalty_factor,
                "arrival_epoch": workload.request.arrival_epoch,
                "demand": _demand_payload(workload.demand),
            }
            for workload in scenario.workloads
        ],
    }
    if scenario.link_failures:
        payload["link_failures"] = [
            {
                "epoch": event.epoch,
                "links": [list(key) for key in event.links],
                "capacity_factor": event.capacity_factor,
            }
            for event in scenario.link_failures
        ]
    return payload


def scenario_fingerprint(scenario: Scenario) -> str:
    """Content hash of :func:`scenario_payload`.

    Two scenarios with equal fingerprints simulate identically under any
    policy; the generator determinism tests assert that independent
    ``sample_scenario(family, seed)`` calls agree byte-for-byte here.
    """
    return spec_hash(scenario_payload(scenario))
