"""Declarative scenario families: distributions over simulation scenarios.

A :class:`ScenarioFamily` describes a *distribution* over scenarios with
JSON-level knobs only -- ranges are ``(min, max)`` pairs, choices are tuples,
probabilities are floats.  That keeps a family content-hashable
(:func:`repro.utils.rng.spec_hash`), picklable into campaign run specs and
serialisable to the on-disk run cache, exactly like the figure-experiment
parameters.  Sampling a family is the generator's job
(:func:`repro.scenarios.generator.sample_scenario`); this module only
validates and round-trips the declaration.

Knob groups mirror the axes the paper's evaluation attributes its results to:

* **topology** -- which operator profile seeds the synthetic network, how
  many base stations it is scaled to, how much path redundancy it has and how
  widely link capacities spread (radio- vs transport- vs compute-constrained
  regimes);
* **tenants** -- population size, uRLLC/mMTC/eMBB template mix, penalty
  factors, and churn (arrival window and early departures);
* **demand** -- mean load and variability ranges plus the probability of
  seasonal (diurnal) and bursty (regime-switching) behaviour;
* **failures** -- probability and severity of degraded-capacity ("link
  failure") episodes applied to the generated network;
* **simulation** -- horizon, monitoring density and forecasting mode.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Mapping

from repro.core.slices import TEMPLATES
from repro.topology.operators import OPERATOR_PROFILES
from repro.utils.rng import spec_hash
from repro.utils.validation import (
    ensure_choice,
    ensure_ordered_pair,
    ensure_positive_int,
    ensure_probability,
)

#: Path-redundancy presets applied on top of the sampled operator profile.
#: They replace the profile's BS multi-homing degrees and ring flag, which is
#: what drives the mean number of candidate paths (Fig. 4: 6.6 for the
#: Romanian network vs 1.6 for the Italian one).
REDUNDANCY_LEVELS = ("low", "medium", "high")


def _int_pair(value, name: str, minimum: int = 1) -> tuple[int, int]:
    lo, hi = ensure_ordered_pair(value, name)
    if lo != int(lo) or hi != int(hi):
        raise ValueError(f"{name} must be an integer (min, max) pair, got {value!r}")
    lo, hi = int(lo), int(hi)
    if lo < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value!r}")
    return (lo, hi)


@dataclass(frozen=True)
class ScenarioFamily:
    """One named, content-hashable distribution over scenarios."""

    name: str = "default"

    # --- topology ----------------------------------------------------- #
    operator_profiles: tuple[str, ...] = ("romanian", "swiss", "italian")
    num_base_stations: tuple[int, int] = (2, 5)
    redundancy_levels: tuple[str, ...] = REDUNDANCY_LEVELS
    capacity_spread: tuple[float, float] = (0.7, 1.3)

    # --- tenants ------------------------------------------------------ #
    num_tenants: tuple[int, int] = (3, 8)
    template_weights: tuple[tuple[str, float], ...] = (
        ("eMBB", 1.0),
        ("mMTC", 1.0),
        ("uRLLC", 1.0),
    )
    penalty_factors: tuple[float, ...] = (1.0, 4.0)
    #: Fraction of the horizon within which tenants arrive (0 = everyone is
    #: known at epoch 0, as in Fig. 5/6; 1 = arrivals spread over the run).
    arrival_window_fraction: float = 0.0
    #: Minimum slice duration as a fraction of the post-arrival horizon;
    #: values below 1 produce mid-run departures (churn).
    min_duration_fraction: float = 1.0

    # --- demand ------------------------------------------------------- #
    mean_load_fraction: tuple[float, float] = (0.2, 0.7)
    relative_std: tuple[float, float] = (0.05, 0.5)
    seasonal_probability: float = 0.0
    bursty_probability: float = 0.0

    # --- failures ----------------------------------------------------- #
    degradation_probability: float = 0.0
    degraded_link_fraction: tuple[float, float] = (0.1, 0.3)
    degradation_factor: tuple[float, float] = (0.3, 0.8)
    #: Probability that the sampled scenario contains a *mid-run* link
    #: failure episode: at one epoch inside ``link_failure_window`` a subset
    #: of links permanently loses capacity, displacing admitted slices onto
    #: the re-homing path (contrast ``degradation_probability``, which
    #: degrades the network *before* the run starts).
    link_failure_probability: float = 0.0
    failed_link_fraction: tuple[float, float] = (0.1, 0.3)
    #: Remaining-capacity factor of each failed link, in (0, 1) -- links
    #: never vanish entirely (a TransportLink needs positive capacity).
    link_failure_factor: tuple[float, float] = (0.2, 0.6)
    #: Where in the horizon the episode lands, as fractions of the last
    #: epoch index; the sampled epoch is clamped to [1, num_epochs - 1] so
    #: the failure always interrupts an already-running scenario.
    link_failure_window: tuple[float, float] = (0.25, 0.75)

    # --- simulation --------------------------------------------------- #
    num_epochs: tuple[int, int] = (3, 6)
    samples_per_epoch: int = 8
    epochs_per_day: int = 24
    candidate_paths_per_pair: int = 3
    forecast_mode: str = "oracle"
    record_usage: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario family needs a non-empty name")
        if not self.operator_profiles:
            raise ValueError("operator_profiles must not be empty")
        for profile in self.operator_profiles:
            ensure_choice(profile, sorted(OPERATOR_PROFILES), "operator_profiles")
        object.__setattr__(
            self,
            "num_base_stations",
            _int_pair(self.num_base_stations, "num_base_stations"),
        )
        if not self.redundancy_levels:
            raise ValueError("redundancy_levels must not be empty")
        for level in self.redundancy_levels:
            ensure_choice(level, REDUNDANCY_LEVELS, "redundancy_levels")
        object.__setattr__(
            self,
            "capacity_spread",
            ensure_ordered_pair(self.capacity_spread, "capacity_spread", low=1e-6),
        )
        object.__setattr__(
            self, "num_tenants", _int_pair(self.num_tenants, "num_tenants")
        )
        if not self.template_weights:
            raise ValueError("template_weights must not be empty")
        weights = tuple((str(name), float(weight)) for name, weight in self.template_weights)
        for template_name, weight in weights:
            ensure_choice(template_name, sorted(TEMPLATES), "template_weights")
            if weight < 0:
                raise ValueError(
                    f"template_weights must be non-negative, got {template_name}={weight!r}"
                )
        if sum(weight for _name, weight in weights) <= 0:
            raise ValueError("template_weights must have positive total weight")
        object.__setattr__(self, "template_weights", weights)
        if not self.penalty_factors:
            raise ValueError("penalty_factors must not be empty")
        object.__setattr__(
            self, "penalty_factors", tuple(float(m) for m in self.penalty_factors)
        )
        ensure_probability(self.arrival_window_fraction, "arrival_window_fraction")
        ensure_probability(self.min_duration_fraction, "min_duration_fraction")
        if self.min_duration_fraction <= 0:
            raise ValueError(
                f"min_duration_fraction must be > 0, got {self.min_duration_fraction!r}"
            )
        object.__setattr__(
            self,
            "mean_load_fraction",
            ensure_ordered_pair(self.mean_load_fraction, "mean_load_fraction", 0.0, 1.0),
        )
        object.__setattr__(
            self,
            "relative_std",
            ensure_ordered_pair(self.relative_std, "relative_std", 0.0, 1.0),
        )
        ensure_probability(self.seasonal_probability, "seasonal_probability")
        ensure_probability(self.bursty_probability, "bursty_probability")
        if self.seasonal_probability + self.bursty_probability > 1.0 + 1e-9:
            raise ValueError(
                "seasonal_probability + bursty_probability must not exceed 1, got "
                f"{self.seasonal_probability!r} + {self.bursty_probability!r}"
            )
        ensure_probability(self.degradation_probability, "degradation_probability")
        ensure_probability(self.link_failure_probability, "link_failure_probability")
        object.__setattr__(
            self,
            "failed_link_fraction",
            ensure_ordered_pair(self.failed_link_fraction, "failed_link_fraction", 0.0, 1.0),
        )
        lo, hi = ensure_ordered_pair(
            self.link_failure_factor, "link_failure_factor", 1e-6, 1.0
        )
        if hi >= 1.0:
            raise ValueError(
                f"link_failure_factor must stay below 1, got {self.link_failure_factor!r}"
            )
        object.__setattr__(self, "link_failure_factor", (lo, hi))
        object.__setattr__(
            self,
            "link_failure_window",
            ensure_ordered_pair(self.link_failure_window, "link_failure_window", 0.0, 1.0),
        )
        object.__setattr__(
            self,
            "degraded_link_fraction",
            ensure_ordered_pair(
                self.degraded_link_fraction, "degraded_link_fraction", 0.0, 1.0
            ),
        )
        object.__setattr__(
            self,
            "degradation_factor",
            ensure_ordered_pair(self.degradation_factor, "degradation_factor", 1e-6, 1.0),
        )
        object.__setattr__(self, "num_epochs", _int_pair(self.num_epochs, "num_epochs"))
        ensure_positive_int(self.samples_per_epoch, "samples_per_epoch")
        ensure_positive_int(self.epochs_per_day, "epochs_per_day")
        ensure_positive_int(self.candidate_paths_per_pair, "candidate_paths_per_pair")
        ensure_choice(self.forecast_mode, ("oracle", "online"), "forecast_mode")

    # ------------------------------------------------------------------ #
    # Serialisation (campaign specs, run cache)
    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict[str, Any]:
        """JSON-level view of the family (tuples survive as lists).

        The mid-run link-failure knobs are omitted while they are inert
        (``link_failure_probability == 0``) so every family declared before
        they existed keeps its content hash -- and therefore every scenario
        ever sampled from it stays byte-identical.
        """
        payload = asdict(self)
        if self.link_failure_probability == 0:
            for knob in (
                "link_failure_probability",
                "failed_link_fraction",
                "link_failure_factor",
                "link_failure_window",
            ):
                del payload[knob]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioFamily":
        """Rebuild a family from :meth:`as_dict` output (or a JSON round trip)."""
        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown scenario-family fields: {unknown}")
        kwargs = dict(payload)
        if "template_weights" in kwargs:
            kwargs["template_weights"] = tuple(
                (str(name), float(weight)) for name, weight in kwargs["template_weights"]
            )
        for key, value in list(kwargs.items()):
            if isinstance(value, list):
                kwargs[key] = tuple(value)
        return cls(**kwargs)

    @property
    def family_hash(self) -> str:
        """Content hash of the declaration; folds into every derived seed."""
        return spec_hash(self.as_dict())

    def with_name(self, name: str) -> "ScenarioFamily":
        return replace(self, name=name)


# --------------------------------------------------------------------- #
# Presets
# --------------------------------------------------------------------- #
#: Small, static scenarios for the differential solver harness: everything
#: is known at epoch 0 (no churn) and horizons are short, so the exact MILP
#: stays fast enough to act as an oracle for dozens of sampled instances.
DIFFERENTIAL_FAMILY = ScenarioFamily(
    name="differential-small",
    num_base_stations=(2, 4),
    num_tenants=(3, 7),
    penalty_factors=(1.0, 4.0, 16.0),
    mean_load_fraction=(0.2, 0.8),
    relative_std=(0.05, 0.5),
    degradation_probability=0.3,
    num_epochs=(2, 3),
    samples_per_epoch=6,
)

#: Dynamic scenarios with churn, mixed demand regimes and failure episodes:
#: tenants arrive mid-run, some depart early, a quarter of the slices are
#: bursty and another quarter seasonal, and some networks run degraded.
CHURN_FAMILY = ScenarioFamily(
    name="mixed-churn",
    num_base_stations=(2, 5),
    num_tenants=(4, 10),
    arrival_window_fraction=0.6,
    min_duration_fraction=0.3,
    mean_load_fraction=(0.15, 0.75),
    relative_std=(0.05, 0.5),
    seasonal_probability=0.25,
    bursty_probability=0.25,
    degradation_probability=0.25,
    num_epochs=(6, 10),
    samples_per_epoch=8,
)

#: Seasonal tenants learnt online (the Fig. 8 behaviour, generalised): the
#: orchestrator has no oracle and must learn each slice's diurnal pattern
#: from monitoring data.
SEASONAL_ONLINE_FAMILY = ScenarioFamily(
    name="seasonal-online",
    num_base_stations=(2, 4),
    num_tenants=(3, 6),
    arrival_window_fraction=0.3,
    mean_load_fraction=(0.2, 0.6),
    relative_std=(0.05, 0.3),
    seasonal_probability=1.0,
    num_epochs=(8, 12),
    epochs_per_day=8,
    samples_per_epoch=6,
    forecast_mode="online",
    record_usage=True,
)

#: Mid-run link-failure episodes on otherwise moderate scenarios: every
#: sample schedules one capacity-loss event between a quarter and three
#: quarters of the way through the horizon.  The factors model a near-total
#: outage (0.1-1 % of the capacity survives) rather than mild congestion:
#: operator links are provisioned orders of magnitude above the slices'
#: reservations, so anything gentler never exceeds a damaged link's capacity
#: and the re-homing path would be declared but never exercised.
FAILURE_FAMILY = ScenarioFamily(
    name="link-failure",
    num_base_stations=(2, 4),
    num_tenants=(3, 7),
    arrival_window_fraction=0.3,
    min_duration_fraction=0.5,
    mean_load_fraction=(0.15, 0.6),
    relative_std=(0.05, 0.4),
    link_failure_probability=1.0,
    failed_link_fraction=(0.25, 0.5),
    link_failure_factor=(0.001, 0.01),
    num_epochs=(4, 7),
    samples_per_epoch=6,
)

FAMILIES: dict[str, ScenarioFamily] = {
    family.name: family
    for family in (
        DIFFERENTIAL_FAMILY,
        CHURN_FAMILY,
        SEASONAL_ONLINE_FAMILY,
        FAILURE_FAMILY,
    )
}
