"""Differential checking of the solver layer against exact oracles.

In the spirit of refinement checking -- validating an optimised
implementation against its specification -- this module treats the direct
HiGHS MILP (:class:`repro.core.milp_solver.DirectMILPSolver`) as the
specification of the AC-RR problem and checks two refinement claims on any
(generated) scenario:

* **exactness** (Theorem 2): the Benders decomposition converges to the same
  optimum as the monolithic MILP;
* **dominance**: the overbooking optimum is never worse than the
  no-overbooking baseline, because every baseline solution (reserve the full
  SLA) is overbooking-feasible with zero risk cost.

Both claims are evaluated on the *expected net revenue* ``-Psi`` of the
epoch-0 AC-RR instance derived from a scenario, which keeps the oracle a
pure solver-layer check (no simulation noise involved).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.core.baseline import NoOverbookingSolver
from repro.core.benders import BendersSolver
from repro.core.forecast_inputs import ForecastInput
from repro.core.milp_solver import DirectMILPSolver
from repro.core.problem import ACRRProblem, ProblemOptions
from repro.core.solution import OrchestrationDecision
from repro.simulation.scenario import Scenario
from repro.topology.generators import degrade_link_capacities
from repro.topology.network import NetworkTopology
from repro.topology.paths import compute_path_sets
from repro.traffic.patterns import demand_for_request
from repro.utils.executors import SerialExecutor, ThreadPoolRunExecutor
from repro.utils.rng import derive_seed
from repro.utils.validation import ensure_non_negative_int, ensure_positive_int

#: Convergence knobs for the Benders run used as the implementation under
#: test: the stopping tolerance is tight enough that any surviving gap
#: against the MILP is a real disagreement, not a loose stopping rule, and
#: the budget is an *iteration* cap with no wall-clock cutoff -- a time limit
#: would make the incumbent depend on machine speed and break the harness's
#: reproducibility contract.  The classic Benders tail can leave the bound
#: certificate open within this budget; the differential claim is about the
#: incumbent's net revenue, which the harness compares against the MILP.
_BENDERS_TOLERANCE = 1e-9
_BENDERS_MAX_ITERATIONS = 12


def _topology_at_epoch(scenario: Scenario, epoch: int) -> NetworkTopology:
    """The network as the control plane sees it at ``epoch``.

    Link-failure episodes are permanent, so every episode at or before
    ``epoch`` is folded in -- on a deep copy, because degradation mutates
    links in place and the scenario must stay reusable.
    """
    past = [event for event in scenario.link_failures if event.epoch <= epoch]
    if not past:
        return scenario.topology
    topology = copy.deepcopy(scenario.topology)
    for event in past:
        degrade_link_capacities(topology, event.links, event.capacity_factor)
    return topology


def problem_for_scenario(scenario: Scenario, epoch: int = 0) -> ACRRProblem:
    """The AC-RR instance a scenario poses at one decision epoch.

    Requests are the slices active at ``epoch``; forecasts are derived from
    each workload's demand statistics (mean and relative spread at that
    epoch), i.e. the steady-state knowledge the Fig. 5/6 evaluation assumes.
    Mid-run link failures scheduled at or before ``epoch`` are applied to
    the instance's topology, so the oracle judges the same (damaged)
    network the simulated control plane would be solving on.
    """
    ensure_non_negative_int(epoch, "epoch")
    topology = _topology_at_epoch(scenario, epoch)
    requests = []
    forecasts: dict[str, ForecastInput] = {}
    for workload in scenario.workloads:
        if not workload.request.is_active(epoch):
            continue
        requests.append(workload.request)
        model = demand_for_request(workload.request, workload.demand, seed=scenario.seed)
        mean = model.mean_mbps(epoch)
        sigma = model.std_mbps(epoch) / mean if mean > 0 else 1.0
        forecasts[workload.name] = ForecastInput(
            lambda_hat_mbps=mean, sigma_hat=min(max(sigma, 0.0), 1.0)
        ).clamped(workload.request.sla_mbps)
    if not requests:
        raise ValueError(
            f"scenario {scenario.name!r} has no active slice at epoch {epoch}"
        )
    path_set = compute_path_sets(
        topology, k=scenario.candidate_paths_per_pair
    )
    return ACRRProblem(
        topology=topology,
        path_set=path_set,
        requests=requests,
        forecasts=forecasts,
        options=ProblemOptions(epochs_per_day=scenario.epochs_per_day),
    )


@dataclass(frozen=True)
class DifferentialOutcome:
    """The three solver verdicts on one scenario's epoch-0 instance."""

    scenario_name: str
    milp_net_revenue: float
    benders_net_revenue: float
    baseline_net_revenue: float
    milp_accepted: int
    benders_accepted: int
    baseline_accepted: int
    benders_iterations: int
    rel_tolerance: float

    @property
    def benders_gap(self) -> float:
        """Absolute net-revenue disagreement between Benders and the MILP."""
        return abs(self.benders_net_revenue - self.milp_net_revenue)

    @property
    def benders_matches_milp(self) -> bool:
        """Exactness: Benders equals the MILP within the relative tolerance.

        The scale floors at 1.0 so near-zero optima compare on an absolute
        footing instead of demanding impossible relative precision.
        """
        return self.benders_gap <= self.rel_tolerance * max(
            abs(self.milp_net_revenue), 1.0
        )

    @property
    def dominates_baseline(self) -> bool:
        """Dominance: overbooking net revenue >= no-overbooking net revenue."""
        slack = self.rel_tolerance * max(abs(self.baseline_net_revenue), 1.0)
        return self.benders_net_revenue >= self.baseline_net_revenue - slack

    def describe(self) -> str:
        return (
            f"{self.scenario_name}: milp={self.milp_net_revenue:.9f} "
            f"benders={self.benders_net_revenue:.9f} "
            f"baseline={self.baseline_net_revenue:.9f} "
            f"(gap={self.benders_gap:.3e}, "
            f"admitted {self.benders_accepted}/{self.milp_accepted}/{self.baseline_accepted})"
        )


def decision_fingerprint(decision: OrchestrationDecision) -> tuple:
    """Exact (bit-level) fingerprint of an orchestration decision.

    Floats are compared through their exact values -- two decisions share a
    fingerprint only if every admission flag, anchoring compute unit, path
    and reservation is identical.  Solver diagnostics (runtimes, iteration
    counts) are deliberately excluded: they describe how the decision was
    found, not what it says.
    """
    allocations = []
    for name in sorted(decision.allocations):
        allocation = decision.allocations[name]
        allocations.append(
            (
                name,
                allocation.accepted,
                allocation.compute_unit,
                tuple(sorted(allocation.reservations_mbps.items())),
                tuple(
                    sorted(
                        (bs, path.base_station, path.compute_unit,
                         tuple(link.key for link in path.links))
                        for bs, path in allocation.paths.items()
                    )
                ),
            )
        )
    return (
        tuple(allocations),
        decision.objective_value,
        tuple(sorted(decision.deficits.items())),
    )


@dataclass(frozen=True)
class WarmStartOutcome:
    """Warm-vs-cold verdict over one scenario's perturbed-epoch sequence."""

    scenario_name: str
    num_instances: int
    mismatched_instances: tuple[int, ...]
    cold_iterations: int
    warm_iterations: int
    fast_path_hits: int

    @property
    def identical(self) -> bool:
        """Bit-identity: every warm decision equals its cold counterpart."""
        return not self.mismatched_instances

    def describe(self) -> str:
        return (
            f"{self.scenario_name}: {self.num_instances} instances, "
            f"{self.fast_path_hits} fast-path hits, iterations "
            f"cold={self.cold_iterations} warm={self.warm_iterations}"
            + (
                f", MISMATCH at {list(self.mismatched_instances)}"
                if self.mismatched_instances
                else ""
            )
        )


def _perturbed_forecast_sequence(
    problem: ACRRProblem, count: int, spread: float, seed: int
) -> list[ACRRProblem]:
    """Deterministic steady-state drift: small i.i.d. forecast rescalings.

    Models the regime the warm-start layer targets (thousands of Fig. 5/6/8
    epochs whose forecasts drift by a few percent while the admitted set
    stays put); each instance rescales every tenant's peak forecast by an
    independent factor in ``1 +- spread``, clamped to the SLA.
    """
    rng = np.random.default_rng(seed)
    instances = []
    for _ in range(count):
        scales = 1.0 + rng.uniform(-spread, spread, len(problem.requests))
        forecasts = {
            request.name: ForecastInput(
                lambda_hat_mbps=min(
                    problem.forecast(request.name).lambda_hat_mbps * float(scale),
                    request.sla_mbps,
                ),
                sigma_hat=problem.forecast(request.name).sigma_hat,
            )
            for request, scale in zip(problem.requests, scales)
        }
        instances.append(
            ACRRProblem(
                topology=problem.topology,
                path_set=problem.path_set,
                requests=problem.requests,
                forecasts=forecasts,
                options=problem.options,
            )
        )
    return instances


def warm_start_check(
    scenario: Scenario,
    epoch: int = 0,
    num_perturbations: int = 3,
    spread: float = 0.02,
    exact_tolerances: bool = False,
) -> WarmStartOutcome:
    """Differential warm-start oracle: warm Benders must equal cold Benders.

    Solves the scenario's epoch instance followed by ``num_perturbations``
    steady-state forecast drifts twice -- once with a warm-started solver
    carried across the whole sequence, once with a fresh cold solver per
    instance -- and fingerprints every pair of decisions.  The warm solver's
    fast path either *certifies* the previous optimum under the solver's own
    stopping rule or falls back to the exact cold trajectory, so any
    fingerprint mismatch is a bug in the warm-start layer.

    ``exact_tolerances`` switches both solvers to the differential harness's
    near-exact stopping rule (certificates must close to 1e-9, the regime of
    :func:`differential_check`); the default uses the production tolerances
    the orchestrator runs with.
    """
    ensure_non_negative_int(epoch, "epoch")
    ensure_positive_int(num_perturbations, "num_perturbations")

    def make_solver(warm: bool) -> BendersSolver:
        # Same budget discipline as differential_check: an *iteration* cap
        # and no wall-clock cutoffs, so the check is bounded yet machine
        # independent.  A warm run that cannot certify within the cap's
        # certificate quality simply falls back to the (equally capped)
        # cold trajectory.
        if exact_tolerances:
            return BendersSolver(
                tolerance=_BENDERS_TOLERANCE,
                relative_tolerance=_BENDERS_TOLERANCE,
                max_iterations=_BENDERS_MAX_ITERATIONS,
                master_time_limit_s=None,
                time_limit_s=None,
                warm_start=warm,
            )
        return BendersSolver(
            max_iterations=_BENDERS_MAX_ITERATIONS,
            master_time_limit_s=None,
            time_limit_s=None,
            warm_start=warm,
        )

    base = problem_for_scenario(scenario, epoch=epoch)
    instances = [base] + _perturbed_forecast_sequence(
        base,
        count=num_perturbations,
        spread=spread,
        seed=derive_seed(scenario.seed, "warm-start-oracle", scenario.name),
    )
    warm_solver = make_solver(True)
    mismatched: list[int] = []
    cold_iterations = warm_iterations = fast_path_hits = 0
    for index, instance in enumerate(instances):
        cold = make_solver(False).solve(instance)
        warm = warm_solver.solve(instance)
        cold_iterations += cold.stats.iterations
        warm_iterations += warm.stats.iterations
        fast_path_hits += int(warm.stats.cuts_warm > 0)
        if decision_fingerprint(cold) != decision_fingerprint(warm):
            mismatched.append(index)
    return WarmStartOutcome(
        scenario_name=scenario.name,
        num_instances=len(instances),
        mismatched_instances=tuple(mismatched),
        cold_iterations=cold_iterations,
        warm_iterations=warm_iterations,
        fast_path_hits=fast_path_hits,
    )


@dataclass(frozen=True)
class MultiCutOutcome:
    """Multi-cut-vs-single-cut-vs-MILP verdict on one scenario's instance."""

    scenario_name: str
    milp_net_revenue: float
    single_cut_net_revenue: float
    multi_cut_net_revenue: float
    worker_counts: tuple[int, ...]
    #: True when every worker count (serial included) produced a bit-identical
    #: decision fingerprint -- the determinism half of the multi-cut claim.
    fingerprints_identical: bool
    single_cut_iterations: int
    multi_cut_iterations: int
    num_blocks: int
    rel_tolerance: float

    def _close(self, a: float, b: float) -> bool:
        return abs(a - b) <= self.rel_tolerance * max(abs(b), 1.0)

    @property
    def multi_cut_matches_milp(self) -> bool:
        """Exactness: the disaggregated master reaches the MILP optimum."""
        return self._close(self.multi_cut_net_revenue, self.milp_net_revenue)

    @property
    def matches_single_cut(self) -> bool:
        """The disaggregation changes the trajectory, not the optimum."""
        return self._close(self.multi_cut_net_revenue, self.single_cut_net_revenue)

    def describe(self) -> str:
        return (
            f"{self.scenario_name}: milp={self.milp_net_revenue:.9f} "
            f"single={self.single_cut_net_revenue:.9f} "
            f"multi={self.multi_cut_net_revenue:.9f} "
            f"({self.num_blocks} blocks, iterations "
            f"single={self.single_cut_iterations} multi={self.multi_cut_iterations}, "
            f"workers {list(self.worker_counts)} "
            f"{'identical' if self.fingerprints_identical else 'DIVERGED'})"
        )


def multi_cut_check(
    scenario: Scenario,
    epoch: int = 0,
    rel_tolerance: float = 1e-6,
    worker_counts: tuple[int, ...] = (1, 2, 4),
    benders_max_iterations: int = _BENDERS_MAX_ITERATIONS,
) -> MultiCutOutcome:
    """Differential oracle for the multi-cut parallel Benders master.

    Solves one scenario's epoch instance with the exact MILP, single-cut
    Benders and multi-cut Benders under every requested worker count
    (``1`` means :class:`SerialExecutor`, ``>1`` a thread pool of that
    size).  The harness asserts two claims on the outcome:

    * exactness -- the multi-cut optimum equals the MILP (and hence the
      single-cut) optimum within ``rel_tolerance``;
    * determinism -- the multi-cut decision fingerprint is bit-identical
      for every worker count, because the per-block LP solves are
      independent deterministic problems whose cuts are folded back in
      deterministic block order regardless of completion order.
    """
    problem = problem_for_scenario(scenario, epoch=epoch)
    milp = DirectMILPSolver(time_limit_s=None, mip_rel_gap=1e-9).solve(problem)

    def make_solver(multi_cut: bool, executor=None) -> BendersSolver:
        return BendersSolver(
            tolerance=_BENDERS_TOLERANCE,
            relative_tolerance=_BENDERS_TOLERANCE,
            max_iterations=benders_max_iterations,
            master_time_limit_s=None,
            time_limit_s=None,
            multi_cut=multi_cut,
            executor=executor,
        )

    single = make_solver(False).solve(problem)
    fingerprints = []
    multi = None
    for workers in worker_counts:
        executor = (
            SerialExecutor() if workers <= 1 else ThreadPoolRunExecutor(workers)
        )
        decision = make_solver(True, executor).solve(problem)
        fingerprints.append(decision_fingerprint(decision))
        if multi is None:
            multi = decision
    assert multi is not None  # worker_counts is non-empty
    return MultiCutOutcome(
        scenario_name=scenario.name,
        milp_net_revenue=milp.expected_net_reward,
        single_cut_net_revenue=single.expected_net_reward,
        multi_cut_net_revenue=multi.expected_net_reward,
        worker_counts=tuple(worker_counts),
        fingerprints_identical=all(fp == fingerprints[0] for fp in fingerprints),
        single_cut_iterations=single.stats.iterations,
        multi_cut_iterations=multi.stats.iterations,
        num_blocks=len(problem.resource_blocks()),
        rel_tolerance=rel_tolerance,
    )


def differential_check(
    scenario: Scenario,
    epoch: int = 0,
    rel_tolerance: float = 1e-6,
    benders_max_iterations: int = _BENDERS_MAX_ITERATIONS,
) -> DifferentialOutcome:
    """Solve one scenario's AC-RR instance with all three solvers and compare.

    The returned outcome carries the raw numbers; the harness asserts its
    ``benders_matches_milp`` and ``dominates_baseline`` properties.
    """
    problem = problem_for_scenario(scenario, epoch=epoch)
    # Machine independence: every wall-clock cutoff is disabled (the MILP's
    # solve limit, the Benders loop limit and the per-master limit), so a
    # slow CI runner sees exactly the incumbents a fast laptop sees.
    milp = DirectMILPSolver(time_limit_s=None, mip_rel_gap=1e-9).solve(problem)
    benders = BendersSolver(
        tolerance=_BENDERS_TOLERANCE,
        relative_tolerance=_BENDERS_TOLERANCE,
        max_iterations=benders_max_iterations,
        master_time_limit_s=None,
        time_limit_s=None,
    ).solve(problem)
    baseline = NoOverbookingSolver(time_limit_s=None).solve(problem)
    return DifferentialOutcome(
        scenario_name=scenario.name,
        milp_net_revenue=milp.expected_net_reward,
        benders_net_revenue=benders.expected_net_reward,
        baseline_net_revenue=baseline.expected_net_reward,
        milp_accepted=milp.num_accepted,
        benders_accepted=benders.num_accepted,
        baseline_accepted=baseline.num_accepted,
        benders_iterations=benders.stats.iterations,
        rel_tolerance=rel_tolerance,
    )
