"""The ``generated`` campaign run kind: sweeping random scenario families.

Each run samples one scenario from a :class:`ScenarioFamily` (carried in the
spec's params as its JSON-level dict) and simulates it under one policy
through the standard campaign machinery -- cached, resumable, executor
agnostic.  The per-run seed derives from the campaign base seed and the
spec's scenario identity (family + scenario index, policy excluded), so:

* every scenario index samples an independent scenario, and
* all policies of one index replay the *same* sampled scenario and demand
  traces -- the comparisons stay paired, exactly like the figure campaigns.

Like every other campaign kind, the generated runs drive the control plane
through the northbound :class:`~repro.api.broker.SliceBroker` facade (the
simulation engine is a broker driver).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    RunSpec,
    register_run_kind,
)
from repro.scenarios.family import FAMILIES, ScenarioFamily
from repro.scenarios.generator import scenario_fingerprint
from repro.utils.validation import ensure_positive_int

#: Default policies swept per sampled scenario (overbooking vs baseline).
DEFAULT_POLICIES = ("optimal", "no-overbooking")


@register_run_kind("generated")
def _run_generated_spec(spec: RunSpec) -> dict[str, Any]:
    """Sample the spec's scenario and simulate it under the spec's policy."""
    from repro.experiments.campaign import build_scenario
    from repro.simulation.runner import run_scenario, simulation_record

    # Route through build_scenario so the family rebuild and the seed
    # fallback live in exactly one place (the campaign layer's "generated"
    # branch).
    scenario = build_scenario(
        {"scenario": "generated", "family": spec.params["family"]}, seed=spec.seed
    )
    result = run_scenario(
        scenario,
        policy=spec.policy or "optimal",
        stop_on_converged_revenue=spec.stop_on_converged_revenue,
    )
    record = simulation_record(result)
    record["extras"]["family"] = str(spec.params["family"]["name"])
    record["extras"]["scenario_fingerprint"] = scenario_fingerprint(scenario)
    return record


def generated_campaign(
    family: ScenarioFamily | str,
    num_scenarios: int = 8,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    base_seed: int = 7,
) -> Campaign:
    """Declare a sweep over ``num_scenarios`` samples of one family.

    ``family`` may be a preset name (see :data:`repro.scenarios.FAMILIES`)
    or a full :class:`ScenarioFamily`.  The family declaration travels in
    every spec, so cached records are keyed by the family *content*: editing
    a knob invalidates exactly the runs it affects.
    """
    if isinstance(family, str):
        try:
            family = FAMILIES[family]
        except KeyError:
            raise KeyError(
                f"unknown scenario family {family!r}; expected one of {sorted(FAMILIES)}"
            ) from None
    num_scenarios = ensure_positive_int(num_scenarios, "num_scenarios")
    specs = [
        RunSpec(
            experiment=f"generated-{family.name}",
            kind="generated",
            params={"family": family.as_dict(), "scenario_index": index},
            policy=policy,
        )
        for index in range(num_scenarios)
        for policy in policies
    ]
    return Campaign(
        name=f"generated-{family.name}", specs=tuple(specs), base_seed=base_seed
    )


# --------------------------------------------------------------------- #
# Reduction
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class GeneratedScenarioRow:
    """Reduced outcome of one sampled scenario across the swept policies."""

    scenario_index: int
    scenario_name: str
    fingerprint: str
    net_revenue: dict[str, float]
    num_admitted: dict[str, int]

    def gain_over(self, policy: str, baseline: str) -> float:
        """Absolute net-revenue gain of ``policy`` over ``baseline``."""
        return self.net_revenue[policy] - self.net_revenue[baseline]


def reduce_generated(result: CampaignResult) -> list[GeneratedScenarioRow]:
    """Fold the campaign records into one row per sampled scenario."""
    by_index: dict[int, dict[str, Any]] = {}
    for record in result.records:
        index = int(record.spec.params["scenario_index"])
        policy = record.spec.policy or "optimal"
        row = by_index.setdefault(
            index,
            {
                "scenario_name": record.extras.get("scenario_name", ""),
                "fingerprint": record.extras.get("scenario_fingerprint", ""),
                "net_revenue": {},
                "num_admitted": {},
            },
        )
        row["net_revenue"][policy] = float(record.summary["net_revenue"])
        row["num_admitted"][policy] = int(record.summary["num_admitted"])
    return [
        GeneratedScenarioRow(scenario_index=index, **by_index[index])
        for index in sorted(by_index)
    ]


def format_generated(
    rows: list[GeneratedScenarioRow], baseline: str = "no-overbooking"
) -> str:
    """Human-readable summary of a generated-family sweep."""
    lines = []
    dominated = 0
    comparable = 0
    for row in rows:
        cells = ", ".join(
            f"{policy}={revenue:.2f}" for policy, revenue in sorted(row.net_revenue.items())
        )
        suffix = ""
        others = [p for p in row.net_revenue if p != baseline]
        if baseline in row.net_revenue and others:
            comparable += 1
            best = max(row.gain_over(policy, baseline) for policy in others)
            if best >= -1e-9:
                dominated += 1
            suffix = f"  (gain over {baseline}: {best:+.2f})"
        lines.append(f"scenario {row.scenario_index:>3}: {cells}{suffix}")
    if comparable:
        lines.append(
            f"overbooking >= {baseline} on {dominated}/{comparable} sampled scenarios"
        )
    return "\n".join(lines)
