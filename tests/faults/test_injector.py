"""FaultInjector semantics: deterministic firing, budgets, attempts, links."""

from __future__ import annotations

import pytest

from repro.faults import (
    HOOK_FORECAST,
    HOOK_SOLVER,
    HOOK_TOPOLOGY,
    ChaosSolver,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    SolverBudgetExceededError,
    TransientSolverError,
)
from tests.conftest import build_tiny_topology


def solver_fault(kind: FaultKind, epoch: int = 0, times: int = 1) -> FaultSpec:
    return FaultSpec(hook=HOOK_SOLVER, epoch=epoch, kind=kind, times=times)


class TestFiring:
    def test_fire_covers_consecutive_invocations_in_plan_order(self):
        plan = FaultPlan.of(
            solver_fault(FaultKind.TRANSIENT, times=2),
            solver_fault(FaultKind.BUDGET, times=1),
        )
        injector = FaultInjector(plan)
        injector.begin_epoch(0)
        kinds = [getattr(injector.fire(HOOK_SOLVER), "kind", None) for _ in range(4)]
        assert kinds == [
            FaultKind.TRANSIENT,
            FaultKind.TRANSIENT,
            FaultKind.BUDGET,
            None,
        ]

    def test_faults_anchor_to_the_current_epoch(self):
        plan = FaultPlan.of(solver_fault(FaultKind.CRASH, epoch=1))
        injector = FaultInjector(plan)
        injector.begin_epoch(0)
        assert injector.fire(HOOK_SOLVER) is None
        injector.begin_epoch(1)
        assert injector.fire(HOOK_SOLVER).kind is FaultKind.CRASH

    @pytest.mark.parametrize(
        "kind,expected",
        [
            (FaultKind.TRANSIENT, TransientSolverError),
            (FaultKind.BUDGET, SolverBudgetExceededError),
            (FaultKind.CRASH, InjectedFaultError),
        ],
        ids=lambda value: getattr(value, "value", getattr(value, "__name__", value)),
    )
    def test_enact_raises_the_kind_specific_exception(self, kind, expected):
        injector = FaultInjector(FaultPlan.of(solver_fault(kind)))
        injector.begin_epoch(0)
        with pytest.raises(expected):
            injector.enact(HOOK_SOLVER)

    def test_enact_is_a_no_op_without_a_covering_spec(self):
        injector = FaultInjector(FaultPlan.empty())
        injector.begin_epoch(0)
        injector.enact(HOOK_SOLVER)
        injector.enact(HOOK_FORECAST)
        assert injector.fired == []


class TestAttemptAccounting:
    def test_fired_in_attempt_excludes_a_rolled_back_attempt(self):
        plan = FaultPlan.of(
            FaultSpec(hook=HOOK_FORECAST, epoch=1, kind=FaultKind.CRASH)
        )
        injector = FaultInjector(plan)
        injector.begin_epoch(1)
        with pytest.raises(InjectedFaultError):
            injector.enact(HOOK_FORECAST)
        # The epoch is retried: a fresh attempt starts, the fault's budget is
        # spent, so the retry is clean -- and its report must not inherit the
        # first attempt's fault.
        injector.begin_epoch(1)
        injector.enact(HOOK_FORECAST)
        assert injector.fired_in_attempt() == []
        assert len(injector.fired_in_epoch(1)) == 1

    def test_fired_in_epoch_spans_all_attempts(self):
        plan = FaultPlan.of(
            FaultSpec(hook=HOOK_FORECAST, epoch=0, kind=FaultKind.CRASH, times=2)
        )
        injector = FaultInjector(plan)
        for _ in range(2):
            injector.begin_epoch(0)
            with pytest.raises(InjectedFaultError):
                injector.enact(HOOK_FORECAST)
        assert len(injector.fired_in_epoch(0)) == 2
        assert len(injector.fired_in_attempt()) == 1


class TestLinkFaults:
    def link_plan(self, **params) -> FaultPlan:
        params.setdefault("factor", 0.5)
        return FaultPlan.of(
            FaultSpec(
                hook=HOOK_TOPOLOGY, epoch=1, kind=FaultKind.LINK_DOWN, params=params
            ),
            seed=5,
        )

    def test_explicit_links_resolve_verbatim_with_normalised_keys(self):
        topology = build_tiny_topology()
        plan = self.link_plan(links=[["sw", "bs-0"]])
        injector = FaultInjector(plan)
        assert injector.link_faults(1, topology) == [(("bs-0", "sw"), 0.5)]
        assert injector.fired_in_epoch(1)[0].hook == HOOK_TOPOLOGY

    def test_fractional_specs_resolve_deterministically(self):
        topology = build_tiny_topology()
        plan = self.link_plan(fraction=0.5)
        first = FaultInjector(plan).link_faults(1, topology)
        second = FaultInjector(plan).link_faults(1, topology)
        assert first == second
        assert len(first) == 2  # ceil(0.5 * 4 links)
        valid_keys = {link.key for link in topology.links}
        assert {key for key, _ in first} <= valid_keys

    def test_seed_steers_fractional_link_choice(self):
        topology = build_tiny_topology(num_base_stations=6)
        spec = FaultSpec(
            hook=HOOK_TOPOLOGY,
            epoch=1,
            kind=FaultKind.LINK_DOWN,
            params={"factor": 0.5, "fraction": 0.3},
        )
        picks = {
            tuple(FaultInjector(FaultPlan.of(spec, seed=seed)).link_faults(1, topology))
            for seed in range(8)
        }
        assert len(picks) > 1

    def test_resolution_is_idempotent_per_epoch(self):
        # A rolled-back epoch's retry calls link_faults again; resolving the
        # same specs twice would damage the topology twice.
        topology = build_tiny_topology()
        injector = FaultInjector(self.link_plan(links=[["bs-0", "sw"]]))
        assert injector.link_faults(1, topology)
        assert injector.link_faults(1, topology) == []
        assert len(injector.fired_in_epoch(1)) == 1


class TestChaosSolver:
    class Recorder:
        def __init__(self):
            self.solved = []
            self.restored = []

        def solve(self, problem):
            self.solved.append(problem)
            return "decision"

        def snapshot_state(self):
            return {"warm": 1}

        def restore_state(self, snapshot):
            self.restored.append(snapshot)

    def test_proxies_solve_and_injects_solver_faults(self):
        inner = self.Recorder()
        injector = FaultInjector(FaultPlan.of(solver_fault(FaultKind.CRASH)))
        proxy = ChaosSolver(inner, injector)
        injector.begin_epoch(0)
        with pytest.raises(InjectedFaultError):
            proxy.solve("problem")
        assert inner.solved == []  # the fault fires before the real solve
        assert proxy.solve("problem") == "decision"
        assert inner.solved == ["problem"]

    def test_delegates_warm_start_snapshots(self):
        inner = self.Recorder()
        proxy = ChaosSolver(inner, FaultInjector(FaultPlan.empty()))
        assert proxy.snapshot_state() == {"warm": 1}
        proxy.restore_state({"warm": 2})
        assert inner.restored == [{"warm": 2}]

    def test_tolerates_inner_solvers_without_snapshot_support(self):
        class Bare:
            def solve(self, problem):
                return problem

        proxy = ChaosSolver(Bare(), FaultInjector(FaultPlan.empty()))
        assert proxy.snapshot_state() is None
        proxy.restore_state(None)  # must not raise
