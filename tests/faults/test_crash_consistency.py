"""Crash-consistent epochs under the full fault matrix.

Every injected fault must leave the broker in exactly one of two states:

* the epoch raised and the control plane was restored byte-identically to
  its pre-epoch state (verified via ``control_plane_fingerprint``), after
  which a clean retry commits; or
* the epoch committed a consistent decision flagged ``degraded`` in its
  report, with no-overbooking-tier decisions matching the
  :class:`NoOverbookingSolver` oracle bit for bit.

The fast matrix below runs in the unit shard; the exhaustive generated
sweeps are ``chaos``-marked and run in CI's time-capped chaos job.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import BrokerError, SliceBroker, SliceRequestV1, SolverError
from repro.core.baseline import NoOverbookingSolver
from repro.core.forecast_inputs import ForecastInput
from repro.core.milp_solver import DirectMILPSolver
from repro.faults import (
    HOOK_CLOUD_APPLY,
    HOOK_FORECAST,
    HOOK_RAN_APPLY,
    HOOK_SOLVER,
    HOOK_TOPOLOGY,
    HOOK_TRANSPORT_APPLY,
    TIER_NO_OVERBOOKING,
    TIER_PRIMARY,
    FaultKind,
    FaultPlan,
    FaultSpec,
    control_plane_fingerprint,
)
from repro.scenarios import DIFFERENTIAL_FAMILY, decision_fingerprint, sample_scenario
from repro.topology import operators
from tests.differential.conftest import BASE_SEED

#: Every (hook, kind) pair the fault matrix covers.  LINK_DOWN gets a
#: fractional spec so any topology works.
FAULT_MATRIX = [
    (HOOK_SOLVER, FaultKind.TRANSIENT),
    (HOOK_SOLVER, FaultKind.CRASH),
    (HOOK_SOLVER, FaultKind.BUDGET),
    (HOOK_FORECAST, FaultKind.CRASH),
    (HOOK_RAN_APPLY, FaultKind.CRASH),
    (HOOK_TRANSPORT_APPLY, FaultKind.CRASH),
    (HOOK_CLOUD_APPLY, FaultKind.CRASH),
    (HOOK_TOPOLOGY, FaultKind.LINK_DOWN),
]

#: Hooks whose crash faults fail the epoch (controller applies fire inside
#: the commit path).  Everything else degrades and commits: solver faults
#: are absorbed by the safeguard chain, forecast faults by the pessimistic
#: fallback, link faults by re-homing.
ROLLBACK_HOOKS = {HOOK_RAN_APPLY, HOOK_TRANSPORT_APPLY, HOOK_CLOUD_APPLY}


def make_spec(hook: str, kind: FaultKind, epoch: int, times: int = 1) -> FaultSpec:
    params = {"factor": 0.5, "fraction": 0.5} if kind is FaultKind.LINK_DOWN else {}
    return FaultSpec(hook=hook, epoch=epoch, kind=kind, times=times, params=params)


def make_chaos_broker(plan: FaultPlan) -> SliceBroker:
    broker = SliceBroker(
        topology=operators.testbed_topology(), solver=DirectMILPSolver()
    )
    broker.enable_chaos(plan)
    broker.submit(SliceRequestV1.of("u1", "uRLLC", duration_epochs=6))
    broker.submit(
        SliceRequestV1.of("u2", "uRLLC", duration_epochs=4, arrival_epoch=1)
    )
    return broker


def advance_with_invariant(broker: SliceBroker, epoch: int, max_attempts: int = 10):
    """Advance one epoch, asserting the fault-matrix invariant.

    Retries after byte-identical rollbacks (a fault spec with ``times > 1``
    can fail several consecutive attempts) and returns the committing
    report.  The randomized sweep can stack up to 3 faults x times 3 = 9
    failing attempts on one epoch, so the bound must leave a 10th attempt
    for the commit.
    """
    orchestrator = broker.orchestrator
    for _ in range(max_attempts):
        before = control_plane_fingerprint(orchestrator)
        try:
            report = broker.advance_epoch(epoch)
        except BrokerError:
            assert control_plane_fingerprint(orchestrator) == before, (
                "a failed epoch must restore the pre-epoch control-plane state"
            )
            continue
        fired = broker._fault_injector.fired_in_attempt()
        if fired:
            assert report.degraded, (
                f"epoch {epoch} committed undegraded although {fired} fired"
            )
            assert report.degraded_reasons
        if (
            report.solver_tier == TIER_NO_OVERBOOKING
            and broker.last_problem is not None
        ):
            oracle = NoOverbookingSolver().solve(broker.last_problem)
            assert decision_fingerprint(broker.last_decision) == decision_fingerprint(
                oracle
            ), "no-overbooking-tier decisions must match the oracle bit for bit"
        return report
    pytest.fail(f"epoch {epoch} never committed within {max_attempts} attempts")


class TestFastFaultMatrix:
    @pytest.mark.parametrize(
        "hook,kind", FAULT_MATRIX, ids=[f"{h}-{k.value}" for h, k in FAULT_MATRIX]
    )
    def test_every_fault_rolls_back_or_commits_degraded(self, hook, kind):
        plan = FaultPlan.of(make_spec(hook, kind, epoch=1))
        broker = make_chaos_broker(plan)
        clean = broker.advance_epoch(0)
        assert not clean.degraded and clean.health == "healthy"

        orchestrator = broker.orchestrator
        before = control_plane_fingerprint(orchestrator)
        if hook in ROLLBACK_HOOKS:
            with pytest.raises(SolverError):
                broker.advance_epoch(1)
            assert control_plane_fingerprint(orchestrator) == before
            retry = broker.advance_epoch(1)
            assert not retry.degraded
            assert retry.health == "degraded"  # the rollback still counts
            assert "u2" in retry.accepted + retry.rejected  # got its verdict
        else:
            report = broker.advance_epoch(1)
            assert report.degraded
            assert report.health != "healthy"
            assert report.degraded_reasons
            assert broker._fault_injector.fired_in_epoch(1)
            if report.solver_tier == TIER_NO_OVERBOOKING:
                oracle = NoOverbookingSolver().solve(broker.last_problem)
                assert decision_fingerprint(
                    broker.last_decision
                ) == decision_fingerprint(oracle)

    def test_single_transient_is_absorbed_by_the_retry_tier(self):
        plan = FaultPlan.of(make_spec(HOOK_SOLVER, FaultKind.TRANSIENT, epoch=1))
        broker = make_chaos_broker(plan)
        broker.advance_epoch(0)
        report = broker.advance_epoch(1)
        assert report.solver_tier == TIER_PRIMARY
        assert report.solver_retries == 1
        assert report.degraded

    def test_transient_storm_exhausts_retries_and_falls_back(self):
        plan = FaultPlan.of(
            make_spec(HOOK_SOLVER, FaultKind.TRANSIENT, epoch=1, times=3)
        )
        broker = make_chaos_broker(plan)
        broker.advance_epoch(0)
        report = broker.advance_epoch(1)
        # u2 arrives at epoch 1, so the certified epoch-0 decision cannot be
        # replayed (the request set changed): the chain lands on the
        # no-overbooking tier.
        assert report.solver_tier == TIER_NO_OVERBOOKING
        assert report.solver_retries == 2
        oracle = NoOverbookingSolver().solve(broker.last_problem)
        assert decision_fingerprint(broker.last_decision) == decision_fingerprint(
            oracle
        )

    def test_health_recovers_after_consecutive_clean_epochs(self):
        plan = FaultPlan.of(make_spec(HOOK_SOLVER, FaultKind.CRASH, epoch=1))
        broker = make_chaos_broker(plan)
        broker.advance_epoch(0)
        assert broker.advance_epoch(1).health == "degraded"
        states = [broker.advance_epoch(epoch).health for epoch in range(2, 5)]
        assert states[-1] == "healthy", states


class TestZeroFaultIdentity:
    def report_key(self, report) -> dict:
        payload = report.to_dict()
        payload.pop("solver_runtime_s")
        return payload

    def test_empty_plan_reproduces_an_uninstrumented_run(self):
        def build(chaos: bool) -> SliceBroker:
            broker = SliceBroker(
                topology=operators.testbed_topology(), solver=DirectMILPSolver()
            )
            if chaos:
                broker.enable_chaos(FaultPlan.empty())
            broker.submit(SliceRequestV1.of("u1", "uRLLC", duration_epochs=4))
            broker.submit(
                SliceRequestV1.of("u2", "uRLLC", duration_epochs=3, arrival_epoch=1)
            )
            return broker

        plain, chaos = build(False), build(True)
        for epoch in range(5):
            plain_report = plain.advance_epoch(epoch)
            chaos_report = chaos.advance_epoch(epoch)
            assert self.report_key(chaos_report) == self.report_key(plain_report)
            assert decision_fingerprint(chaos.last_decision) == decision_fingerprint(
                plain.last_decision
            )
        assert [s.to_dict() for s in chaos.list_slices()] == [
            s.to_dict() for s in plain.list_slices()
        ]


def scenario_broker(scenario) -> SliceBroker:
    """A chaos-ready broker loaded with one generated scenario's tenants.

    The direct MILP keeps every sampled instance sub-second; the sweep
    checks fault-handling invariants, not solver performance (the
    differential shard owns Benders-vs-MILP equivalence).
    """
    broker = SliceBroker(topology=scenario.topology, solver=DirectMILPSolver())
    broker.submit_batch([workload.request for workload in scenario.workloads])
    broker.set_forecast_overrides(
        {
            workload.name: ForecastInput(
                lambda_hat_mbps=0.4 * workload.request.sla_mbps, sigma_hat=0.25
            )
            for workload in scenario.workloads
        }
    )
    return broker


@pytest.mark.chaos
class TestGeneratedFaultSweep:
    @pytest.mark.parametrize("offset", range(4))
    @pytest.mark.parametrize(
        "hook,kind", FAULT_MATRIX, ids=[f"{h}-{k.value}" for h, k in FAULT_MATRIX]
    )
    def test_fault_matrix_on_generated_scenarios(self, offset, hook, kind):
        seed = BASE_SEED + offset
        scenario = sample_scenario(DIFFERENTIAL_FAMILY, seed=seed)
        epoch = min(1, scenario.num_epochs - 1)
        broker = scenario_broker(scenario)
        broker.enable_chaos(FaultPlan.of(make_spec(hook, kind, epoch=epoch), seed=seed))
        for current in range(scenario.num_epochs):
            advance_with_invariant(broker, current)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_randomized_fault_schedules(self, data):
        seed = BASE_SEED + data.draw(st.integers(0, 40), label="scenario offset")
        scenario = sample_scenario(DIFFERENTIAL_FAMILY, seed=seed)
        specs = []
        for index in range(data.draw(st.integers(1, 3), label="num faults")):
            hook, kind = data.draw(
                st.sampled_from(FAULT_MATRIX), label=f"fault {index}"
            )
            epoch = data.draw(
                st.integers(0, scenario.num_epochs - 1), label=f"epoch {index}"
            )
            times = data.draw(st.integers(1, 3), label=f"times {index}")
            specs.append(make_spec(hook, kind, epoch=epoch, times=times))
        broker = scenario_broker(scenario)
        broker.enable_chaos(FaultPlan.of(*specs, seed=seed))
        for epoch in range(scenario.num_epochs):
            advance_with_invariant(broker, epoch)
