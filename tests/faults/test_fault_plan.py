"""FaultPlan DSL contract: validation, ordering, hashing, serialisation."""

from __future__ import annotations

import json

import pytest

from repro.faults import (
    ALL_HOOKS,
    HOOK_CLOUD_APPLY,
    HOOK_FORECAST,
    HOOK_RAN_APPLY,
    HOOK_SOLVER,
    HOOK_TOPOLOGY,
    HOOK_TRANSPORT_APPLY,
    FaultKind,
    FaultPlan,
    FaultSpec,
)


def link_down(epoch: int = 0, **params) -> FaultSpec:
    params.setdefault("factor", 0.5)
    params.setdefault("fraction", 0.5)
    return FaultSpec(
        hook=HOOK_TOPOLOGY, epoch=epoch, kind=FaultKind.LINK_DOWN, params=params
    )


class TestSpecValidation:
    def test_unknown_hook_is_rejected(self):
        with pytest.raises(ValueError, match="unknown hook point"):
            FaultSpec(hook="solver.bogus", epoch=0, kind=FaultKind.CRASH)

    def test_negative_epoch_is_rejected(self):
        with pytest.raises(ValueError, match="epoch"):
            FaultSpec(hook=HOOK_SOLVER, epoch=-1, kind=FaultKind.CRASH)

    def test_times_must_be_positive(self):
        with pytest.raises(ValueError, match="times"):
            FaultSpec(hook=HOOK_SOLVER, epoch=0, kind=FaultKind.CRASH, times=0)

    @pytest.mark.parametrize(
        "kind,legal_hooks",
        [
            (FaultKind.TRANSIENT, {HOOK_SOLVER}),
            (FaultKind.BUDGET, {HOOK_SOLVER}),
            (
                FaultKind.CRASH,
                {
                    HOOK_SOLVER,
                    HOOK_RAN_APPLY,
                    HOOK_TRANSPORT_APPLY,
                    HOOK_CLOUD_APPLY,
                    HOOK_FORECAST,
                },
            ),
            (FaultKind.LINK_DOWN, {HOOK_TOPOLOGY}),
        ],
        ids=lambda value: value.value if isinstance(value, FaultKind) else "hooks",
    )
    def test_kind_hook_compatibility_matrix(self, kind, legal_hooks):
        params = {"factor": 0.5, "fraction": 0.5} if kind is FaultKind.LINK_DOWN else {}
        for hook in ALL_HOOKS:
            if hook in legal_hooks:
                FaultSpec(hook=hook, epoch=0, kind=kind, params=params)
            else:
                with pytest.raises(ValueError, match="cannot target hook"):
                    FaultSpec(hook=hook, epoch=0, kind=kind, params=params)

    @pytest.mark.parametrize("factor", [None, 0.0, 1.0, -0.1, "half"])
    def test_link_down_factor_must_be_in_open_unit_interval(self, factor):
        with pytest.raises(ValueError, match="factor"):
            FaultSpec(
                hook=HOOK_TOPOLOGY,
                epoch=0,
                kind=FaultKind.LINK_DOWN,
                params={"factor": factor, "fraction": 0.5},
            )

    @pytest.mark.parametrize("fraction", [None, 0.0, 1.5, -1])
    def test_link_down_without_links_needs_valid_fraction(self, fraction):
        with pytest.raises(ValueError, match="fraction"):
            FaultSpec(
                hook=HOOK_TOPOLOGY,
                epoch=0,
                kind=FaultKind.LINK_DOWN,
                params={"factor": 0.5, "fraction": fraction},
            )

    def test_link_down_with_explicit_links_needs_no_fraction(self):
        spec = FaultSpec(
            hook=HOOK_TOPOLOGY,
            epoch=2,
            kind=FaultKind.LINK_DOWN,
            params={"factor": 0.25, "links": [["bs-0", "sw"]]},
        )
        assert spec.params["links"] == [["bs-0", "sw"]]

    def test_kind_accepts_raw_strings(self):
        spec = FaultSpec(hook=HOOK_SOLVER, epoch=0, kind="transient")
        assert spec.kind is FaultKind.TRANSIENT


class TestPlan:
    def test_empty_plan_is_falsy_and_has_no_max_epoch(self):
        plan = FaultPlan.empty()
        assert not plan
        assert plan.max_epoch == -1
        assert plan.specs_for(HOOK_SOLVER, 0) == []

    def test_specs_for_preserves_plan_order(self):
        first = FaultSpec(hook=HOOK_SOLVER, epoch=1, kind=FaultKind.TRANSIENT, times=2)
        second = FaultSpec(hook=HOOK_SOLVER, epoch=1, kind=FaultKind.CRASH)
        other = FaultSpec(hook=HOOK_FORECAST, epoch=1, kind=FaultKind.CRASH)
        plan = FaultPlan.of(first, other, second)
        assert plan.specs_for(HOOK_SOLVER, 1) == [first, second]
        assert plan.specs_for(HOOK_SOLVER, 0) == []
        assert plan.max_epoch == 1

    def test_round_trips_through_json(self):
        plan = FaultPlan.of(
            FaultSpec(hook=HOOK_SOLVER, epoch=0, kind=FaultKind.TRANSIENT, times=3),
            link_down(epoch=2),
            seed=17,
        )
        rebuilt = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert rebuilt == plan
        assert rebuilt.plan_hash() == plan.plan_hash()

    def test_unsupported_schema_version_is_rejected(self):
        payload = FaultPlan.empty().to_dict() | {"schema_version": 99}
        with pytest.raises(ValueError, match="schema version"):
            FaultPlan.from_dict(payload)

    def test_missing_spec_field_is_a_value_error(self):
        with pytest.raises(ValueError, match="missing field"):
            FaultSpec.from_dict({"hook": HOOK_SOLVER, "kind": "crash"})

    def test_plan_hash_is_content_based(self):
        spec = FaultSpec(hook=HOOK_SOLVER, epoch=0, kind=FaultKind.CRASH)
        assert FaultPlan.of(spec).plan_hash() == FaultPlan.of(spec).plan_hash()
        # Sensitive to every ingredient: specs, their params, and the seed.
        assert (
            FaultPlan.of(spec, seed=1).plan_hash() != FaultPlan.of(spec).plan_hash()
        )
        assert (
            FaultPlan.of(link_down(factor=0.5)).plan_hash()
            != FaultPlan.of(link_down(factor=0.4)).plan_hash()
        )

    def test_hash_ignores_python_level_representation_details(self):
        # A plan rebuilt from its own payload hashes identically, even though
        # params dicts were re-created along the way.
        plan = FaultPlan.of(link_down(epoch=1), seed=3)
        assert FaultPlan.from_dict(plan.to_dict()).plan_hash() == plan.plan_hash()
