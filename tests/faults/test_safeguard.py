"""SafeguardedSolver chain and HealthMonitor state machine."""

from __future__ import annotations

import copy

import pytest

from repro.core.baseline import NoOverbookingSolver
from repro.core.milp_solver import DirectMILPSolver
from repro.core.problem import ACRRProblem
from repro.core.solution import OrchestrationDecision, SolverStats, TenantAllocation
from repro.faults import (
    TIER_NO_OVERBOOKING,
    TIER_PRIMARY,
    TIER_REJECT_ALL,
    TIER_WARM_REPLAY,
    BrokerHealth,
    HealthMonitor,
    SafeguardedSolver,
    SolverBudgetExceededError,
    TransientSolverError,
)
from repro.scenarios import decision_fingerprint
from repro.topology.generators import degrade_link_capacities
from repro.topology.paths import compute_path_sets
from tests.conftest import low_load_forecasts


class FlakyPrimary:
    """DirectMILPSolver wrapper that raises a scripted exception sequence."""

    def __init__(self, failures=()):
        self.inner = DirectMILPSolver()
        self.failures = list(failures)
        self.calls = 0

    def solve(self, problem):
        self.calls += 1
        if self.failures:
            raise self.failures.pop(0)
        return self.inner.solve(problem)


class TestChainTiers:
    def test_clean_solve_returns_the_primary_decision_untouched(self, mixed_problem):
        returned = []

        class Recording(FlakyPrimary):
            def solve(self, problem):
                decision = super().solve(problem)
                returned.append(decision)
                return decision

        chain = SafeguardedSolver(Recording())
        decision = chain.solve(mixed_problem)
        # Identity, not equality: the chain must not even restamp the stats,
        # so a zero-fault chained run is byte-identical to an unchained one.
        assert decision is returned[0]
        assert chain.health.state is BrokerHealth.HEALTHY

    def test_transient_failure_is_retried_on_the_primary_tier(self, mixed_problem):
        primary = FlakyPrimary([TransientSolverError("blip")])
        chain = SafeguardedSolver(primary, max_retries=2)
        decision = chain.solve(mixed_problem)
        assert primary.calls == 2
        assert decision.stats.tier == TIER_PRIMARY
        assert decision.stats.retries == 1
        assert chain.health.state is BrokerHealth.DEGRADED

    def test_retry_exhaustion_matches_the_no_overbooking_oracle(self, mixed_problem):
        primary = FlakyPrimary([TransientSolverError("blip")] * 3)
        chain = SafeguardedSolver(primary, max_retries=2)
        decision = chain.solve(mixed_problem)
        assert primary.calls == 3
        assert decision.stats.tier == TIER_NO_OVERBOOKING
        assert decision.stats.retries == 2
        assert "transient failures exhausted" in decision.stats.fallback_reason
        oracle = NoOverbookingSolver().solve(mixed_problem)
        assert decision_fingerprint(decision) == decision_fingerprint(oracle)

    def test_budget_exhaustion_is_never_retried(self, mixed_problem):
        primary = FlakyPrimary([SolverBudgetExceededError("no incumbent")])
        chain = SafeguardedSolver(primary, max_retries=5)
        decision = chain.solve(mixed_problem)
        assert primary.calls == 1
        assert decision.stats.tier == TIER_NO_OVERBOOKING

    def test_slave_numerical_error_degrades_without_retry(self, mixed_problem):
        # The typed error the slave raises when its LP fails despite an
        # essentially-feasible phase-1 certificate (PR 7): deterministic, so
        # the chain must fall through to a conservative tier immediately
        # instead of burning retries on an identical re-solve.
        from repro.core.decomposition import SlaveNumericalError

        primary = FlakyPrimary([SlaveNumericalError("LP failed on feasible basis")])
        chain = SafeguardedSolver(primary, max_retries=5)
        decision = chain.solve(mixed_problem)
        assert primary.calls == 1
        assert decision.stats.tier == TIER_NO_OVERBOOKING
        assert "LP failed on feasible basis" in decision.stats.fallback_reason

    def test_crash_after_a_certified_solve_replays_it(self, mixed_problem):
        primary = FlakyPrimary()
        chain = SafeguardedSolver(primary)
        certified = chain.solve(mixed_problem)
        primary.failures = [RuntimeError("simplex caught fire")]
        replayed = chain.solve(mixed_problem)
        assert replayed.stats.tier == TIER_WARM_REPLAY
        assert replayed.stats.message == "replayed last certified decision"
        assert replayed.stats.iterations == 0
        assert replayed.stats.runtime_s == 0.0
        assert "simplex caught fire" in replayed.stats.fallback_reason
        assert decision_fingerprint(replayed) == decision_fingerprint(certified)
        assert chain.health.state is BrokerHealth.DEGRADED

    def test_warm_replay_is_invalidated_by_topology_change(self, mixed_problem):
        primary = FlakyPrimary()
        chain = SafeguardedSolver(primary)
        chain.solve(mixed_problem)
        # Same requests, but the network lost capacity since certification:
        # the certified reservations are no longer provably feasible.
        damaged_topology = degrade_link_capacities(
            copy.deepcopy(mixed_problem.topology), [("bs-0", "sw")], 0.5
        )
        damaged = ACRRProblem(
            topology=damaged_topology,
            path_set=compute_path_sets(damaged_topology, k=3),
            requests=mixed_problem.requests,
            forecasts={r.name: mixed_problem.forecast(r.name) for r in mixed_problem.requests},
        )
        primary.failures = [RuntimeError("crash")]
        decision = chain.solve(damaged)
        assert decision.stats.tier == TIER_NO_OVERBOOKING

    def test_reject_all_when_the_baseline_drops_a_committed_slice(
        self, tiny_topology, tiny_path_set, mixed_requests
    ):
        class DroppingBaseline:
            def solve(self, problem):
                return OrchestrationDecision(
                    allocations={
                        request.name: TenantAllocation(
                            request=request, accepted=False, compute_unit=None
                        )
                        for request in problem.requests
                    },
                    objective_value=0.0,
                    stats=SolverStats(solver="dropper"),
                )

        committed = [mixed_requests[0].as_committed()] + mixed_requests[1:3]
        problem = ACRRProblem(
            topology=tiny_topology,
            path_set=tiny_path_set,
            requests=committed,
            forecasts=low_load_forecasts(committed),
        )
        chain = SafeguardedSolver(
            FlakyPrimary([RuntimeError("crash")]), baseline=DroppingBaseline()
        )
        decision = chain.solve(problem)
        assert decision.stats.tier == TIER_REJECT_ALL
        assert "baseline dropped a committed slice" in decision.stats.fallback_reason
        # Committed slices stay admitted with suspended reservations; every
        # uncommitted request is rejected.
        kept = decision.allocations[committed[0].name]
        assert kept.accepted
        assert kept.reservations_mbps == {}
        for request in committed[1:]:
            assert not decision.allocations[request.name].accepted
        assert chain.health.state is BrokerHealth.SAFE_MODE

    def test_safe_mode_skips_the_primary_until_the_probe(self, mixed_problem):
        primary = FlakyPrimary()
        chain = SafeguardedSolver(
            primary, health=HealthMonitor(recovery_epochs=2, probe_interval=3)
        )
        chain.health.state = BrokerHealth.SAFE_MODE
        # Two solves short of the probe go straight to reject-all.
        for _ in range(2):
            decision = chain.solve(mixed_problem)
            assert decision.stats.tier == TIER_REJECT_ALL
            assert "awaiting recovery probe" in decision.stats.fallback_reason
        assert primary.calls == 0
        # The third solve is the recovery probe: the primary runs, succeeds,
        # and the chain leaves safe mode.
        decision = chain.solve(mixed_problem)
        assert primary.calls == 1
        assert decision.stats.tier == TIER_PRIMARY
        assert chain.health.state is BrokerHealth.DEGRADED

    def test_max_retries_must_be_non_negative(self):
        with pytest.raises(ValueError, match="max_retries"):
            SafeguardedSolver(FlakyPrimary(), max_retries=-1)


class TestSnapshotRestore:
    def test_certified_decision_survives_a_snapshot_round_trip(self, mixed_problem):
        chain = SafeguardedSolver(FlakyPrimary())
        certified = chain.solve(mixed_problem)
        snapshot = chain.snapshot_state()
        assert snapshot["certified"] is not None

        fresh = SafeguardedSolver(FlakyPrimary([RuntimeError("crash")]))
        fresh.restore_state(snapshot)
        replayed = fresh.solve(mixed_problem)
        assert replayed.stats.tier == TIER_WARM_REPLAY
        assert decision_fingerprint(replayed) == decision_fingerprint(certified)

    def test_restoring_none_is_a_no_op(self, mixed_problem):
        chain = SafeguardedSolver(FlakyPrimary())
        chain.solve(mixed_problem)
        chain.restore_state(None)
        assert chain.snapshot_state()["certified"] is not None


class TestHealthMonitor:
    def test_constructor_validates_parameters(self):
        with pytest.raises(ValueError, match="recovery_epochs"):
            HealthMonitor(recovery_epochs=0)
        with pytest.raises(ValueError, match="probe_interval"):
            HealthMonitor(probe_interval=0)

    def test_non_primary_tier_degrades(self):
        monitor = HealthMonitor()
        monitor.note_outcome(TIER_WARM_REPLAY, degraded=True)
        assert monitor.state is BrokerHealth.DEGRADED

    def test_degraded_primary_epoch_degrades(self):
        monitor = HealthMonitor()
        monitor.note_outcome(TIER_PRIMARY, degraded=True)
        assert monitor.state is BrokerHealth.DEGRADED

    def test_recovery_needs_consecutive_clean_primary_epochs(self):
        monitor = HealthMonitor(recovery_epochs=3)
        monitor.note_outcome(TIER_NO_OVERBOOKING, degraded=True)
        for _ in range(2):
            monitor.note_outcome(TIER_PRIMARY, degraded=False)
            assert monitor.state is BrokerHealth.DEGRADED
        monitor.note_outcome(TIER_PRIMARY, degraded=False)
        assert monitor.state is BrokerHealth.HEALTHY

    def test_a_degraded_epoch_resets_the_clean_streak(self):
        monitor = HealthMonitor(recovery_epochs=2)
        monitor.note_outcome(TIER_NO_OVERBOOKING, degraded=True)
        monitor.note_outcome(TIER_PRIMARY, degraded=False)
        monitor.note_outcome(TIER_PRIMARY, degraded=True)
        monitor.note_outcome(TIER_PRIMARY, degraded=False)
        assert monitor.state is BrokerHealth.DEGRADED

    def test_reject_all_enters_safe_mode(self):
        monitor = HealthMonitor()
        monitor.note_outcome(TIER_REJECT_ALL, degraded=True)
        assert monitor.state is BrokerHealth.SAFE_MODE

    def test_probe_cadence_in_safe_mode(self):
        monitor = HealthMonitor(probe_interval=4)
        monitor.note_outcome(TIER_REJECT_ALL, degraded=True)
        assert [monitor.should_probe() for _ in range(8)] == [
            False, False, False, True, False, False, False, True,
        ]

    def test_should_probe_is_always_true_outside_safe_mode(self):
        monitor = HealthMonitor(probe_interval=4)
        assert all(monitor.should_probe() for _ in range(6))
        monitor.note_outcome(TIER_PRIMARY, degraded=True)
        assert all(monitor.should_probe() for _ in range(6))

    def test_successful_probe_re_enters_degraded_then_recovers(self):
        monitor = HealthMonitor(recovery_epochs=2, probe_interval=1)
        monitor.note_outcome(TIER_REJECT_ALL, degraded=True)
        monitor.note_outcome(TIER_PRIMARY, degraded=False)
        assert monitor.state is BrokerHealth.DEGRADED
        monitor.note_outcome(TIER_PRIMARY, degraded=False)
        assert monitor.state is BrokerHealth.HEALTHY

    def test_failed_epoch_degrades_and_resets_the_streak(self):
        monitor = HealthMonitor(recovery_epochs=2)
        assert monitor.state is BrokerHealth.HEALTHY
        monitor.note_failed_epoch()
        assert monitor.state is BrokerHealth.DEGRADED
        monitor.note_outcome(TIER_PRIMARY, degraded=False)
        monitor.note_failed_epoch()
        assert monitor.clean_streak == 0
