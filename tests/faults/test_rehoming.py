"""Mid-epoch link failures: displaced slices re-home via the renewal path."""

from __future__ import annotations

import pytest

from repro.api import SliceBroker, SliceRequestV1, ValidationError
from repro.core.forecast_inputs import ForecastInput
from repro.core.milp_solver import DirectMILPSolver
from repro.faults import HOOK_TOPOLOGY, FaultKind, FaultPlan, FaultSpec
from tests.conftest import build_tiny_topology

#: Factor severe enough that 1000 Mbps links keep ~1 Mbps: any slice with a
#: transport reservation on a failed link is guaranteed displaced.
OUTAGE_FACTOR = 0.001


def make_broker() -> SliceBroker:
    return SliceBroker(topology=build_tiny_topology(), solver=DirectMILPSolver())


def admit_one(broker: SliceBroker, duration: int = 6) -> None:
    request = SliceRequestV1.of("u1", "eMBB", duration_epochs=duration)
    broker.submit(request)
    sla = request.to_request().sla_mbps
    broker.set_forecast_override(
        "u1", ForecastInput(lambda_hat_mbps=0.2 * sla, sigma_hat=0.2)
    )
    report = broker.advance_epoch(0)
    assert report.accepted == ("u1",)


def all_link_keys(broker: SliceBroker) -> list[tuple[str, str]]:
    return [link.key for link in broker.orchestrator.topology.links]


class TestInjectedLinkFailure:
    def test_displaced_slice_is_rehomed_through_the_renewal_path(self):
        broker = make_broker()
        admit_one(broker)
        broker.inject_link_failure(all_link_keys(broker), OUTAGE_FACTOR)
        report = broker.advance_epoch(1)

        assert report.rehomed == ("u1",)
        assert report.degraded
        assert any("re-homed" in reason for reason in report.degraded_reasons)
        registry = broker.orchestrator.registry
        assert registry.renewal_count("u1") == 1
        record = registry.record("u1")
        assert record.request.metadata["rehomed_at_epoch"] == 1
        # The re-homed renewal got a same-epoch verdict; either way the
        # registry stays coherent and queryable.
        assert broker.status("u1").state in {"admitted", "rejected"}

    def test_mild_degradation_does_not_displace_anyone(self):
        broker = make_broker()
        admit_one(broker)
        broker.inject_link_failure([("bs-0", "sw")], 0.9)
        report = broker.advance_epoch(1)
        assert report.rehomed == ()
        assert broker.status("u1").state == "admitted"
        # The capacity loss itself persists in the topology.
        link = broker.orchestrator.topology.link("bs-0", "sw")
        assert link.capacity_mbps == pytest.approx(900.0)

    def test_unknown_link_is_a_validation_error(self):
        broker = make_broker()
        with pytest.raises(ValidationError, match="invalid link failure"):
            broker.inject_link_failure([("bs-0", "nowhere")], 0.5)
        with pytest.raises(ValidationError):
            broker.inject_link_failure([("bs-0", "sw")], 1.5)

    def test_rehomed_capacity_returns_on_the_next_solve(self):
        # After the outage epoch, later epochs keep running on the damaged
        # network: the re-homed slice's renewal verdict stays stable and no
        # further re-homing happens without further damage.
        broker = make_broker()
        admit_one(broker)
        broker.inject_link_failure(all_link_keys(broker), OUTAGE_FACTOR)
        broker.advance_epoch(1)
        report = broker.advance_epoch(2)
        assert report.rehomed == ()
        assert not any("re-homed" in r for r in report.degraded_reasons)


class TestPlannedLinkFaults:
    def test_link_down_plan_drives_the_same_renewal_path(self):
        broker = make_broker()
        plan = FaultPlan.of(
            FaultSpec(
                hook=HOOK_TOPOLOGY,
                epoch=1,
                kind=FaultKind.LINK_DOWN,
                params={"factor": OUTAGE_FACTOR, "fraction": 1.0},
            )
        )
        injector = broker.enable_chaos(plan)
        admit_one(broker)
        report = broker.advance_epoch(1)
        assert report.rehomed == ("u1",)
        assert report.degraded
        fired = injector.fired_in_epoch(1)
        assert [fault.hook for fault in fired] == [HOOK_TOPOLOGY]
        assert broker.orchestrator.registry.renewal_count("u1") == 1

    def test_explicit_links_damage_only_the_named_links(self):
        broker = make_broker()
        plan = FaultPlan.of(
            FaultSpec(
                hook=HOOK_TOPOLOGY,
                epoch=1,
                kind=FaultKind.LINK_DOWN,
                params={"factor": 0.5, "links": [["sw", "edge-cu"]]},
            )
        )
        broker.enable_chaos(plan)
        admit_one(broker)
        broker.advance_epoch(1)
        topology = broker.orchestrator.topology
        assert topology.link("sw", "edge-cu").capacity_mbps == pytest.approx(500.0)
        assert topology.link("sw", "core-cu").capacity_mbps == pytest.approx(1000.0)
