"""Tests for the template-driven demand factories."""

import pytest

from repro.core.slices import EMBB_TEMPLATE, MMTC_TEMPLATE, SliceRequest
from repro.traffic.demand import DeterministicDemand, GaussianDemand
from repro.traffic.patterns import DemandSpec, demand_for_request, demand_for_template
from repro.traffic.seasonal import SeasonalDemand


class TestDemandSpec:
    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            DemandSpec(mean_fraction=1.5)
        with pytest.raises(ValueError):
            DemandSpec(relative_std=-0.1)


class TestDemandForTemplate:
    def test_embb_is_gaussian(self):
        demand = demand_for_template(EMBB_TEMPLATE, DemandSpec(mean_fraction=0.5))
        assert isinstance(demand, GaussianDemand)
        assert demand.mean_mbps(0) == pytest.approx(25.0)

    def test_mmtc_is_deterministic(self):
        # Table 1: the mMTC template has sigma = 0.
        demand = demand_for_template(MMTC_TEMPLATE, DemandSpec(mean_fraction=0.5, relative_std=0.5))
        assert isinstance(demand, DeterministicDemand)
        assert demand.std_mbps(0) == 0.0

    def test_seasonal_flag(self):
        demand = demand_for_template(
            EMBB_TEMPLATE, DemandSpec(mean_fraction=0.5, seasonal=True)
        )
        assert isinstance(demand, SeasonalDemand)

    def test_labels_give_independent_streams(self):
        spec = DemandSpec(mean_fraction=0.5, relative_std=0.3)
        a = demand_for_template(EMBB_TEMPLATE, spec, seed=1, label="a")
        b = demand_for_template(EMBB_TEMPLATE, spec, seed=1, label="b")
        assert a.sample_epoch(0, 12).samples_mbps != b.sample_epoch(0, 12).samples_mbps

    def test_same_label_reproducible(self):
        spec = DemandSpec(mean_fraction=0.5, relative_std=0.3)
        a = demand_for_template(EMBB_TEMPLATE, spec, seed=1, label="a")
        b = demand_for_template(EMBB_TEMPLATE, spec, seed=1, label="a")
        assert a.sample_epoch(0, 12).samples_mbps == b.sample_epoch(0, 12).samples_mbps


class TestDemandForRequest:
    def test_uses_request_name_as_label(self):
        request_a = SliceRequest(name="tenant-a", template=EMBB_TEMPLATE)
        request_b = SliceRequest(name="tenant-b", template=EMBB_TEMPLATE)
        spec = DemandSpec(mean_fraction=0.4, relative_std=0.2)
        a = demand_for_request(request_a, spec, seed=3)
        b = demand_for_request(request_b, spec, seed=3)
        assert a.sample_epoch(0, 6).samples_mbps != b.sample_epoch(0, 6).samples_mbps
