"""Tests for the demand models."""

import numpy as np
import pytest

from repro.traffic.demand import DeterministicDemand, GaussianDemand, OnOffDemand


class TestGaussianDemand:
    def test_samples_clipped_to_sla(self):
        demand = GaussianDemand(mean_mbps=45.0, std_mbps=20.0, sla_mbps=50.0, seed=1)
        epoch = demand.sample_epoch(0, 500)
        samples = np.asarray(epoch.samples_mbps)
        assert samples.min() >= 0.0
        assert samples.max() <= 50.0

    def test_mean_matches_configuration(self):
        demand = GaussianDemand(mean_mbps=20.0, std_mbps=2.0, sla_mbps=50.0, seed=2)
        epoch = demand.sample_epoch(0, 2000)
        assert epoch.mean_mbps == pytest.approx(20.0, rel=0.05)

    def test_peak_is_max_of_samples(self):
        demand = GaussianDemand(mean_mbps=20.0, std_mbps=5.0, sla_mbps=50.0, seed=3)
        epoch = demand.sample_epoch(0, 12)
        assert epoch.peak_mbps == max(epoch.samples_mbps)

    def test_reproducible_given_seed(self):
        a = GaussianDemand(10.0, 2.0, 50.0, seed=7).sample_epoch(0, 12)
        b = GaussianDemand(10.0, 2.0, 50.0, seed=7).sample_epoch(0, 12)
        assert a.samples_mbps == b.samples_mbps

    def test_num_samples_validated(self):
        demand = GaussianDemand(10.0, 2.0, 50.0)
        with pytest.raises(ValueError):
            demand.sample_epoch(0, 0)

    def test_peak_series_length(self):
        demand = GaussianDemand(10.0, 2.0, 50.0, seed=1)
        peaks = demand.peak_series(5, 12)
        assert peaks.shape == (5,)

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            GaussianDemand(-1.0, 2.0, 50.0)


class TestDeterministicDemand:
    def test_constant_samples(self):
        demand = DeterministicDemand(mean_mbps=10.0, sla_mbps=10.0, seed=1)
        epoch = demand.sample_epoch(3, 12)
        assert set(epoch.samples_mbps) == {10.0}
        assert demand.std_mbps(3) == 0.0


class TestOnOffDemand:
    def test_means_switch_between_states(self):
        demand = OnOffDemand(
            on_mean_mbps=40.0,
            off_mean_mbps=5.0,
            std_mbps=0.0,
            sla_mbps=50.0,
            p_on_to_off=0.5,
            p_off_to_on=0.5,
            seed=11,
        )
        means = {demand.mean_mbps(epoch) for epoch in range(50)}
        assert means <= {40.0, 5.0}
        assert len(means) == 2  # both states visited

    def test_state_is_memoised(self):
        demand = OnOffDemand(40.0, 5.0, 0.0, 50.0, seed=11)
        assert demand.mean_mbps(10) == demand.mean_mbps(10)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            OnOffDemand(40.0, 5.0, 0.0, 50.0, p_on_to_off=1.5)

    def test_negative_epoch_rejected(self):
        demand = OnOffDemand(40.0, 5.0, 0.0, 50.0, seed=1)
        with pytest.raises(ValueError):
            demand.mean_mbps(-1)
