"""Tests for the diurnal profile and seasonal demand."""

import numpy as np
import pytest

from repro.traffic.seasonal import DEFAULT_DIURNAL_PROFILE, DiurnalProfile, SeasonalDemand


class TestDiurnalProfile:
    def test_needs_24_values(self):
        with pytest.raises(ValueError):
            DiurnalProfile(hourly_multipliers=(1.0,) * 23)

    def test_normalised_mean_is_one(self):
        profile = DiurnalProfile.normalised([2.0] * 12 + [4.0] * 12)
        assert np.mean(profile.as_array()) == pytest.approx(1.0)

    def test_negative_multiplier_rejected(self):
        with pytest.raises(ValueError):
            DiurnalProfile(hourly_multipliers=(-1.0,) + (1.0,) * 23)

    def test_multiplier_interpolates(self):
        profile = DiurnalProfile.normalised([1.0] * 12 + [3.0] * 12)
        at_boundary = profile.multiplier(11.5)
        assert profile.multiplier(11.0) < at_boundary < profile.multiplier(12.0)

    def test_multiplier_wraps_around(self):
        profile = DEFAULT_DIURNAL_PROFILE
        assert profile.multiplier(24.0) == pytest.approx(profile.multiplier(0.0))
        assert profile.multiplier(25.0) == pytest.approx(profile.multiplier(1.0))

    def test_default_profile_has_evening_peak(self):
        profile = DEFAULT_DIURNAL_PROFILE
        assert profile.multiplier(20.0) > profile.multiplier(4.0)


class TestSeasonalDemand:
    def test_mean_follows_profile(self):
        demand = SeasonalDemand(
            base_mean_mbps=10.0, relative_std=0.1, sla_mbps=50.0, epochs_per_day=24, seed=1
        )
        night = demand.mean_mbps(4)
        evening = demand.mean_mbps(20)
        assert evening > night

    def test_hour_of_epoch_wraps(self):
        demand = SeasonalDemand(10.0, 0.1, 50.0, epochs_per_day=24, start_hour=6.0)
        assert demand.hour_of_epoch(0) == pytest.approx(6.0)
        assert demand.hour_of_epoch(24) == pytest.approx(6.0)
        assert demand.hour_of_epoch(20) == pytest.approx(2.0)

    def test_epochs_per_day_scaling(self):
        demand = SeasonalDemand(10.0, 0.0, 50.0, epochs_per_day=12)
        # With 12 epochs per day, epoch 6 corresponds to noon.
        assert demand.hour_of_epoch(6) == pytest.approx(12.0)

    def test_std_is_relative_to_mean(self):
        demand = SeasonalDemand(10.0, 0.2, 50.0, epochs_per_day=24)
        epoch = 20
        assert demand.std_mbps(epoch) == pytest.approx(0.2 * demand.mean_mbps(epoch))

    def test_invalid_epochs_per_day(self):
        with pytest.raises(ValueError):
            SeasonalDemand(10.0, 0.1, 50.0, epochs_per_day=0)
