"""End-to-end integration tests: paper-level claims on reduced scenarios.

These tests cross module boundaries on purpose: they build operator
topologies, run the full orchestration loop (forecasting, AC-RR, controllers,
data plane, revenue accounting) and assert the qualitative results the paper
reports.
"""

import pytest

from repro.core.slices import EMBB_TEMPLATE, MMTC_TEMPLATE
from repro.dataplane.network_service import build_network_service
from repro.simulation.runner import compare_policies, run_scenario
from repro.simulation.scenario import homogeneous_scenario, testbed_scenario as make_testbed_scenario
from repro.utils.stats import relative_gain


@pytest.mark.integration
class TestPaperHeadlineClaims:
    def test_romanian_embb_overbooking_gain(self):
        """Paper Section 4.3.3: ~3 units without overbooking, up to ~220% more with it."""
        scenario = homogeneous_scenario(
            "romanian",
            EMBB_TEMPLATE,
            num_tenants=10,
            mean_load_fraction=0.2,
            relative_std=0.25,
            penalty_factor=1.0,
            num_epochs=3,
            num_base_stations=8,
            seed=1,
        )
        results = compare_policies(scenario, policies=("optimal", "no-overbooking"))
        baseline = results["no-overbooking"]
        overbooked = results["optimal"]
        assert baseline.net_revenue == pytest.approx(3.0, abs=0.2)
        gain = relative_gain(overbooked.net_revenue, baseline.net_revenue)
        assert gain > 150.0
        # Negligible SLA footprint.
        assert overbooked.violation_probability < 0.01

    def test_swiss_transport_constrained_gain_larger_than_romanian(self):
        """Paper Fig. 5: the eMBB gain in the Swiss network is roughly twice the Romanian one."""
        gains = {}
        for operator in ("romanian", "swiss"):
            scenario = homogeneous_scenario(
                operator,
                EMBB_TEMPLATE,
                num_tenants=10,
                mean_load_fraction=0.2,
                relative_std=0.25,
                num_epochs=2,
                num_base_stations=8,
                seed=1,
            )
            results = compare_policies(scenario, policies=("optimal", "no-overbooking"))
            gains[operator] = relative_gain(
                results["optimal"].net_revenue, results["no-overbooking"].net_revenue
            )
        assert gains["swiss"] > gains["romanian"]

    def test_mmtc_is_compute_bound_and_benefits_from_overbooking(self):
        scenario = homogeneous_scenario(
            "romanian",
            MMTC_TEMPLATE,
            num_tenants=10,
            mean_load_fraction=0.2,
            relative_std=0.0,
            num_epochs=2,
            num_base_stations=8,
            seed=1,
        )
        results = compare_policies(scenario, policies=("optimal", "no-overbooking"))
        assert results["optimal"].num_admitted > results["no-overbooking"].num_admitted
        # All 10 mMTC tenants x reward 3 = 30 monetary units at most.
        assert results["optimal"].net_revenue <= 30.0 + 1e-6


@pytest.mark.integration
class TestTestbedStory:
    def test_fig8_overbooking_admits_extra_slices(self):
        """Paper Section 5: overbooking squeezes in extra uRLLC/mMTC/eMBB slices."""
        scenario = make_testbed_scenario(num_epochs=18, seed=3)
        overbooked = run_scenario(scenario, policy="optimal")
        baseline = run_scenario(make_testbed_scenario(num_epochs=18, seed=3), policy="no-overbooking")
        assert overbooked.num_admitted >= baseline.num_admitted
        assert overbooked.net_revenue >= baseline.net_revenue - 1e-9
        # The third slice of each type cannot fit even with overbooking
        # (matching Fig. 8 where uRLLC3 / mMTC3 / eMBB3 are rejected).
        assert "uRLLC3" not in overbooked.final_admitted

    def test_network_services_can_be_built_for_all_admitted_slices(self):
        scenario = make_testbed_scenario(num_epochs=6, seed=3)
        from repro.simulation.engine import SimulationEngine
        from repro.simulation.runner import make_solver

        engine = SimulationEngine(scenario, make_solver("optimal"), policy_name="optimal")
        engine.run()
        decision = engine.orchestrator.last_decision
        assert decision is not None
        for name, alloc in decision.allocations.items():
            if alloc.accepted:
                service = build_network_service(alloc.request, alloc)
                assert service.total_cpu_cores == pytest.approx(alloc.reserved_cpus)
