"""The ``failure`` scenario family: knobs, hash neutrality, sampled episodes.

The four link-failure knobs are hash-neutral when inert
(``link_failure_probability == 0``): every pre-existing family must keep its
``family_hash`` -- and therefore every already-pinned sampled scenario --
byte for byte.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.benders import BendersSolver
from repro.scenarios import (
    DIFFERENTIAL_FAMILY,
    FAILURE_FAMILY,
    FAMILIES,
    ScenarioFamily,
    sample_scenario,
    scenario_payload,
)
from repro.simulation.engine import SimulationEngine
from repro.simulation.scenario import LinkFailureEvent
from tests.differential.conftest import BASE_SEED, seed_note


class TestKnobValidation:
    def test_probability_outside_unit_interval_rejected(self):
        with pytest.raises(ValueError, match="link_failure_probability"):
            ScenarioFamily(link_failure_probability=1.5)

    def test_reversed_ranges_rejected(self):
        with pytest.raises(ValueError, match="failed_link_fraction"):
            ScenarioFamily(failed_link_fraction=(0.5, 0.2))
        with pytest.raises(ValueError, match="link_failure_window"):
            ScenarioFamily(link_failure_window=(0.9, 0.1))

    def test_factor_must_stay_below_one(self):
        # factor == 1 would be a no-op "failure"; the family refuses it so a
        # failure scenario always actually loses capacity.
        with pytest.raises(ValueError, match="stay below 1"):
            ScenarioFamily(link_failure_factor=(0.5, 1.0))


class TestHashNeutrality:
    def test_inert_knobs_are_absent_from_the_payload(self):
        assert "link_failure_probability" not in DIFFERENTIAL_FAMILY.as_dict()
        assert "link_failure_probability" in FAILURE_FAMILY.as_dict()

    def test_changing_inert_knobs_keeps_the_family_hash(self):
        # Documented behaviour: with probability 0 the other three knobs are
        # dead parameters, dropped from the canonical payload so the
        # already-pinned hashes of the pre-existing families never move.
        tweaked = replace(DIFFERENTIAL_FAMILY, link_failure_factor=(0.3, 0.5))
        assert tweaked.family_hash == DIFFERENTIAL_FAMILY.family_hash

    def test_arming_the_probability_changes_the_hash(self):
        armed = replace(DIFFERENTIAL_FAMILY, link_failure_probability=0.5)
        assert armed.family_hash != DIFFERENTIAL_FAMILY.family_hash
        assert "link_failure_factor" in armed.as_dict()

    def test_inert_families_sample_identical_scenarios(self):
        tweaked = replace(DIFFERENTIAL_FAMILY, link_failure_factor=(0.3, 0.5))
        assert scenario_payload(
            sample_scenario(tweaked, seed=BASE_SEED)
        ) == scenario_payload(sample_scenario(DIFFERENTIAL_FAMILY, seed=BASE_SEED))

    def test_failure_family_is_registered(self):
        assert FAMILIES["link-failure"] is FAILURE_FAMILY

    def test_failure_family_round_trips(self):
        rebuilt = ScenarioFamily.from_dict(FAILURE_FAMILY.as_dict())
        assert rebuilt == FAILURE_FAMILY
        assert rebuilt.family_hash == FAILURE_FAMILY.family_hash


class TestSampledEpisodes:
    @pytest.mark.parametrize("offset", range(10))
    def test_episodes_respect_the_declared_ranges(self, offset):
        seed = BASE_SEED + offset
        scenario = sample_scenario(FAILURE_FAMILY, seed=seed)
        note = seed_note(seed)
        assert len(scenario.link_failures) == 1, note
        event = scenario.link_failures[0]
        # Never epoch 0 (there is nothing to displace yet) and never past
        # the horizon.
        assert 1 <= event.epoch <= scenario.num_epochs - 1, note
        factor_lo, factor_hi = FAILURE_FAMILY.link_failure_factor
        assert factor_lo <= event.capacity_factor <= factor_hi, note
        link_keys = {link.key for link in scenario.topology.links}
        assert set(event.links) <= link_keys, note
        fraction_lo, fraction_hi = FAILURE_FAMILY.failed_link_fraction
        assert 1 <= len(event.links) <= len(link_keys), note

    def test_payload_has_link_failures_key_only_when_armed(self):
        armed = scenario_payload(sample_scenario(FAILURE_FAMILY, seed=BASE_SEED))
        inert = scenario_payload(sample_scenario(DIFFERENTIAL_FAMILY, seed=BASE_SEED))
        assert "link_failures" in armed
        assert "link_failures" not in inert
        episode = armed["link_failures"][0]
        assert set(episode) == {"epoch", "links", "capacity_factor"}


class TestEventValidation:
    def test_event_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="epoch"):
            LinkFailureEvent(epoch=-1, links=(("a", "b"),), capacity_factor=0.5)
        with pytest.raises(ValueError, match="link"):
            LinkFailureEvent(epoch=1, links=(), capacity_factor=0.5)
        with pytest.raises(ValueError, match="factor"):
            LinkFailureEvent(epoch=1, links=(("a", "b"),), capacity_factor=1.0)

    def test_event_normalises_link_keys(self):
        event = LinkFailureEvent(
            epoch=1, links=(("sw", "bs-0"),), capacity_factor=0.5
        )
        assert event.links == (("bs-0", "sw"),)

    def test_scenario_rejects_out_of_horizon_episodes(self):
        base = sample_scenario(FAILURE_FAMILY, seed=BASE_SEED)
        bad = LinkFailureEvent(
            epoch=base.num_epochs, links=base.link_failures[0].links,
            capacity_factor=0.5,
        )
        with pytest.raises(ValueError, match="horizon"):
            replace(base, link_failures=(bad,))

    def test_scenario_rejects_unknown_links(self):
        base = sample_scenario(FAILURE_FAMILY, seed=BASE_SEED)
        bad = LinkFailureEvent(
            epoch=1, links=(("ghost", "sw"),), capacity_factor=0.5
        )
        with pytest.raises(ValueError, match="unknown links"):
            replace(base, link_failures=(bad,))


class TestEngineIntegration:
    def test_engine_damages_a_private_copy_not_the_scenario(self):
        scenario = sample_scenario(FAILURE_FAMILY, seed=0)
        pristine = {
            link.key: link.capacity_mbps for link in scenario.topology.links
        }
        engine = SimulationEngine(scenario, BendersSolver())
        engine.run()
        assert {
            link.key: link.capacity_mbps for link in scenario.topology.links
        } == pristine
        event = scenario.link_failures[0]
        for key in event.links:
            damaged = engine.topology.link(*key).capacity_mbps
            assert damaged == pytest.approx(pristine[key] * event.capacity_factor)

    def test_known_seed_displaces_and_rehomes_a_slice(self):
        # Pinned during development: seed 0 samples a 5-epoch, 3-tenant
        # scenario whose epoch-1 outage displaces uRLLC-1.
        scenario = sample_scenario(FAILURE_FAMILY, seed=0)
        engine = SimulationEngine(scenario, BendersSolver())
        engine.run()
        registry = engine.broker.orchestrator.registry
        rehomed = {
            record.name: record.request.metadata["rehomed_at_epoch"]
            for record in registry.all_records()
            if "rehomed_at_epoch" in record.request.metadata
        }
        assert rehomed == {"uRLLC-1": 1}
        assert registry.renewal_count("uRLLC-1") >= 1

    def test_two_engines_on_one_scenario_agree(self):
        scenario = sample_scenario(FAILURE_FAMILY, seed=0)
        results = [
            SimulationEngine(scenario, BendersSolver()).run() for _ in range(2)
        ]
        assert results[0].final_admitted == results[1].final_admitted
        assert results[0].net_revenue == pytest.approx(results[1].net_revenue)


def test_episodes_can_be_replaced_with_any_valid_links():
    # A scenario's failure episodes are plain data: swapping in a hand-built
    # episode works as long as the links exist in its topology.
    base = sample_scenario(FAILURE_FAMILY, seed=BASE_SEED)
    key = sorted(link.key for link in base.topology.links)[0]
    event = LinkFailureEvent(epoch=1, links=(key,), capacity_factor=0.01)
    swapped = replace(base, link_failures=(event,))
    assert swapped.link_failures == (event,)
