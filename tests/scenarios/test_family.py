"""Unit tests for the scenario-family declaration layer."""

import pytest

from repro.scenarios.family import FAMILIES, ScenarioFamily


class TestValidation:
    def test_defaults_are_valid(self):
        family = ScenarioFamily()
        assert family.name == "default"

    def test_unknown_operator_profile_rejected(self):
        with pytest.raises(ValueError, match="operator_profiles"):
            ScenarioFamily(operator_profiles=("atlantis",))

    def test_unknown_redundancy_level_rejected(self):
        with pytest.raises(ValueError, match="redundancy_levels"):
            ScenarioFamily(redundancy_levels=("extreme",))

    def test_reversed_range_rejected(self):
        with pytest.raises(ValueError, match="num_tenants"):
            ScenarioFamily(num_tenants=(5, 2))

    def test_non_integer_count_range_rejected(self):
        with pytest.raises(ValueError, match="num_base_stations"):
            ScenarioFamily(num_base_stations=(1.5, 3))

    def test_unknown_template_rejected(self):
        with pytest.raises(ValueError, match="template_weights"):
            ScenarioFamily(template_weights=(("holo", 1.0),))

    def test_negative_template_weight_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ScenarioFamily(template_weights=(("eMBB", -1.0),))

    def test_zero_total_template_weight_rejected(self):
        with pytest.raises(ValueError, match="positive total weight"):
            ScenarioFamily(template_weights=(("eMBB", 0.0),))

    def test_regime_probabilities_must_fit_in_one(self):
        with pytest.raises(ValueError, match="must not exceed 1"):
            ScenarioFamily(seasonal_probability=0.7, bursty_probability=0.7)

    def test_load_range_outside_unit_interval_rejected(self):
        with pytest.raises(ValueError, match="mean_load_fraction"):
            ScenarioFamily(mean_load_fraction=(0.5, 1.5))

    def test_bad_forecast_mode_rejected(self):
        with pytest.raises(ValueError, match="forecast_mode"):
            ScenarioFamily(forecast_mode="psychic")


class TestSerialisation:
    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown scenario-family fields"):
            ScenarioFamily.from_dict({"name": "x", "warp_factor": 9})

    def test_as_dict_round_trip_preserves_hash(self):
        family = FAMILIES["mixed-churn"]
        assert ScenarioFamily.from_dict(family.as_dict()).family_hash == family.family_hash

    def test_hash_is_content_sensitive(self):
        a = ScenarioFamily(name="a")
        b = ScenarioFamily(name="a", samples_per_epoch=9)
        assert a.family_hash != b.family_hash

    def test_with_name_changes_hash_but_not_structure(self):
        family = ScenarioFamily()
        renamed = family.with_name("other")
        assert renamed.name == "other"
        assert renamed.num_tenants == family.num_tenants
