"""Unit tests for the generator API surface and the campaign integration."""

import numpy as np
import pytest

from repro.experiments.campaign import build_scenario
from repro.scenarios import ScenarioFamily, sample_scenario, sample_scenarios
from repro.scenarios.campaigns import (
    format_generated,
    generated_campaign,
    reduce_generated,
)
from repro.scenarios.oracle import problem_for_scenario
from repro.topology.generators import degrade_link_capacities
from repro.topology.operators import testbed_topology as build_testbed_topology
from repro.traffic.demand import OnOffDemand
from repro.traffic.patterns import DemandSpec, demand_for_template
from repro.core.slices import EMBB_TEMPLATE

#: A deliberately tiny family so campaign/oracle tests stay fast.
TINY_FAMILY = ScenarioFamily(
    name="tiny-test",
    operator_profiles=("swiss",),
    num_base_stations=(2, 2),
    num_tenants=(2, 3),
    mean_load_fraction=(0.2, 0.5),
    num_epochs=(2, 2),
    samples_per_epoch=4,
)


class TestSampling:
    def test_sample_scenarios_is_one_per_seed(self):
        scenarios = sample_scenarios(TINY_FAMILY, seeds=[1, 2, 3])
        assert len(scenarios) == 3
        assert len({scenario.name for scenario in scenarios}) == 3

    def test_scenario_seed_is_family_specific(self):
        other = TINY_FAMILY.with_name("tiny-test-2")
        a = sample_scenario(TINY_FAMILY, seed=5)
        b = sample_scenario(other, seed=5)
        assert a.seed != b.seed


class TestBurstyDemand:
    def test_bursty_spec_builds_onoff_model(self):
        spec = DemandSpec(mean_fraction=0.5, relative_std=0.2, bursty=True)
        model = demand_for_template(EMBB_TEMPLATE, spec, seed=1)
        assert isinstance(model, OnOffDemand)
        peaks = model.peak_series(40, 4)
        assert np.all(peaks >= 0.0)
        assert np.all(peaks <= EMBB_TEMPLATE.sla_mbps)

    def test_seasonal_and_bursty_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="seasonal and bursty"):
            DemandSpec(seasonal=True, bursty=True)

    def test_off_mean_must_not_exceed_on_mean(self):
        with pytest.raises(ValueError, match="off_mean_fraction"):
            DemandSpec(mean_fraction=0.1, off_mean_fraction=0.3, bursty=True)


class TestDegradation:
    def test_scales_selected_links_and_revalidates(self):
        topology = build_testbed_topology()
        key = topology.links[0].key
        before = topology.link(*key).capacity_mbps
        degrade_link_capacities(topology, [key], 0.5)
        assert topology.link(*key).capacity_mbps == pytest.approx(before * 0.5)

    def test_rejects_bad_factor(self):
        topology = build_testbed_topology()
        with pytest.raises(ValueError, match="capacity_factor"):
            degrade_link_capacities(topology, [topology.links[0].key], 0.0)

    def test_rejects_unknown_link(self):
        topology = build_testbed_topology()
        with pytest.raises(KeyError):
            degrade_link_capacities(topology, [("nope", "nada")], 0.5)


class TestOracleProblem:
    def test_epoch_zero_problem_covers_active_requests(self):
        scenario = sample_scenario(TINY_FAMILY, seed=2)
        problem = problem_for_scenario(scenario)
        assert problem.num_tenants == len(scenario.workloads)

    def test_epoch_beyond_every_departure_rejected(self):
        scenario = sample_scenario(TINY_FAMILY, seed=2)
        with pytest.raises(ValueError, match="no active slice"):
            problem_for_scenario(scenario, epoch=scenario.num_epochs + 5)


class TestGeneratedCampaign:
    def test_policies_share_the_sampled_scenario(self):
        campaign = generated_campaign(TINY_FAMILY, num_scenarios=2, base_seed=3)
        result = campaign.run(cache_dir=None)
        rows = reduce_generated(result)
        assert len(rows) == 2
        for row in rows:
            assert set(row.net_revenue) == {"optimal", "no-overbooking"}
            assert row.fingerprint  # recorded for provenance
        # Paired comparison: same scenario_index resolves to one seed, so
        # both policy records carry the same sampled-scenario fingerprint.
        by_index: dict[int, set[str]] = {}
        for record in result.records:
            by_index.setdefault(int(record.spec.params["scenario_index"]), set()).add(
                record.extras["scenario_fingerprint"]
            )
        assert all(len(fingerprints) == 1 for fingerprints in by_index.values())

    def test_build_scenario_supports_generated_kind(self):
        scenario = build_scenario(
            {"scenario": "generated", "family": TINY_FAMILY.as_dict()}, seed=4
        )
        assert scenario.name == sample_scenario(TINY_FAMILY, seed=4).name

    def test_records_cache_and_resume(self, tmp_path):
        campaign = generated_campaign(TINY_FAMILY, num_scenarios=1, base_seed=3)
        first = campaign.run(cache_dir=tmp_path)
        assert first.num_executed == len(first.records)
        second = campaign.run(cache_dir=tmp_path)
        assert second.num_executed == 0
        assert second.num_cached == len(second.records)
        for a, b in zip(first.records, second.records):
            assert a.summary == pytest.approx(b.summary)

    def test_preset_name_lookup(self):
        campaign = generated_campaign("differential-small", num_scenarios=1)
        assert campaign.name == "generated-differential-small"
        with pytest.raises(KeyError, match="unknown scenario family"):
            generated_campaign("not-a-family")

    def test_invalid_num_scenarios_rejected(self):
        with pytest.raises(ValueError, match="num_scenarios"):
            generated_campaign(TINY_FAMILY, num_scenarios=0)

    def test_format_generated_reports_dominance(self):
        campaign = generated_campaign(TINY_FAMILY, num_scenarios=1, base_seed=3)
        rows = reduce_generated(campaign.run(cache_dir=None))
        text = format_generated(rows)
        assert "gain over no-overbooking" in text
        assert "sampled scenarios" in text


class TestCliRegistration:
    def test_generated_campaign_listed(self, capsys):
        from repro.experiments.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "generated" in out
