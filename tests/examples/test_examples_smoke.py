"""Smoke tests for the examples/ scripts: import and run with tiny parameters.

The examples are living documentation, so API drift there should fail the
suite (and CI) rather than a user's first session.  Each script is loaded
straight from its file (examples/ is intentionally not a package) and its
``main`` runs shrunk to seconds; the assertions only pin the output shape,
not the numbers.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.smoke

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs_and_compares_policies(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "overbooking" in out.lower()


def test_operator_revenue_sweep_tiny_grid(capsys):
    load_example("operator_revenue_sweep").main(
        operators=("swiss",), alphas=(0.5,), num_base_stations=3, num_epochs=2
    )
    out = capsys.readouterr().out
    assert "swiss" in out
    assert "gain %" in out


def test_forecasting_and_orchestration_tiny(capsys):
    load_example("forecasting_and_orchestration").main(num_days=3, num_epochs=2)
    out = capsys.readouterr().out
    assert "holt-winters" in out
    assert "epoch 0" in out


def test_slice_broker_tour_tiny(capsys):
    load_example("slice_broker_tour").main(num_epochs=4)
    out = capsys.readouterr().out
    assert "schema_version=1" in out
    assert "DuplicateSliceError" in out
    assert "released" in out


def test_dynamic_testbed_day_tiny(capsys):
    load_example("dynamic_testbed_day").main(num_epochs=4, seed=3)
    out = capsys.readouterr().out
    assert "Admission outcome" in out
    assert "no-overbooking" in out
