"""Shared fixtures: small hand-built topologies and workloads.

The fixtures deliberately use a tiny, fully-understood topology (two base
stations, one switch, an edge and a core compute unit) so tests can assert
exact admission counts and reservations.
"""

from __future__ import annotations

import pytest

from repro.core.forecast_inputs import ForecastInput
from repro.core.problem import ACRRProblem, ProblemOptions
from repro.core.slices import (
    EMBB_TEMPLATE,
    MMTC_TEMPLATE,
    URLLC_TEMPLATE,
    SliceRequest,
    make_requests,
)
from repro.topology.elements import (
    BaseStation,
    ComputeUnit,
    ComputeUnitKind,
    TransportLink,
    TransportSwitch,
)
from repro.topology.network import NetworkTopology
from repro.topology.paths import compute_path_sets


def build_tiny_topology(
    num_base_stations: int = 2,
    bs_capacity_mhz: float = 20.0,
    link_capacity_mbps: float = 1000.0,
    edge_cpus: float = 40.0,
    core_cpus: float = 200.0,
    core_latency_ms: float = 20.0,
) -> NetworkTopology:
    """A star topology: BSs -- switch -- {edge CU, core CU}."""
    topology = NetworkTopology(name="tiny")
    topology.add_switch(TransportSwitch(name="sw"))
    topology.add_compute_unit(
        ComputeUnit(name="edge-cu", capacity_cpus=edge_cpus, kind=ComputeUnitKind.EDGE)
    )
    topology.add_compute_unit(
        ComputeUnit(
            name="core-cu",
            capacity_cpus=core_cpus,
            kind=ComputeUnitKind.CORE,
            access_latency_ms=core_latency_ms,
        )
    )
    for i in range(num_base_stations):
        topology.add_base_station(
            BaseStation(name=f"bs-{i}", capacity_mhz=bs_capacity_mhz)
        )
        topology.add_link(
            TransportLink(
                endpoint_a=f"bs-{i}", endpoint_b="sw", capacity_mbps=link_capacity_mbps
            )
        )
    topology.add_link(
        TransportLink(endpoint_a="sw", endpoint_b="edge-cu", capacity_mbps=link_capacity_mbps)
    )
    topology.add_link(
        TransportLink(endpoint_a="sw", endpoint_b="core-cu", capacity_mbps=link_capacity_mbps)
    )
    topology.validate()
    return topology


@pytest.fixture
def tiny_topology() -> NetworkTopology:
    return build_tiny_topology()


@pytest.fixture
def tiny_path_set(tiny_topology):
    return compute_path_sets(tiny_topology, k=3)


@pytest.fixture
def embb_requests() -> list[SliceRequest]:
    return make_requests(EMBB_TEMPLATE, 6, duration_epochs=24, penalty_factor=1.0)


@pytest.fixture
def mixed_requests() -> list[SliceRequest]:
    return (
        make_requests(EMBB_TEMPLATE, 2, duration_epochs=24)
        + make_requests(MMTC_TEMPLATE, 2, duration_epochs=24)
        + make_requests(URLLC_TEMPLATE, 2, duration_epochs=24)
    )


def low_load_forecasts(requests, fraction: float = 0.2, sigma: float = 0.25):
    """Forecast each request at ``fraction`` of its SLA with uncertainty sigma."""
    return {
        request.name: ForecastInput(
            lambda_hat_mbps=fraction * request.sla_mbps, sigma_hat=sigma
        )
        for request in requests
    }


@pytest.fixture
def embb_problem(tiny_topology, tiny_path_set, embb_requests) -> ACRRProblem:
    """Six eMBB tenants at 20 % load on the tiny topology (radio-bound)."""
    return ACRRProblem(
        topology=tiny_topology,
        path_set=tiny_path_set,
        requests=embb_requests,
        forecasts=low_load_forecasts(embb_requests),
    )


@pytest.fixture
def mixed_problem(tiny_topology, tiny_path_set, mixed_requests) -> ACRRProblem:
    return ACRRProblem(
        topology=tiny_topology,
        path_set=tiny_path_set,
        requests=mixed_requests,
        forecasts=low_load_forecasts(mixed_requests, fraction=0.5, sigma=0.3),
    )


@pytest.fixture
def problem_options() -> ProblemOptions:
    return ProblemOptions()
