"""Tests for RAN-slicing (PRB share) enforcement."""

import pytest

from repro.radio.ran_sharing import RanSlicingEnforcer


@pytest.fixture
def enforcer():
    return RanSlicingEnforcer(base_station="bs-0", capacity_mhz=20.0)


class TestGrants:
    def test_grant_converts_bitrate_to_prbs(self, enforcer):
        share = enforcer.grant_bitrate("slice-a", 75.0)
        assert share.prbs == pytest.approx(50.0)
        assert enforcer.allocated_prbs == pytest.approx(50.0)
        assert enforcer.free_prbs == pytest.approx(50.0)

    def test_grant_update_replaces_previous(self, enforcer):
        enforcer.grant_bitrate("slice-a", 75.0)
        enforcer.grant_bitrate("slice-a", 30.0)
        assert enforcer.allocated_prbs == pytest.approx(20.0)

    def test_over_capacity_rejected(self, enforcer):
        enforcer.grant_bitrate("slice-a", 100.0)
        with pytest.raises(ValueError, match="PRBs"):
            enforcer.grant_bitrate("slice-b", 100.0)

    def test_update_can_use_own_headroom(self, enforcer):
        enforcer.grant_bitrate("slice-a", 140.0)
        # Updating the same slice to 150 Mb/s is fine (its own share is freed).
        enforcer.grant_bitrate("slice-a", 150.0)
        assert enforcer.free_prbs == pytest.approx(0.0)

    def test_revoke(self, enforcer):
        enforcer.grant_bitrate("slice-a", 75.0)
        enforcer.revoke("slice-a")
        assert enforcer.allocated_prbs == 0.0
        enforcer.revoke("slice-a")  # idempotent


class TestServingTraffic:
    def test_served_clipped_to_share(self, enforcer):
        enforcer.grant_bitrate("slice-a", 50.0)
        assert enforcer.served_bitrate("slice-a", 30.0) == pytest.approx(30.0)
        assert enforcer.served_bitrate("slice-a", 80.0) == pytest.approx(50.0)

    def test_unknown_slice_serves_nothing(self, enforcer):
        assert enforcer.served_bitrate("ghost", 10.0) == 0.0

    def test_utilisation_report(self, enforcer):
        enforcer.grant_bitrate("slice-a", 50.0)
        enforcer.grant_bitrate("slice-b", 25.0)
        usage = enforcer.utilisation({"slice-a": 50.0, "slice-b": 10.0})
        assert usage["slice-a"] == pytest.approx(enforcer.radio_model.bitrate_to_prbs(50.0))
        assert usage["slice-b"] == pytest.approx(enforcer.radio_model.bitrate_to_prbs(10.0))
