"""Tests for the spectrum / bitrate conversion model."""

import pytest

from repro.radio.spectral import (
    IDEAL_RADIO_MODEL,
    PRBS_PER_MHZ,
    RadioModel,
    bitrate_to_mhz,
    mhz_to_bitrate,
    prbs_per_mhz,
)


class TestRadioModel:
    def test_ideal_eta_matches_paper(self):
        # eta_b = 20/150 MHz per Mb/s under ideal 2x2 MIMO conditions.
        assert IDEAL_RADIO_MODEL.eta_mhz_per_mbps() == pytest.approx(20.0 / 150.0)

    def test_roundtrip(self):
        model = RadioModel()
        assert model.mhz_to_bitrate(model.bitrate_to_mhz(42.0)) == pytest.approx(42.0)

    def test_channel_quality_scales_capacity(self):
        degraded = RadioModel(channel_quality=0.5)
        assert degraded.mhz_to_bitrate(20.0) == pytest.approx(75.0)
        assert degraded.bitrate_to_mhz(75.0) == pytest.approx(20.0)

    def test_prb_conversion(self):
        model = RadioModel()
        # 150 Mb/s fills the whole 100-PRB carrier.
        assert model.bitrate_to_prbs(150.0) == pytest.approx(100.0)

    def test_invalid_quality_rejected(self):
        with pytest.raises(ValueError):
            RadioModel(channel_quality=0.0)
        with pytest.raises(ValueError):
            RadioModel(channel_quality=1.5)

    def test_negative_bitrate_rejected(self):
        with pytest.raises(ValueError):
            IDEAL_RADIO_MODEL.bitrate_to_mhz(-1.0)


class TestModuleHelpers:
    def test_constants(self):
        assert prbs_per_mhz() == PRBS_PER_MHZ == 5.0

    def test_wrappers_use_ideal_model(self):
        assert bitrate_to_mhz(150.0) == pytest.approx(20.0)
        assert mhz_to_bitrate(20.0) == pytest.approx(150.0)
