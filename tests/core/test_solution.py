"""Tests for orchestration decisions and per-domain reservation views."""

import numpy as np
import pytest

from repro.core.milp_solver import DirectMILPSolver
from repro.core.solution import SolverStats, decision_from_vectors


class TestDecisionFromVectors:
    def test_round_trip_accepts_marked_items(self, embb_problem):
        x = np.zeros(embb_problem.num_items)
        z = np.zeros(embb_problem.num_items)
        for item in embb_problem.items_of_tenant(0):
            if item.path.compute_unit == "edge-cu":
                x[item.index] = 1.0
                z[item.index] = 30.0
        decision = decision_from_vectors(
            embb_problem, x, z, SolverStats(solver="test")
        )
        assert decision.num_accepted == 1
        name = embb_problem.requests[0].name
        alloc = decision.allocation(name)
        assert alloc.compute_unit == "edge-cu"
        assert alloc.total_reserved_mbps == pytest.approx(60.0)
        assert decision.is_accepted(name)
        assert not decision.is_accepted(embb_problem.requests[1].name)

    def test_expected_reward_counts_accepted_only(self, embb_problem):
        decision = DirectMILPSolver().solve(embb_problem)
        expected = sum(
            alloc.request.reward
            for alloc in decision.allocations.values()
            if alloc.accepted
        )
        assert decision.expected_reward == pytest.approx(expected)

    def test_summary_keys(self, embb_problem):
        decision = DirectMILPSolver().solve(embb_problem)
        summary = decision.summary()
        assert set(summary) == {
            "accepted",
            "rejected",
            "expected_reward",
            "objective",
            "total_deficit",
        }


class TestPerDomainReservations:
    def test_radio_reservations_match_eta(self, embb_problem):
        decision = DirectMILPSolver().solve(embb_problem)
        radio = decision.radio_reservations_mhz(embb_problem)
        for bs_name, per_tenant in radio.items():
            bs = embb_problem.topology.base_station(bs_name)
            for tenant, mhz in per_tenant.items():
                mbps = decision.allocation(tenant).reservations_mbps[bs_name]
                assert mhz == pytest.approx(bs.mhz_for_bitrate(mbps))

    def test_transport_reservations_cover_path_links(self, embb_problem):
        decision = DirectMILPSolver().solve(embb_problem)
        transport = decision.transport_reservations_mbps(embb_problem)
        # Every accepted tenant's traffic crosses its BS access links.
        for name, alloc in decision.allocations.items():
            if not alloc.accepted:
                continue
            for bs, path in alloc.paths.items():
                for link in path.links:
                    assert name in transport[link.key]

    def test_compute_reservations_follow_service_model(self, mixed_problem):
        decision = DirectMILPSolver().solve(mixed_problem)
        compute = decision.compute_reservations_cpus(mixed_problem)
        for cu, per_tenant in compute.items():
            for tenant, cpus in per_tenant.items():
                alloc = decision.allocation(tenant)
                expected = sum(
                    alloc.request.compute_cpus(mbps)
                    for mbps in alloc.reservations_mbps.values()
                )
                assert cpus == pytest.approx(expected)

    def test_embb_consumes_no_compute(self, embb_problem):
        decision = DirectMILPSolver().solve(embb_problem)
        compute = decision.compute_reservations_cpus(embb_problem)
        total = sum(sum(v.values()) for v in compute.values())
        assert total == pytest.approx(0.0)
